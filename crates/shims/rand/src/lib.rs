//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this tiny deterministic re-implementation of the parts of `rand` 0.8
//! that the TKD crates actually use: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high quality
//! for simulation workloads and fully deterministic per seed, which is all
//! the synthetic-data generators and tests require. It is **not**
//! cryptographically secure.

#![warn(missing_docs)]

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler, mirroring `rand::distributions::uniform::SampleUniform`.
///
/// The single blanket [`SampleRange`] impl below keys off this trait so
/// integer/float literal inference flows exactly as with real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                // Modulo bias is negligible for the spans used here
                // (all far below 2^64) and irrelevant for test workloads.
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Types that can serve as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Maps a random word to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (stands in for rand's
/// `Standard: Distribution<T>` bound).
pub trait Standard {
    /// Draws a value from the type's standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from `T`'s standard distribution (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related randomness: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
