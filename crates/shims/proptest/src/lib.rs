//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this deterministic re-implementation of the slice of proptest that the
//! TKD property tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`strategy::Just`], [`arbitrary::any`], weighted booleans
//! and options, `Vec`/`BTreeSet`/`BTreeMap` collection strategies,
//! [`prop_oneof!`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//!
//! * **No shrinking.** A failing case panics with the case number; the
//!   run is fully deterministic (seeded from the test name), so failures
//!   reproduce exactly.
//! * **No persistence** (`proptest-regressions` files are never written).
//! * Assertion macros are plain `assert!` wrappers rather than
//!   `Result`-returning early exits.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Returns a float uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Returns a uniform index in `[0, bound)`; `bound` must be nonzero.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "next_index bound must be nonzero");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure payload a property body may return as `Err`; the harness
    /// panics on it. Bodies may also `return Ok(())` to accept early.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl<S: Into<String>> From<S> for TestCaseError {
        fn from(s: S) -> Self {
            TestCaseError(s.into())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Rejects generated values for which `f` returns `false`,
        /// retrying with fresh randomness (bounded; panics if the filter
        /// rejects persistently).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternative strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from its alternatives; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.next_index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`].
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    //! The [`any`] entry point for type-driven generation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Generates an unconstrained value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `Vec`, `BTreeSet`, and `BTreeMap` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// A target size or size range for a collection strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive upper bound.
        end: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.end <= self.start + 1 {
                self.start
            } else {
                self.start + rng.next_index(self.end - self.start)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            // Duplicate draws collapse, so the final size may fall below
            // the sampled target; acceptable for a test shim.
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `BTreeSet` with approximately `size` elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`; see [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// Generates a `BTreeMap` with approximately `size` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted {
        probability: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.probability
        }
    }

    /// Generates `true` with the given probability.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "bool::weighted probability out of range"
        );
        Weighted { probability }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        probability_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.probability_some {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Generates `Some` from `inner` half the time, `None` otherwise —
    /// the real crate's default-probability form.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// Generates `Some` from `inner` with probability `probability_some`,
    /// `None` otherwise.
    pub fn weighted<S: Strategy>(probability_some: f64, inner: S) -> OptionStrategy<S> {
        assert!(
            (0.0..=1.0).contains(&probability_some),
            "option::weighted probability out of range"
        );
        OptionStrategy {
            probability_some,
            inner,
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for supported forms.
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` item expands to a
/// plain `#[test]` that runs the body for `cases` deterministic random
/// inputs (seeded from the test name, so failures reproduce exactly).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                // FNV-1a over the test name: per-test deterministic seed.
                let mut __seed: u64 = 0xcbf29ce484222325;
                for __b in stringify!($name).bytes() {
                    __seed ^= __b as u64;
                    __seed = __seed.wrapping_mul(0x100000001b3);
                }
                let __strategies = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __seed ^ (__case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    // Bodies may `return Ok(())` / `Err(..)` like real
                    // proptest; run them in a Result-returning closure.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!("property failed at case {}: {:?}", __case, __e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a [`proptest!`] body (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a [`proptest!`] body (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among alternative strategies yielding the same type.
///
/// Weights are not supported by the shim; every arm is equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_values() {
        // Two runs of the same generated fn body observe identical inputs;
        // easiest observable proxy: filters and maps compose and stay in
        // range across many cases.
        let strat = (0u8..6).prop_map(|v| v as f64);
        let mut rng = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0.0..6.0).contains(&v));
        }
    }

    use crate::strategy::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..17, b in 0u8..6, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 6);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuple_patterns((x, y) in (0u32..10, 10u32..20)) {
            prop_assert!(x < 10);
            prop_assert!((10..20).contains(&y));
        }

        #[test]
        fn oneof_and_collections(v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e == 1 || e == 2));
        }

        #[test]
        fn filters_hold(n in (0usize..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn options_weighted(o in crate::option::weighted(0.5, 0u8..4)) {
            if let Some(v) = o { prop_assert!(v < 4); }
        }
    }
}
