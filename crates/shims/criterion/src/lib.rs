//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal wall-clock bench harness covering the criterion surface
//! the `tkd-bench` targets use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It reports a simple mean ns/iter over a fixed number of timed samples
//! — no outlier analysis, no HTML reports, no statistical comparison.
//! Swap in real criterion on a networked machine for publication-quality
//! numbers.

#![warn(missing_docs)]

use std::time::Instant;

/// How to batch per-iteration setup in [`Bencher::iter_batched`];
/// the shim treats all variants identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last timing loop.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to fill the
    /// per-sample time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate cost with a single call.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        // Target roughly 30ms of measurement, capped for slow routines.
        let iters = ((30_000_000 / once) as u64).clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().as_nanos().max(1);
        let iters = ((30_000_000 / once) as u64).clamp(1, 10_000);
        // Prepare inputs in small batches so at most 64 setup outputs are
        // alive at once, whatever the iteration count.
        let mut timed = std::time::Duration::ZERO;
        let mut done = 0u64;
        while done < iters {
            let batch = (iters - done).min(64);
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            timed += start.elapsed();
            done += batch;
        }
        self.ns_per_iter = timed.as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted, ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored by the shim).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        if b.ns_per_iter >= 1_000_000.0 {
            println!("{id:<50} {:>12.3} ms/iter", b.ns_per_iter / 1_000_000.0);
        } else if b.ns_per_iter >= 1_000.0 {
            println!("{id:<50} {:>12.3} us/iter", b.ns_per_iter / 1_000.0);
        } else {
            println!("{id:<50} {:>12.1} ns/iter", b.ns_per_iter);
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test --benches` pass harness flags
            // (e.g. `--bench`, `--test`) that the shim accepts and ignores.
            $( $group(); )+
        }
    };
}
