//! Property-based validation of the bitmap indexes against brute-force set
//! semantics, on random incomplete datasets.

use proptest::prelude::*;
use tkd_bitvec::{CompressedBitmap, Concise, Wah};
use tkd_index::{compute_bins, BinnedBitmapIndex, BitmapIndex, CompressedColumns};
use tkd_model::Dataset;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=3).prop_flat_map(|dims| {
        let row = proptest::collection::vec(
            proptest::option::weighted(0.75, (0u8..8).prop_map(|v| v as f64 / 2.0)),
            dims,
        )
        .prop_filter("at least one observed", |r| r.iter().any(Option::is_some));
        proptest::collection::vec(row, 1..50)
            .prop_map(move |rows| Dataset::from_rows(dims, &rows).expect("valid rows"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every vertical column equals its defining set
    /// `{p : p[i] missing ∨ p[i] > v_c}`.
    #[test]
    fn columns_define_range_encoding(ds in dataset_strategy()) {
        let idx = BitmapIndex::build(&ds);
        for dim in 0..ds.dims() {
            let vals = idx.values(dim);
            for c in 0..idx.num_columns(dim) {
                let col = idx.column(dim, c);
                for p in ds.ids() {
                    let expect = match ds.value(p, dim) {
                        None => true,
                        Some(v) => c == 0 || v > vals[c - 1],
                    };
                    prop_assert_eq!(col.get(p as usize), expect);
                }
            }
        }
    }

    /// Columns are nested: column c+1 ⊆ column c (range encoding is
    /// monotone), for both exact and binned indexes.
    #[test]
    fn columns_are_nested(ds in dataset_strategy(), bins in 1usize..6) {
        let idx = BitmapIndex::build(&ds);
        for dim in 0..ds.dims() {
            for c in 1..idx.num_columns(dim) {
                prop_assert!(idx.column(dim, c).is_subset_of(idx.column(dim, c - 1)));
            }
        }
        let b = BinnedBitmapIndex::build(&ds, &vec![bins; ds.dims()]);
        for dim in 0..ds.dims() {
            for c in 1..b.num_columns(dim) {
                prop_assert!(b.column(dim, c).is_subset_of(b.column(dim, c - 1)));
            }
        }
    }

    /// Binned Q is always a superset of exact Q (binning only loosens),
    /// and both contain the truly dominated objects.
    #[test]
    fn binned_q_bounds_exact_q(ds in dataset_strategy(), bins in 1usize..6) {
        let exact = BitmapIndex::build(&ds);
        let binned = BinnedBitmapIndex::build(&ds, &vec![bins; ds.dims()]);
        for o in ds.ids() {
            let qe = exact.q_vec(o);
            let qb = binned.q_vec(o);
            prop_assert!(qe.is_subset_of(&qb), "object {}", o);
            for p in ds.ids() {
                if p != o && tkd_model::dominance::dominates(&ds, o, p) {
                    prop_assert!(qe.get(p as usize), "dominated object missing from Q");
                }
            }
        }
    }

    /// Compressed columns decompress to the originals and the compressed
    /// AND path yields the same Q as the dense path.
    #[test]
    fn compressed_columns_equal_dense(ds in dataset_strategy(), bins in 1usize..6) {
        let binned = BinnedBitmapIndex::build(&ds, &vec![bins; ds.dims()]);
        let cc: CompressedColumns<Concise> = CompressedColumns::from_binned(&binned);
        let cw: CompressedColumns<Wah> = CompressedColumns::from_binned(&binned);
        for dim in 0..ds.dims() {
            for c in 0..binned.num_columns(dim) {
                prop_assert_eq!(&cc.decompress_column(dim, c), binned.column(dim, c));
                prop_assert_eq!(&cw.decompress_column(dim, c), binned.column(dim, c));
            }
        }
        for o in ds.ids() {
            let picks: Vec<(usize, usize)> = (0..ds.dims())
                .map(|d| {
                    let c = binned.bin_of(o, d).map(|b| (b - 1) as usize).unwrap_or(0);
                    (d, c)
                })
                .collect();
            let mut q = cc.and_selected(&picks).decompress();
            q.clear(o as usize);
            prop_assert_eq!(q, binned.q_vec(o));
        }
    }

    /// Bin boundaries partition the observed domain: ascending, last equals
    /// the max, every observed value lands in exactly one bin.
    #[test]
    fn bins_partition_domain(
        counts in proptest::collection::btree_map(0u32..1000, 1usize..20, 1..40),
        x in 1usize..10,
    ) {
        let value_counts: Vec<(f64, usize)> =
            counts.iter().map(|(&v, &c)| (v as f64, c)).collect();
        let bounds = compute_bins(&value_counts, x);
        prop_assert!(!bounds.is_empty());
        prop_assert!(bounds.len() <= x);
        prop_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(*bounds.last().unwrap(), value_counts.last().unwrap().0);
        for &(v, _) in &value_counts {
            let bin = bounds.partition_point(|&ub| ub < v);
            prop_assert!(bin < bounds.len(), "value {v} above the last boundary");
        }
    }

    /// Probes agree with direct scans: ids_equal returns exactly the
    /// objects holding the value; ids_in_bin_below exactly the same-bin
    /// strictly-smaller ones.
    #[test]
    fn probes_agree_with_scans(ds in dataset_strategy(), bins in 1usize..5) {
        let idx = BinnedBitmapIndex::build(&ds, &vec![bins; ds.dims()]);
        for o in ds.ids() {
            for dim in 0..ds.dims() {
                let Some(v) = ds.value(o, dim) else { continue };
                let mut got: Vec<u32> = idx.ids_equal(dim, v).collect();
                got.sort_unstable();
                let mut want: Vec<u32> = ds
                    .ids()
                    .filter(|&p| ds.value(p, dim) == Some(v))
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);

                let mut below: Vec<u32> = idx.ids_in_bin_below(&ds, o, dim).collect();
                below.sort_unstable();
                let bin = idx.bin_of(o, dim).unwrap();
                let mut want_below: Vec<u32> = ds
                    .ids()
                    .filter(|&p| {
                        idx.bin_of(p, dim) == Some(bin)
                            && matches!(ds.value(p, dim), Some(w) if w < v)
                    })
                    .collect();
                want_below.sort_unstable();
                prop_assert_eq!(below, want_below);
            }
        }
    }

    /// Index size formulas match the materialized column counts.
    #[test]
    fn size_formulas(ds in dataset_strategy(), bins in 1usize..6) {
        let exact = BitmapIndex::build(&ds);
        let expected: u64 = (0..ds.dims())
            .map(|d| (exact.cardinality(d) as u64 + 1) * ds.len() as u64)
            .sum();
        prop_assert_eq!(exact.size_bits(), expected);
        let binned = BinnedBitmapIndex::build(&ds, &vec![bins; ds.dims()]);
        prop_assert!(binned.size_bits() <= exact.size_bits());
    }
}
