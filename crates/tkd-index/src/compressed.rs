//! Compressed storage of index columns (the "vertical" compression of §4.4).

use crate::{BinnedBitmapIndex, BitmapIndex};
use tkd_bitvec::{BitVec, CompressedBitmap};

/// The vertical columns of a bitmap index, compressed with a
/// [`CompressedBitmap`] codec (WAH or CONCISE).
///
/// This is the storage layout of IBIG: `MaxBitScore` is computed by ANDing
/// and counting on the compressed form; candidate enumeration decompresses
/// the final `Q`/`P` vectors only.
#[derive(Clone, Debug)]
pub struct CompressedColumns<C> {
    n: usize,
    columns: Vec<Vec<C>>,
}

impl<C: CompressedBitmap> CompressedColumns<C> {
    /// Compress every column of a range-encoded index.
    pub fn from_bitmap(idx: &BitmapIndex) -> Self {
        let columns = (0..idx.dims())
            .map(|d| {
                (0..idx.num_columns(d))
                    .map(|c| C::compress(idx.column(d, c)))
                    .collect()
            })
            .collect();
        CompressedColumns {
            n: idx.n(),
            columns,
        }
    }

    /// Compress every column of a binned index.
    pub fn from_binned(idx: &BinnedBitmapIndex) -> Self {
        let columns = (0..idx.dims())
            .map(|d| {
                (0..idx.num_columns(d))
                    .map(|c| C::compress(idx.column(d, c)))
                    .collect()
            })
            .collect();
        CompressedColumns {
            n: idx.n(),
            columns,
        }
    }

    /// Number of objects covered by each column.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Number of columns of `dim`.
    pub fn num_columns(&self, dim: usize) -> usize {
        self.columns[dim].len()
    }

    /// Compressed column `c` of `dim`.
    pub fn column(&self, dim: usize, c: usize) -> &C {
        &self.columns[dim][c]
    }

    /// AND together one selected column per dimension (e.g. the `[Qᵢ]`
    /// selections of an object), entirely on the compressed form.
    ///
    /// # Panics
    /// Panics if `picks` is empty or any index is out of range.
    pub fn and_selected(&self, picks: &[(usize, usize)]) -> C {
        assert!(!picks.is_empty(), "need at least one column");
        let (d0, c0) = picks[0];
        let mut acc = self.columns[d0][c0].clone();
        for &(d, c) in &picks[1..] {
            acc = acc.and(&self.columns[d][c]);
        }
        acc
    }

    /// AND together one selected column per dimension directly into a
    /// caller-owned dense scratch buffer — the zero-allocation IBIG query
    /// path. The first column is decompressed into `dst` (overwriting it);
    /// every further column is ANDed in straight off its run stream, so no
    /// compressed intermediate is ever materialized.
    ///
    /// # Panics
    /// Panics if `picks` is empty, any index is out of range, or
    /// `dst.len() != self.n()`.
    pub fn and_selected_into(
        &self,
        picks: impl IntoIterator<Item = (usize, usize)>,
        dst: &mut BitVec,
    ) {
        let mut picks = picks.into_iter();
        let (d0, c0) = picks.next().expect("need at least one column");
        self.columns[d0][c0].decompress_into(dst);
        for (d, c) in picks {
            self.columns[d][c].and_dense(dst);
        }
    }

    /// Total compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .flat_map(|cols| cols.iter())
            .map(|c| c.size_bytes())
            .sum()
    }

    /// Size the same columns would occupy uncompressed.
    pub fn dense_size_bytes(&self) -> usize {
        let per_col = self.n.div_ceil(8);
        let ncols: usize = self.columns.iter().map(|c| c.len()).sum();
        per_col * ncols
    }

    /// Whole-index compression ratio (compressed / dense; may exceed 1).
    pub fn compression_ratio(&self) -> f64 {
        let dense = self.dense_size_bytes();
        if dense == 0 {
            return 1.0;
        }
        self.size_bytes() as f64 / dense as f64
    }

    /// Decompress one column (tests / fallback paths).
    pub fn decompress_column(&self, dim: usize, c: usize) -> BitVec {
        self.columns[dim][c].decompress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_bitvec::{Concise, Wah};
    use tkd_model::fixtures;

    #[test]
    fn roundtrips_every_column() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let cc: CompressedColumns<Concise> = CompressedColumns::from_bitmap(&idx);
        let cw: CompressedColumns<Wah> = CompressedColumns::from_bitmap(&idx);
        for dim in 0..idx.dims() {
            assert_eq!(cc.num_columns(dim), idx.num_columns(dim));
            for c in 0..idx.num_columns(dim) {
                assert_eq!(&cc.decompress_column(dim, c), idx.column(dim, c));
                assert_eq!(&cw.decompress_column(dim, c), idx.column(dim, c));
            }
        }
    }

    #[test]
    fn and_selected_matches_dense_q() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let cc: CompressedColumns<Concise> = CompressedColumns::from_bitmap(&ds_index_picks(&idx));
        for o in ds.ids() {
            let picks: Vec<(usize, usize)> = (0..idx.dims())
                .map(|d| {
                    let c = idx.value_index(o, d).map(|j| (j - 1) as usize).unwrap_or(0);
                    (d, c)
                })
                .collect();
            let mut q = cc.and_selected(&picks).decompress();
            q.clear(o as usize);
            assert_eq!(q, idx.q_vec(o), "object {o}");
        }
    }

    // Helper keeping the test body readable: compression happens from the
    // same index.
    fn ds_index_picks(idx: &BitmapIndex) -> BitmapIndex {
        idx.clone()
    }

    #[test]
    fn binned_columns_compress() {
        let ds = fixtures::fig3_sample();
        let idx = BinnedBitmapIndex::build(&ds, &[2, 2, 3, 3]);
        let cc: CompressedColumns<Concise> = CompressedColumns::from_binned(&idx);
        assert_eq!(cc.n(), 20);
        assert_eq!(cc.dims(), 4);
        assert!(cc.size_bytes() > 0);
        for dim in 0..4 {
            for c in 0..idx.num_columns(dim) {
                assert_eq!(&cc.decompress_column(dim, c), idx.column(dim, c));
            }
        }
    }

    #[test]
    fn and_selected_into_matches_compressed_chain() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let cc: CompressedColumns<Concise> = CompressedColumns::from_bitmap(&idx);
        let cw: CompressedColumns<Wah> = CompressedColumns::from_bitmap(&idx);
        let mut dst = BitVec::ones(idx.n());
        for o in ds.ids() {
            let picks: Vec<(usize, usize)> = (0..idx.dims())
                .map(|d| {
                    let c = idx.value_index(o, d).map(|j| (j - 1) as usize).unwrap_or(0);
                    (d, c)
                })
                .collect();
            let reference = cc.and_selected(&picks).decompress();
            cc.and_selected_into(picks.iter().copied(), &mut dst);
            assert_eq!(dst, reference, "concise object {o}");
            cw.and_selected_into(picks.iter().copied(), &mut dst);
            assert_eq!(dst, reference, "wah object {o}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn and_selected_into_rejects_empty() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let cc: CompressedColumns<Concise> = CompressedColumns::from_bitmap(&idx);
        cc.and_selected_into(std::iter::empty(), &mut BitVec::zeros(idx.n()));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn and_selected_rejects_empty() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let cc: CompressedColumns<Wah> = CompressedColumns::from_bitmap(&idx);
        let _ = cc.and_selected(&[]);
    }
}
