//! The binned bitmap index of §4.4 (Fig. 9) with the adaptive binning
//! strategy of Eq. 3–4 and the per-dimension B+-tree probes of §4.5.

use tkd_bitvec::BitVec;
use tkd_btree::{BPlusTree, F64Key};
use tkd_model::{Dataset, ObjectId, MAX_DIMS};

/// Sentinel marking a missing value in the per-object bin table.
const MISSING: u32 = u32::MAX;

/// Compute bin upper boundaries for one dimension (Eq. 3–4).
///
/// `value_counts` are the distinct observed values ascending with their
/// multiplicities (`N_ik`); `x` is the requested number of bins. The k-th
/// bin greedily absorbs whole distinct values while its cumulative count
/// stays within `remaining / bins_left` (always taking at least one value),
/// and the last bin absorbs the rest — the paper's adaptive, skew-aware
/// partitioning. Returns the per-bin *upper* boundary values; fewer than `x`
/// bins result when there are fewer distinct values.
pub fn compute_bins(value_counts: &[(f64, usize)], x: usize) -> Vec<f64> {
    assert!(x >= 1, "at least one bin required");
    let mut boundaries = Vec::with_capacity(x.min(value_counts.len()));
    let mut remaining: usize = value_counts.iter().map(|&(_, c)| c).sum();
    let mut bins_left = x;
    let mut idx = 0;
    while idx < value_counts.len() {
        if bins_left == 1 {
            boundaries.push(value_counts[value_counts.len() - 1].0);
            break;
        }
        let capacity = remaining as f64 / bins_left as f64;
        let mut cum = 0usize;
        let mut taken = 0usize;
        while idx + taken < value_counts.len() {
            let c = value_counts[idx + taken].1;
            if taken > 0 && (cum + c) as f64 > capacity {
                break;
            }
            cum += c;
            taken += 1;
            if cum as f64 >= capacity {
                break;
            }
        }
        boundaries.push(value_counts[idx + taken - 1].0);
        idx += taken;
        remaining -= cum;
        bins_left -= 1;
    }
    boundaries
}

/// Binned bitmap index: like [`crate::BitmapIndex`] but with one column per
/// value *bin*, shrinking storage from `Σ(Cᵢ+1)·N` to `Σ(xᵢ+1)·N` bits.
///
/// Because a bin conflates a value range, `[Qᵢ]` (same-or-higher bin) may
/// include objects that are actually *better* than `o` in dimension `i`;
/// the IBIG score computation (Algorithm 5) resolves those through the
/// per-dimension B+-tree probes exposed here.
#[derive(Clone, Debug)]
pub struct BinnedBitmapIndex {
    n: usize,
    dims: usize,
    /// First global object id covered (0 for whole-dataset builds).
    base: usize,
    /// Per dimension: ascending upper boundary of each bin.
    boundaries: Vec<Vec<f64>>,
    /// `columns[i][c]` = `{p : p[i] missing ∨ bin(p[i]) > c}` (1-based bins).
    columns: Vec<Vec<BitVec>>,
    /// Per object, per dimension: 1-based bin index or `MISSING`.
    bin_idx: Vec<u32>,
    /// Per dimension: B+-tree over `(value, id)` pairs of observed values,
    /// for bin-interior probing (§4.5).
    trees: Vec<BPlusTree<(F64Key, ObjectId), ()>>,
}

impl BinnedBitmapIndex {
    /// Build with `bins_per_dim[i]` bins requested for dimension `i`.
    ///
    /// # Panics
    /// Panics if `bins_per_dim.len() != ds.dims()` or any entry is zero.
    pub fn build(ds: &Dataset, bins_per_dim: &[usize]) -> Self {
        Self::build_range(ds, bins_per_dim, 0, ds.len())
    }

    /// Build a **shard** index over the contiguous global id range
    /// `[lo, hi)` of `ds` (the binned counterpart of
    /// [`crate::BitmapIndex::build_range`]). Bins are re-quantiled over the
    /// shard's own value distribution; all object ids in columns, bin
    /// tables, and probe cursors are **local** (global = `base() + local`).
    /// Candidates outside the shard are scored through
    /// [`BinnedBitmapIndex::select_for`] and the value-based probes.
    ///
    /// # Panics
    /// Panics if `bins_per_dim.len() != ds.dims()`, `lo > hi`, or
    /// `hi > ds.len()`.
    pub fn build_range(ds: &Dataset, bins_per_dim: &[usize], lo: usize, hi: usize) -> Self {
        assert_eq!(bins_per_dim.len(), ds.dims(), "one bin count per dimension");
        assert!(lo <= hi && hi <= ds.len(), "bad shard range {lo}..{hi}");
        let n = hi - lo;
        let dims = ds.dims();
        let mut boundaries = Vec::with_capacity(dims);
        let mut columns = Vec::with_capacity(dims);
        let mut trees = Vec::with_capacity(dims);
        let mut bin_idx = vec![MISSING; n * dims];

        for dim in 0..dims {
            // Distinct values with multiplicities, ascending (local ids).
            let mut sorted: Vec<(f64, ObjectId)> = (lo..hi)
                .filter_map(|o| {
                    ds.value(o as ObjectId, dim)
                        .map(|v| (v, (o - lo) as ObjectId))
                })
                .collect();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut counts: Vec<(f64, usize)> = Vec::new();
            for &(v, _) in &sorted {
                match counts.last_mut() {
                    Some((last, c)) if *last == v => *c += 1,
                    _ => counts.push((v, 1)),
                }
            }
            let bounds = if counts.is_empty() {
                Vec::new()
            } else {
                compute_bins(&counts, bins_per_dim[dim])
            };

            // Assign bins and build the probe tree.
            let mut tree = BPlusTree::new();
            let mut holders: Vec<Vec<ObjectId>> = vec![Vec::new(); bounds.len()];
            for &(v, o) in &sorted {
                let b = bounds.partition_point(|&ub| ub < v);
                debug_assert!(b < bounds.len(), "value above last boundary");
                holders[b].push(o);
                bin_idx[o as usize * dims + dim] = (b + 1) as u32;
                tree.insert((F64Key::new(v).expect("values are not NaN"), o), ());
            }

            // Incremental columns, as in the unbinned index.
            let mut cols = Vec::with_capacity(bounds.len() + 1);
            let mut cur = BitVec::ones(n);
            cols.push(cur.clone());
            for hs in &holders {
                for &o in hs {
                    cur.clear(o as usize);
                }
                cols.push(cur.clone());
            }
            boundaries.push(bounds);
            columns.push(cols);
            trees.push(tree);
        }
        BinnedBitmapIndex {
            n,
            dims,
            base: lo,
            boundaries,
            columns,
            bin_idx,
            trees,
        }
    }

    /// Reassemble a whole-dataset binned index from its persisted logical
    /// parts — the snapshot loader's constructor. `bin_slots` is the
    /// row-major `n × dims` table of 1-based bins with `0` marking a
    /// missing cell; `tree_entries` holds each dimension's live observed
    /// `(value, local id)` pairs in strictly ascending `(value, id)`
    /// order, from which the probe B+-trees are rebuilt deterministically
    /// ([`tkd_btree::BPlusTree::from_sorted_entries`]) — tree node
    /// structure is never persisted.
    ///
    /// # Errors
    /// A description of the first structural inconsistency (arities,
    /// non-ascending or NaN boundaries/keys, column lengths, out-of-range
    /// bins or probe ids).
    pub fn from_store_parts(
        dims: usize,
        boundaries: Vec<Vec<f64>>,
        columns: Vec<Vec<BitVec>>,
        bin_slots: Vec<u32>,
        tree_entries: Vec<Vec<(f64, ObjectId)>>,
    ) -> Result<Self, String> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(format!("bad dimensionality {dims}"));
        }
        if boundaries.len() != dims || columns.len() != dims || tree_entries.len() != dims {
            return Err(format!(
                "per-dimension tables disagree with dims={dims}: {} boundary sets, \
                 {} column sets, {} probe streams",
                boundaries.len(),
                columns.len(),
                tree_entries.len()
            ));
        }
        let n = columns[0]
            .first()
            .map(BitVec::len)
            .ok_or_else(|| "dim 0 has no columns".to_string())?;
        if bin_slots.len() != n * dims {
            return Err(format!(
                "bin table holds {} entries, expected {}",
                bin_slots.len(),
                n * dims
            ));
        }
        let mut trees = Vec::with_capacity(dims);
        for (d, (bounds, cols)) in boundaries.iter().zip(&columns).enumerate() {
            if bounds.iter().any(|v| v.is_nan()) {
                return Err(format!("NaN in the bin boundaries of dim {d}"));
            }
            if bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!(
                    "bin boundaries of dim {d} are not strictly ascending"
                ));
            }
            if cols.len() != bounds.len() + 1 {
                return Err(format!(
                    "dim {d} has {} columns for {} bins (expected xᵢ + 1)",
                    cols.len(),
                    bounds.len()
                ));
            }
            for (c, col) in cols.iter().enumerate() {
                if col.len() != n {
                    return Err(format!(
                        "column {c} of dim {d} has {} bits, expected {n}",
                        col.len()
                    ));
                }
            }
            for &(v, id) in &tree_entries[d] {
                if (id as usize) >= n {
                    return Err(format!("probe id {id} of dim {d} exceeds n={n}"));
                }
                if v.is_nan() {
                    return Err(format!("NaN probe key in dim {d}"));
                }
            }
            let tree = BPlusTree::from_sorted_entries(
                tree_entries[d]
                    .iter()
                    .map(|&(v, id)| ((F64Key::new(v).expect("checked above"), id), ())),
            )
            .map_err(|e| format!("probe stream of dim {d}: {e}"))?;
            trees.push(tree);
        }
        let mut bin_idx = bin_slots;
        for (i, slot) in bin_idx.iter_mut().enumerate() {
            let d = i % dims;
            if *slot == 0 {
                *slot = MISSING;
            } else if *slot as usize > boundaries[d].len() {
                return Err(format!(
                    "bin {slot} of object {} exceeds dim {d}'s bin count {}",
                    i / dims,
                    boundaries[d].len()
                ));
            }
        }
        Ok(BinnedBitmapIndex {
            n,
            dims,
            base: 0,
            boundaries,
            columns,
            bin_idx,
            trees,
        })
    }

    /// The live observed `(value, local id)` pairs of `dim`'s probe tree
    /// in ascending `(value, id)` order — exactly the stream
    /// [`BinnedBitmapIndex::from_store_parts`] rebuilds the tree from.
    /// Keys come back normalized (−0.0 was collapsed to +0.0 at insert),
    /// so the export is already canonical.
    pub fn tree_entries(&self, dim: usize) -> impl Iterator<Item = (f64, ObjectId)> + '_ {
        self.trees[dim].iter().map(|(&(k, id), _)| (k.get(), id))
    }

    // ----- dynamic maintenance -------------------------------------------
    //
    // Unlike the exact index, the binned index tombstones slots in **every**
    // column *including column 0* (it keeps no separate live mask): the
    // compressed/dense `and_selected_into` paths AND all picked columns, so
    // a cleared column-0 bit masks dead slots even for all-missing picks.
    // Bin boundaries are frozen between compactions; a value above the last
    // boundary extends that boundary upward (no existing assignment
    // changes), and a dimension's first observed value creates its first
    // bin. Binning only affects pruning tightness, never scores, so frozen
    // bins stay exact — compaction re-quantiles them.

    /// Append one object (slot `n()`). Returns the new local id.
    ///
    /// # Panics
    /// Panics on shard indexes (`base() != 0`).
    pub fn append_row(&mut self, mut value: impl FnMut(usize) -> Option<f64>) -> usize {
        assert_eq!(self.base, 0, "dynamic maintenance needs a base-0 index");
        let local = self.n;
        for dim in 0..self.dims {
            let slot = match value(dim) {
                None => {
                    for col in &mut self.columns[dim] {
                        col.push(true);
                    }
                    MISSING
                }
                Some(v) => {
                    let b = self.ensure_bin(dim, v);
                    // bin = b+1; bit in column c iff bin > c, i.e. c ≤ b.
                    for (c, col) in self.columns[dim].iter_mut().enumerate() {
                        col.push(c <= b);
                    }
                    self.trees[dim].insert(
                        (
                            F64Key::new(v).expect("values are not NaN"),
                            local as ObjectId,
                        ),
                        (),
                    );
                    (b + 1) as u32
                }
            };
            self.bin_idx.push(slot);
        }
        self.n += 1;
        local
    }

    /// Tombstone local slot `local`: clear its bits in **all** columns and
    /// remove its keys from the probe trees. `value(d)` must return the
    /// slot's observations (the caller still holds the tombstoned row).
    ///
    /// # Panics
    /// Panics on shard indexes.
    pub fn tombstone_row(&mut self, local: usize, mut value: impl FnMut(usize) -> Option<f64>) {
        assert_eq!(self.base, 0, "dynamic maintenance needs a base-0 index");
        for dim in 0..self.dims {
            for col in &mut self.columns[dim] {
                if col.get(local) {
                    col.clear(local);
                }
            }
            if let Some(v) = value(dim) {
                self.trees[dim].remove(&(F64Key::new(v).expect("not NaN"), local as ObjectId));
            }
        }
    }

    /// Overwrite one cell of live slot `local` (`old` is its current
    /// observation, `new` the replacement), re-binning its column bits and
    /// swapping its probe-tree key.
    ///
    /// # Panics
    /// Panics on shard indexes.
    pub fn set_cell(&mut self, local: usize, dim: usize, old: Option<f64>, new: Option<f64>) {
        assert_eq!(self.base, 0, "dynamic maintenance needs a base-0 index");
        if let Some(v) = old {
            self.trees[dim].remove(&(F64Key::new(v).expect("not NaN"), local as ObjectId));
        }
        // Resolve the new bin first: it may create or extend a bin (which
        // never changes existing assignments, so `old`'s range stays valid).
        let new_slot = match new {
            None => MISSING,
            Some(v) => {
                let b = self.ensure_bin(dim, v);
                self.trees[dim].insert((F64Key::new(v).expect("not NaN"), local as ObjectId), ());
                (b + 1) as u32
            }
        };
        let ncols = self.columns[dim].len();
        // Set-bit prefixes `0..hi` (column 0 is in both, so it never flips).
        let old_hi = match self.bin_idx[local * self.dims + dim] {
            MISSING => ncols,
            b => b as usize,
        };
        let new_hi = match new_slot {
            MISSING => ncols,
            b => b as usize,
        };
        if new_hi > old_hi {
            for c in old_hi..new_hi {
                self.columns[dim][c].set(local);
            }
        } else {
            for c in new_hi..old_hi {
                self.columns[dim][c].clear(local);
            }
        }
        self.bin_idx[local * self.dims + dim] = new_slot;
    }

    /// 0-based bin that holds `v`, creating the dimension's first bin or
    /// extending the last boundary when `v` exceeds it.
    fn ensure_bin(&mut self, dim: usize, v: f64) -> usize {
        let bounds = &mut self.boundaries[dim];
        if bounds.is_empty() {
            bounds.push(v);
            // First bin of a never-observed dimension: every existing slot
            // misses it, so the new column equals column 0 bit for bit.
            let col = self.columns[dim][0].clone();
            self.columns[dim].push(col);
            return 0;
        }
        if v > *bounds.last().expect("nonempty") {
            *bounds.last_mut().expect("nonempty") = v;
        }
        bounds.partition_point(|&ub| ub < v)
    }

    /// Rank probe over the per-dimension B+-tree: number of live observed
    /// entries with value `≥ v` — the `|Tᵢ|` building block of exact
    /// `MaxScore` maintenance.
    pub fn count_value_at_least(&self, dim: usize, v: f64) -> usize {
        self.trees[dim].count_at_least(&(F64Key::new(v).expect("not NaN"), 0))
    }

    /// Number of live observed entries in `dim` (the probe tree's size).
    pub fn observed_count(&self, dim: usize) -> usize {
        self.trees[dim].len()
    }

    /// AND one picked column per dimension into `dst`, **including**
    /// column-0 picks — the dense counterpart of
    /// [`crate::CompressedColumns::and_selected_into`], and the fill the
    /// dynamic IBIG path uses (its column 0 carries the tombstone mask).
    ///
    /// # Panics
    /// Panics if `picks` is empty, names an out-of-range column, or
    /// `dst.len() != self.n()`.
    pub fn and_selected_into(
        &self,
        picks: impl IntoIterator<Item = (usize, usize)>,
        dst: &mut BitVec,
    ) {
        assert_eq!(dst.len(), self.n, "scratch length mismatch");
        let mut cols: [&BitVec; MAX_DIMS] = [&self.columns[0][0]; MAX_DIMS];
        let mut m = 0;
        for (d, c) in picks {
            cols[m] = &self.columns[d][c];
            m += 1;
        }
        assert!(m >= 1, "need at least one column");
        BitVec::intersect_into(dst, &cols[..m]);
    }

    // ----- static accessors ----------------------------------------------

    /// Number of indexed objects.
    pub fn n(&self) -> usize {
        self.n
    }

    /// First global object id covered (0 unless built with
    /// [`BinnedBitmapIndex::build_range`]).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Actual number of bins materialized for `dim` (≤ requested).
    pub fn num_bins(&self, dim: usize) -> usize {
        self.boundaries[dim].len()
    }

    /// Number of columns of `dim` (`xᵢ + 1`).
    pub fn num_columns(&self, dim: usize) -> usize {
        self.columns[dim].len()
    }

    /// Vertical column `c` of `dim`.
    pub fn column(&self, dim: usize, c: usize) -> &BitVec {
        &self.columns[dim][c]
    }

    /// Upper boundary value of 1-based `bin` in `dim`.
    pub fn bin_upper(&self, dim: usize, bin: u32) -> f64 {
        self.boundaries[dim][(bin - 1) as usize]
    }

    /// Upper boundary of the bin *below* `bin`, i.e. the exclusive lower
    /// bound of `bin` (`None` for the first bin).
    pub fn bin_lower(&self, dim: usize, bin: u32) -> Option<f64> {
        if bin <= 1 {
            None
        } else {
            Some(self.boundaries[dim][(bin - 2) as usize])
        }
    }

    /// 1-based bin of `o` in `dim`, or `None` when missing.
    #[inline]
    pub fn bin_of(&self, o: ObjectId, dim: usize) -> Option<u32> {
        match self.bin_idx[o as usize * self.dims + dim] {
            MISSING => None,
            b => Some(b),
        }
    }

    /// `[Qᵢ]` for `o`: same-or-higher bin or missing.
    #[inline]
    pub fn q_column(&self, o: ObjectId, dim: usize) -> &BitVec {
        match self.bin_of(o, dim) {
            None => &self.columns[dim][0],
            Some(b) => &self.columns[dim][(b - 1) as usize],
        }
    }

    /// `[Pᵢ]` for `o`: strictly higher bin or missing.
    #[inline]
    pub fn p_column(&self, o: ObjectId, dim: usize) -> &BitVec {
        match self.bin_of(o, dim) {
            None => &self.columns[dim][0],
            Some(b) => &self.columns[dim][b as usize],
        }
    }

    /// `Q = (∩ᵢ Qᵢ) − {o}` over the binned columns.
    pub fn q_vec(&self, o: ObjectId) -> BitVec {
        let mut q = BitVec::zeros(self.n);
        self.q_into(o, &mut q);
        q
    }

    /// `P = ∩ᵢ Pᵢ` over the binned columns.
    pub fn p_vec(&self, o: ObjectId) -> BitVec {
        let mut p = BitVec::zeros(self.n);
        self.p_into(o, &mut p);
        p
    }

    /// Fill caller-owned scratch with `Q = (∩ᵢ Qᵢ) − {o}` in one fused
    /// pass — no allocation (the binned counterpart of
    /// [`crate::BitmapIndex::q_into`]).
    ///
    /// # Panics
    /// Panics if `q.len() != self.n()`.
    pub fn q_into(&self, o: ObjectId, q: &mut BitVec) {
        assert_eq!(q.len(), self.n, "scratch length mismatch");
        self.fill_selected(
            |d| self.bin_of(o, d).map(|b| (b - 1) as usize).unwrap_or(0),
            q,
        );
        q.clear(o as usize);
    }

    /// Intersect one selected column per dimension into `dst`; the
    /// all-column-0 fallback is column 0 itself (all-ones on static
    /// indexes, tombstone-aware on dynamic ones — this index tombstones
    /// every column including column 0).
    fn fill_selected(&self, col_idx: impl Fn(usize) -> usize, dst: &mut BitVec) {
        crate::intersect_selected_into(&self.columns, col_idx, &self.columns[0][0], dst);
    }

    /// Fill caller-owned scratch with `P = ∩ᵢ Pᵢ` in one fused pass — no
    /// allocation.
    ///
    /// # Panics
    /// Panics if `p.len() != self.n()`.
    pub fn p_into(&self, o: ObjectId, p: &mut BitVec) {
        assert_eq!(p.len(), self.n, "scratch length mismatch");
        self.fill_selected(|d| self.bin_of(o, d).map(|b| b as usize).unwrap_or(0), p);
    }

    /// `MaxBitScore(o) = |Q|` under the binned index (still a valid upper
    /// bound of `score(o)`, though no longer tighter than `MaxScore` —
    /// Lemma 3 does not carry over, see §4.4).
    pub fn max_bit_score(&self, o: ObjectId) -> usize {
        self.q_vec(o).count_ones()
    }

    /// Index size in bits: the paper's **logical** Eq. 5 cost with the
    /// actual bin counts (see [`BinnedBitmapIndex::allocated_bytes`] for
    /// the allocation footprint).
    pub fn size_bits(&self) -> u64 {
        self.columns
            .iter()
            .map(|cols| cols.len() as u64 * self.n as u64)
            .sum()
    }

    /// The logical size in bytes (`size_bits / 8`, rounded up once).
    pub fn size_bytes(&self) -> u64 {
        self.size_bits().div_ceil(8)
    }

    /// Actual allocated column storage in bytes: every column holds
    /// `ceil(|S| / 64)` 64-bit words. Excludes the B+-tree probes.
    pub fn allocated_bytes(&self) -> u64 {
        let ncols: u64 = self.columns.iter().map(|c| c.len() as u64).sum();
        ncols * (self.n as u64).div_ceil(64) * 8
    }

    /// Objects whose value in `dim` equals `v` (B+-tree probe, ascending id).
    pub fn ids_equal(&self, dim: usize, v: f64) -> impl Iterator<Item = ObjectId> + '_ {
        let k = F64Key::new(v).expect("probe value is not NaN");
        self.trees[dim]
            .range((k, 0)..=(k, ObjectId::MAX))
            .map(|(&(_, id), _)| id)
    }

    /// Objects in the same bin as `o` in `dim` whose value is strictly less
    /// than `o[i]` — the §4.5 probe that feeds `nonD(o)` (they cannot be
    /// dominated by `o`). Empty when `o` misses `dim`. `o` is an id local
    /// to this index (equal to the global id for whole-dataset builds).
    ///
    /// Returns a concrete B+-tree range cursor — no boxing, so the IBIG
    /// inner loop performs no heap allocation per probe.
    pub fn ids_in_bin_below(
        &self,
        ds: &Dataset,
        o: ObjectId,
        dim: usize,
    ) -> impl Iterator<Item = ObjectId> + '_ {
        match self.bin_of(o, dim) {
            None => self.ids_below_in_bin(dim, f64::INFINITY, false),
            Some(_) => {
                let v = ds
                    .value((self.base + o as usize) as ObjectId, dim)
                    .expect("bin implies observed");
                self.ids_below_in_bin(dim, v, true)
            }
        }
    }

    /// Value-based form of [`BinnedBitmapIndex::ids_in_bin_below`] for
    /// candidates that are **not** members of this (shard) index: local ids
    /// of the members sharing the bin that contains `v` whose value is
    /// strictly below `v`. `observed = false` (the candidate misses `dim`)
    /// yields the empty cursor. A `v` above every boundary belongs to no
    /// bin — also empty (such members cannot tie the candidate's bin).
    pub fn ids_below_in_bin(
        &self,
        dim: usize,
        v: f64,
        observed: bool,
    ) -> impl Iterator<Item = ObjectId> + '_ {
        use std::ops::Bound;
        let bounds = &self.boundaries[dim];
        let c = bounds.partition_point(|&ub| ub < v); // 0-based bin of v
        let (lo, hi) = if !observed || c >= bounds.len() {
            // An interval whose bounds exclude everything yields the empty
            // probe through the same cursor type.
            let k = (F64Key::new(0.0).expect("zero is not NaN"), 0);
            (Bound::Included(k), Bound::Excluded(k))
        } else {
            let hi = Bound::Excluded((F64Key::new(v).expect("not NaN"), 0));
            let lo = match self.bin_lower(dim, (c + 1) as u32) {
                None => Bound::Unbounded,
                Some(lb) => Bound::Excluded((F64Key::new(lb).expect("not NaN"), ObjectId::MAX)),
            };
            (lo, hi)
        };
        self.trees[dim].range((lo, hi)).map(|(&(_, id), _)| id)
    }

    /// Resolve the binned `[Qᵢ]`/`[Pᵢ]` column picks for an arbitrary value
    /// vector — the cross-shard scoring entry point (binned counterpart of
    /// [`crate::BitmapIndex::select_for`]). For members the picks coincide
    /// with [`BinnedBitmapIndex::q_column`] / [`BinnedBitmapIndex::p_column`];
    /// for non-member values the columns encode "same-or-higher bin than
    /// the bin containing `v`" / "strictly higher bin".
    pub fn select_for(&self, mut value: impl FnMut(usize) -> Option<f64>) -> BinSelection {
        let mut sel = BinSelection {
            q: [0; MAX_DIMS],
            p: [0; MAX_DIMS],
        };
        for dim in 0..self.dims {
            if let Some(v) = value(dim) {
                let bounds = &self.boundaries[dim];
                let c = bounds.partition_point(|&ub| ub < v); // 0-based bin
                sel.q[dim] = c as u32;
                // `c == bounds.len()` (value above every shard bin): both
                // picks degenerate to the last column, `{p : p[i] missing}`.
                sel.p[dim] = (c + 1).min(bounds.len()) as u32;
            }
        }
        sel
    }
}

/// Resolved per-dimension binned column picks for one candidate against
/// one [`BinnedBitmapIndex`] — produced by
/// [`BinnedBitmapIndex::select_for`]. The pick pairs feed
/// [`crate::CompressedColumns::and_selected_into`] directly.
#[derive(Clone, Copy, Debug)]
pub struct BinSelection {
    q: [u32; MAX_DIMS],
    p: [u32; MAX_DIMS],
}

impl Default for BinSelection {
    /// The all-missing selection: every pick is the all-ones column 0.
    fn default() -> Self {
        BinSelection {
            q: [0; MAX_DIMS],
            p: [0; MAX_DIMS],
        }
    }
}

impl BinSelection {
    /// `(dim, column)` pick of `[Q_dim]`.
    #[inline]
    pub fn q_pick(&self, dim: usize) -> (usize, usize) {
        (dim, self.q[dim] as usize)
    }

    /// `(dim, column)` pick of `[P_dim]`.
    #[inline]
    pub fn p_pick(&self, dim: usize) -> (usize, usize) {
        (dim, self.p[dim] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitmapIndex;
    use tkd_model::{dominance, fixtures};

    #[test]
    fn eq3_worked_example_dim1() {
        // §4.4: dim 1 of the sample dataset, x = 2: first bin covers only
        // value 2 (4 objects ≤ capacity 5, adding value 3 would reach 8).
        let counts = vec![(2.0, 4), (3.0, 4), (4.0, 1), (5.0, 1)];
        assert_eq!(compute_bins(&counts, 2), vec![2.0, 5.0]);
    }

    #[test]
    fn bins_cover_domain_and_respect_x() {
        let counts: Vec<(f64, usize)> = (0..100).map(|i| (i as f64, (i % 7) + 1)).collect();
        for x in 1..=12 {
            let b = compute_bins(&counts, x);
            assert!(b.len() <= x);
            assert_eq!(*b.last().unwrap(), 99.0, "last boundary is the max");
            for w in b.windows(2) {
                assert!(w[0] < w[1], "boundaries ascend");
            }
        }
    }

    #[test]
    fn one_bin_takes_everything() {
        let counts = vec![(1.0, 3), (2.0, 9)];
        assert_eq!(compute_bins(&counts, 1), vec![2.0]);
    }

    #[test]
    fn more_bins_than_values_degenerates_to_unbinned() {
        let counts = vec![(1.0, 1), (5.0, 1), (9.0, 1)];
        assert_eq!(compute_bins(&counts, 10), vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn uniform_data_gets_even_bins() {
        // "for uniformly distributed data, every bin … contains the same
        // number of dimensional values" (§4.4).
        let counts: Vec<(f64, usize)> = (0..12).map(|i| (i as f64, 5)).collect();
        let b = compute_bins(&counts, 4);
        assert_eq!(b, vec![2.0, 5.0, 8.0, 11.0]);
    }

    fn fig9_index() -> (tkd_model::Dataset, BinnedBitmapIndex) {
        let ds = fixtures::fig3_sample();
        // §4.4 / Fig. 9: x = (2, 2, 3, 3).
        let idx = BinnedBitmapIndex::build(&ds, &[2, 2, 3, 3]);
        (ds, idx)
    }

    #[test]
    fn fig9_dim1_binning() {
        let (ds, idx) = fig9_index();
        assert_eq!(idx.num_bins(0), 2);
        assert_eq!(idx.bin_upper(0, 1), 2.0);
        assert_eq!(idx.bin_upper(0, 2), 5.0);
        // D4[1] = 4 falls in the second bin (the paper's "110" example).
        let d4 = ds.id_by_label("D4").unwrap();
        assert_eq!(idx.bin_of(d4, 0), Some(2));
        // C2[1] = 2 falls in the first.
        let c2 = ds.id_by_label("C2").unwrap();
        assert_eq!(idx.bin_of(c2, 0), Some(1));
    }

    #[test]
    fn columns_match_set_semantics() {
        let (ds, idx) = fig9_index();
        for dim in 0..ds.dims() {
            for c in 0..idx.num_columns(dim) {
                let col = idx.column(dim, c);
                for p in ds.ids() {
                    let expected = match idx.bin_of(p, dim) {
                        None => true,
                        Some(b) => b as usize > c,
                    };
                    assert_eq!(col.get(p as usize), expected, "dim {dim} col {c} obj {p}");
                }
            }
        }
    }

    #[test]
    fn binned_q_is_superset_of_unbinned_q() {
        let (ds, idx) = fig9_index();
        let exact = BitmapIndex::build(&ds);
        for o in ds.ids() {
            assert!(
                exact.q_vec(o).is_subset_of(&idx.q_vec(o)),
                "binning must only loosen Q (object {o})"
            );
        }
    }

    #[test]
    fn binned_maxbitscore_bounds_score() {
        let (ds, idx) = fig9_index();
        for o in ds.ids() {
            assert!(dominance::score_of(&ds, o) <= idx.max_bit_score(o));
        }
    }

    #[test]
    fn x_equal_to_cardinality_reproduces_exact_index() {
        // §4.5: "when x is set to the number of distinct dimensional values
        // the binned bitmap index is the same as the bitmap index".
        let ds = fixtures::fig3_sample();
        let exact = BitmapIndex::build(&ds);
        let cards: Vec<usize> = (0..ds.dims()).map(|d| exact.cardinality(d)).collect();
        let binned = BinnedBitmapIndex::build(&ds, &cards);
        for dim in 0..ds.dims() {
            assert_eq!(binned.num_columns(dim), exact.num_columns(dim));
            for c in 0..exact.num_columns(dim) {
                assert_eq!(
                    binned.column(dim, c),
                    exact.column(dim, c),
                    "dim {dim} col {c}"
                );
            }
        }
        assert_eq!(binned.size_bits(), exact.size_bits());
    }

    #[test]
    fn smaller_x_means_smaller_index() {
        let ds = fixtures::fig3_sample();
        let small = BinnedBitmapIndex::build(&ds, &[2, 2, 2, 2]);
        let large = BinnedBitmapIndex::build(&ds, &[4, 4, 4, 4]);
        assert!(small.size_bits() < large.size_bits());
    }

    #[test]
    fn range_build_matches_per_shard_rebuild() {
        // A shard built over [lo, hi) must behave exactly like a
        // whole-dataset build over the same rows: same bins, same columns,
        // same probes — only the id frame differs (local = global − lo).
        let ds = fixtures::fig3_sample();
        let (lo, hi) = (6, 17);
        let shard = BinnedBitmapIndex::build_range(&ds, &[2, 2, 3, 3], lo, hi);
        assert_eq!(shard.base(), lo);
        assert_eq!(shard.n(), hi - lo);
        let rows: Vec<Vec<Option<f64>>> = (lo..hi)
            .map(|o| (0..ds.dims()).map(|d| ds.value(o as u32, d)).collect())
            .collect();
        let sub = tkd_model::Dataset::from_rows(ds.dims(), &rows).unwrap();
        let fresh = BinnedBitmapIndex::build(&sub, &[2, 2, 3, 3]);
        for dim in 0..ds.dims() {
            assert_eq!(shard.num_columns(dim), fresh.num_columns(dim), "dim {dim}");
            for c in 0..shard.num_columns(dim) {
                assert_eq!(
                    shard.column(dim, c),
                    fresh.column(dim, c),
                    "dim {dim} col {c}"
                );
            }
        }
        for local in 0..shard.n() {
            for dim in 0..ds.dims() {
                assert_eq!(
                    shard.bin_of(local as u32, dim),
                    fresh.bin_of(local as u32, dim)
                );
            }
        }
        // Member probe respects the base offset.
        for local in 0..shard.n() {
            let a: Vec<u32> = shard.ids_in_bin_below(&ds, local as u32, 0).collect();
            let b: Vec<u32> = fresh.ids_in_bin_below(&sub, local as u32, 0).collect();
            assert_eq!(a, b, "local {local}");
        }
    }

    #[test]
    fn value_based_selection_and_probe_agree_with_member_forms() {
        let ds = fixtures::fig3_sample();
        let shard = BinnedBitmapIndex::build_range(&ds, &[2, 2, 3, 3], 5, 14);
        // Candidates from the whole dataset, members or not.
        for o in ds.ids() {
            let sel = shard.select_for(|d| ds.value(o, d));
            for d in 0..ds.dims() {
                let (qd, qc) = sel.q_pick(d);
                let (pd, pc) = sel.p_pick(d);
                assert_eq!((qd, pd), (d, d));
                assert!(qc <= pc && pc <= shard.num_bins(d));
                // Column predicates against every member, from raw values.
                for local in 0..shard.n() {
                    let pid = (shard.base() + local) as u32;
                    let member_bin = shard.bin_of(local as u32, d);
                    let cand_bin = ds.value(o, d).map(|v| {
                        // 1-based bin containing v (num_bins + 1 = above all).
                        (0..shard.num_bins(d) as u32)
                            .find(|&b| v <= shard.bin_upper(d, b + 1))
                            .map(|b| b + 1)
                            .unwrap_or(shard.num_bins(d) as u32 + 1)
                    });
                    let in_q = match (member_bin, cand_bin) {
                        (None, _) | (_, None) => true,
                        (Some(mb), Some(cb)) => mb >= cb,
                    };
                    let in_p = match (member_bin, cand_bin) {
                        (None, _) | (_, None) => true,
                        (Some(mb), Some(cb)) => mb > cb,
                    };
                    assert_eq!(
                        shard.column(d, qc).get(local),
                        in_q,
                        "Q o={o} pid={pid} d={d}"
                    );
                    assert_eq!(
                        shard.column(d, pc).get(local),
                        in_p,
                        "P o={o} pid={pid} d={d}"
                    );
                }
            }
            // Value probe = member probe when o happens to be a member.
            if (5..14).contains(&(o as usize)) {
                let local = o - 5;
                for d in 0..ds.dims() {
                    let via_member: Vec<u32> = shard.ids_in_bin_below(&ds, local, d).collect();
                    let via_value: Vec<u32> = match ds.value(o, d) {
                        Some(v) => shard.ids_below_in_bin(d, v, true).collect(),
                        None => shard.ids_below_in_bin(d, 0.0, false).collect(),
                    };
                    assert_eq!(via_member, via_value, "o={o} d={d}");
                }
            }
        }
    }

    /// Deterministic splitmix-style value stream for the dynamic tests.
    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn random_row(seed: &mut u64, dims: usize) -> Vec<Option<f64>> {
        loop {
            let row: Vec<Option<f64>> = (0..dims)
                .map(|_| {
                    if mix(seed) % 10 < 3 {
                        None
                    } else {
                        Some(match mix(seed) % 8 {
                            0 => -0.0,
                            1 => 0.0,
                            m => (mix(seed) % 9) as f64 + if m == 2 { 0.25 } else { 0.0 },
                        })
                    }
                })
                .collect();
            if row.iter().any(Option::is_some) {
                return row;
            }
        }
    }

    /// Dynamic maintenance keeps the binned index *consistent*: column
    /// predicates match the frozen bin assignment, tombstones vanish from
    /// every column and probe, `Q` stays a sound superset of the exact
    /// index's `Q` over live objects, and the probe trees agree with a
    /// brute-force scan. (Bit-level equality with a rebuild is *not*
    /// expected — compaction re-quantiles bins.)
    #[test]
    fn dynamic_maintenance_stays_consistent() {
        let dims = 3;
        let mut seed = 13u64;
        let mut rows: Vec<Option<Vec<Option<f64>>>> = Vec::new();
        let mut idx = {
            let ds = tkd_model::Dataset::from_rows(dims, &[]).unwrap();
            BinnedBitmapIndex::build(&ds, &[3, 3, 3])
        };
        let value_of = |rows: &Vec<Option<Vec<Option<f64>>>>, s: usize, d: usize| {
            rows[s].as_ref().and_then(|r| r[d])
        };
        for step in 0..160 {
            let live: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].is_some()).collect();
            match mix(&mut seed) % 10 {
                0..=2 if !live.is_empty() => {
                    let s = live[mix(&mut seed) as usize % live.len()];
                    let row = rows[s].clone().unwrap();
                    idx.tombstone_row(s, |d| row[d]);
                    rows[s] = None;
                }
                3..=4 if !live.is_empty() => {
                    let s = live[mix(&mut seed) as usize % live.len()];
                    let d = mix(&mut seed) as usize % dims;
                    let nv = random_row(&mut seed, dims)[d];
                    let row = rows[s].as_mut().unwrap();
                    let mut cand = row.clone();
                    cand[d] = nv;
                    if cand.iter().any(Option::is_some) {
                        idx.set_cell(s, d, row[d], nv);
                        *row = cand;
                    }
                }
                _ => {
                    let row = random_row(&mut seed, dims);
                    let local = idx.append_row(|d| row[d]);
                    assert_eq!(local, rows.len());
                    rows.push(Some(row));
                }
            }
            if step % 11 != 0 && step != 159 {
                continue;
            }
            // Column predicates: live slots follow bin semantics, dead
            // slots are zero everywhere (including column 0).
            for d in 0..dims {
                for c in 0..idx.num_columns(d) {
                    let col = idx.column(d, c);
                    for (s, row) in rows.iter().enumerate() {
                        let expected = match row {
                            None => false,
                            Some(r) => match r[d] {
                                None => true,
                                Some(v) => {
                                    let b = (0..idx.num_bins(d) as u32)
                                        .find(|&b| v <= idx.bin_upper(d, b + 1))
                                        .map(|b| b + 1)
                                        .expect("live value inside some bin");
                                    assert_eq!(Some(b), idx.bin_of(s as u32, d));
                                    b as usize > c
                                }
                            },
                        };
                        assert_eq!(col.get(s), expected, "step {step} d={d} c={c} s={s}");
                    }
                }
                // Probe tree vs brute force: count ≥ v over live observed.
                for probe in [-0.0, 0.0, 1.0, 4.25, 8.0, 100.0] {
                    let brute = (0..rows.len())
                        .filter_map(|s| value_of(&rows, s, d))
                        .filter(|&v| v >= probe)
                        .count();
                    assert_eq!(idx.count_value_at_least(d, probe), brute, "probe {probe}");
                }
                let brute_observed = (0..rows.len())
                    .filter(|&s| value_of(&rows, s, d).is_some())
                    .count();
                assert_eq!(idx.observed_count(d), brute_observed);
            }
            // Q-superset soundness vs the exact index over live rows, via
            // the value-based pick path every scorer uses.
            let live_rows: Vec<Vec<Option<f64>>> = rows.iter().flatten().cloned().collect();
            if live_rows.is_empty() {
                continue;
            }
            let exact =
                BitmapIndex::build(&tkd_model::Dataset::from_rows(dims, &live_rows).unwrap());
            let mut q = tkd_bitvec::BitVec::zeros(idx.n());
            for row in &live_rows {
                let sel = idx.select_for(|d| row[d]);
                idx.and_selected_into((0..dims).map(|d| sel.q_pick(d)), &mut q);
                let esel = exact.select_for(|d| row[d]);
                let mut eq = tkd_bitvec::BitVec::zeros(exact.n());
                exact.q_into_selected(&esel, None, &mut eq);
                assert!(
                    q.count_ones() >= eq.count_ones(),
                    "binned Q must stay a superset (step {step})"
                );
                for dead in (0..rows.len()).filter(|&i| rows[i].is_none()) {
                    assert!(!q.get(dead), "dead slot {dead} in Q at step {step}");
                }
            }
        }
    }

    #[test]
    fn dynamic_first_bin_and_boundary_extension() {
        // Dimension 1 starts never-observed; dimension 0 grows past its
        // last boundary.
        let ds = tkd_model::Dataset::from_rows(2, &[vec![Some(1.0), None], vec![Some(2.0), None]])
            .unwrap();
        let mut idx = BinnedBitmapIndex::build(&ds, &[2, 2]);
        assert_eq!(idx.num_bins(1), 0);
        // First observation of dim 1 creates its first bin.
        let a = idx.append_row(|d| [Some(9.0), Some(4.0)][d]);
        assert_eq!(idx.num_bins(1), 1);
        assert_eq!(idx.bin_of(a as u32, 1), Some(1));
        // 9.0 exceeded dim 0's last boundary (2.0): the last bin extended.
        assert_eq!(idx.bin_upper(0, idx.num_bins(0) as u32), 9.0);
        assert_eq!(
            idx.ids_below_in_bin(1, 4.0, true).count(),
            0,
            "alone in its bin"
        );
        // A same-bin smaller value shows up in the probe.
        let b = idx.append_row(|d| [None, Some(3.5)][d]);
        let below: Vec<u32> = idx.ids_below_in_bin(1, 4.0, true).collect();
        assert_eq!(below, vec![b as u32]);
    }

    /// Disassemble a binned index into the store's export shape.
    #[allow(clippy::type_complexity)]
    fn export_parts(
        idx: &BinnedBitmapIndex,
    ) -> (
        usize,
        Vec<Vec<f64>>,
        Vec<Vec<BitVec>>,
        Vec<u32>,
        Vec<Vec<(f64, ObjectId)>>,
    ) {
        let dims = idx.dims();
        (
            dims,
            (0..dims)
                .map(|d| {
                    (0..idx.num_bins(d))
                        .map(|b| idx.bin_upper(d, b as u32 + 1))
                        .collect()
                })
                .collect(),
            (0..dims)
                .map(|d| {
                    (0..idx.num_columns(d))
                        .map(|c| idx.column(d, c).clone())
                        .collect()
                })
                .collect(),
            (0..idx.n())
                .flat_map(|o| (0..dims).map(move |d| idx.bin_of(o as ObjectId, d).unwrap_or(0)))
                .collect(),
            (0..dims).map(|d| idx.tree_entries(d).collect()).collect(),
        )
    }

    #[test]
    fn store_parts_roundtrip_preserves_columns_and_probes() {
        let (ds, mut idx) = fig9_index();
        // A mutated (frozen-bin) index round-trips too: tombstone one row
        // and rebin another so the parts differ from a fresh build.
        let victim = ds.id_by_label("B4").unwrap() as usize;
        let row: Vec<Option<f64>> = (0..ds.dims()).map(|d| ds.value(victim as u32, d)).collect();
        idx.tombstone_row(victim, |d| row[d]);
        idx.set_cell(2, 1, ds.value(2, 1), Some(11.0));
        let (dims, bounds, cols, slots, probes) = export_parts(&idx);
        let rebuilt =
            BinnedBitmapIndex::from_store_parts(dims, bounds, cols, slots, probes).unwrap();
        assert_eq!(rebuilt.n(), idx.n());
        for d in 0..dims {
            assert_eq!(rebuilt.num_bins(d), idx.num_bins(d));
            for c in 0..idx.num_columns(d) {
                assert_eq!(rebuilt.column(d, c), idx.column(d, c), "dim {d} col {c}");
            }
            assert_eq!(
                rebuilt.tree_entries(d).collect::<Vec<_>>(),
                idx.tree_entries(d).collect::<Vec<_>>(),
                "probes of dim {d}"
            );
            for probe in [0.0, 2.0, 3.5, 11.0] {
                assert_eq!(
                    rebuilt.count_value_at_least(d, probe),
                    idx.count_value_at_least(d, probe)
                );
            }
        }
        for o in ds.ids().filter(|&o| o as usize != victim) {
            assert_eq!(rebuilt.q_vec(o), idx.q_vec(o), "Q of {o}");
            assert_eq!(rebuilt.p_vec(o), idx.p_vec(o), "P of {o}");
        }
    }

    #[test]
    fn store_parts_reject_inconsistencies() {
        let (_, idx) = fig9_index();
        let parts = export_parts(&idx);
        {
            let (d, b, c, s, p) = parts.clone();
            assert!(BinnedBitmapIndex::from_store_parts(d, b, c, s, p).is_ok());
        }
        // Out-of-range bin.
        {
            let (d, b, c, mut s, p) = parts.clone();
            s[0] = 42;
            assert!(BinnedBitmapIndex::from_store_parts(d, b, c, s, p).is_err());
        }
        // Probe id beyond n.
        {
            let (d, b, c, s, mut p) = parts.clone();
            p[0].push((999.0, 10_000));
            assert!(BinnedBitmapIndex::from_store_parts(d, b, c, s, p).is_err());
        }
        // Out-of-order probe stream.
        {
            let (d, b, c, s, mut p) = parts.clone();
            p[1].swap(0, 1);
            assert!(BinnedBitmapIndex::from_store_parts(d, b, c, s, p).is_err());
        }
        // Unsorted boundaries.
        {
            let (d, mut b, c, s, p) = parts;
            b[2].swap(0, 1);
            assert!(BinnedBitmapIndex::from_store_parts(d, b, c, s, p).is_err());
        }
    }

    #[test]
    fn probe_ids_equal() {
        let (ds, idx) = fig9_index();
        // Dim 0 value 3: C3, C4, C5, D1.
        let mut ids: Vec<String> = idx
            .ids_equal(0, 3.0)
            .map(|o| ds.label(o).unwrap().to_string())
            .collect();
        ids.sort();
        assert_eq!(ids, vec!["C3", "C4", "C5", "D1"]);
        assert_eq!(idx.ids_equal(0, 99.0).count(), 0);
    }

    #[test]
    fn probe_ids_in_bin_below() {
        let (ds, idx) = fig9_index();
        // D4[1] = 4 sits in bin 2 of dim 0, which covers (2, 5]. Values
        // strictly below 4 in that bin: the five 3s (C3, C4, C5, D1) —
        // and nothing from bin 1.
        let d4 = ds.id_by_label("D4").unwrap();
        let mut ids: Vec<String> = idx
            .ids_in_bin_below(&ds, d4, 0)
            .map(|o| ds.label(o).unwrap().to_string())
            .collect();
        ids.sort();
        assert_eq!(ids, vec!["C3", "C4", "C5", "D1"]);
        // C2[1] = 2 is the minimum of its bin: nothing below.
        let c2 = ds.id_by_label("C2").unwrap();
        assert_eq!(idx.ids_in_bin_below(&ds, c2, 0).count(), 0);
        // Missing dimension: empty probe.
        let a1 = ds.id_by_label("A1").unwrap();
        assert_eq!(idx.ids_in_bin_below(&ds, a1, 0).count(), 0);
    }
}
