//! Bitmap indexes over incomplete data (§4.3–4.5 of the paper).
//!
//! * [`BitmapIndex`] — the **range-encoded** index of Fig. 6: per dimension
//!   `i` with `Cᵢ` distinct observed values, `Cᵢ + 1` vertical bit-vectors
//!   (one per value plus the missing slot, which is encoded all-ones so that
//!   dominance checks reduce to ANDs).
//! * [`BinnedBitmapIndex`] — the **binned** variant of Fig. 9: one bit per
//!   value *range* instead of per value, with the adaptive quantile binning
//!   of Eq. 3–4 and per-dimension B+-trees for probing bin interiors.
//! * [`CompressedColumns`] — any index's columns compressed with WAH or
//!   CONCISE (the storage layout IBIG uses).
//! * [`cost`] — the §4.5 space/time model and the optimal bin count Eq. 8.
//!
//! # The column encoding
//!
//! For dimension `i` with sorted distinct values `v₁ < … < v_C`, column
//! `c ∈ [0, C]` holds the object set `{p : p[i] missing ∨ p[i] > v_c}`
//! (with `v₀ = −∞`, i.e. column 0 is all-ones). For an object `o` with
//! `o[i] = v_j`, the paper's Definition 4 sets are single column lookups:
//! `[Qᵢ] = column(i, j−1)` and `[Pᵢ] = column(i, j)`, and `Q`/`P` are plain
//! word-wise intersections.

#![warn(missing_docs)]

mod binned;
mod bitmap;
mod compressed;
pub mod cost;

pub use binned::{compute_bins, BinSelection, BinnedBitmapIndex};
pub use bitmap::{BitmapIndex, ColumnSelection};
pub use compressed::CompressedColumns;

use tkd_bitvec::BitVec;
use tkd_model::MAX_DIMS;

/// Intersect one selected column per dimension into `dst` — the shared
/// scratch-fill of both indexes' `q_into`/`p_into`. `col_idx(dim)` names
/// the selected column; column 0 is skipped as the intersection identity,
/// and when *every* pick is column 0 the result is `fallback` — all-ones
/// on static indexes, the live mask (`BitmapIndex`) or the
/// tombstone-aware column 0 (`BinnedBitmapIndex`) on dynamic ones.
///
/// # Panics
/// Panics if `dst`'s length differs from the columns'.
pub(crate) fn intersect_selected_into(
    columns: &[Vec<BitVec>],
    col_idx: impl Fn(usize) -> usize,
    fallback: &BitVec,
    dst: &mut BitVec,
) {
    let mut cols: [&BitVec; MAX_DIMS] = [fallback; MAX_DIMS];
    let mut m = 0;
    for (dim, dim_cols) in columns.iter().enumerate() {
        let c = col_idx(dim);
        if c > 0 {
            cols[m] = &dim_cols[c];
            m += 1;
        }
    }
    if m == 0 {
        dst.copy_from(fallback);
    } else {
        BitVec::intersect_into(dst, &cols[..m]);
    }
}
