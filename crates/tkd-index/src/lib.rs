//! Bitmap indexes over incomplete data (§4.3–4.5 of the paper).
//!
//! * [`BitmapIndex`] — the **range-encoded** index of Fig. 6: per dimension
//!   `i` with `Cᵢ` distinct observed values, `Cᵢ + 1` vertical bit-vectors
//!   (one per value plus the missing slot, which is encoded all-ones so that
//!   dominance checks reduce to ANDs).
//! * [`BinnedBitmapIndex`] — the **binned** variant of Fig. 9: one bit per
//!   value *range* instead of per value, with the adaptive quantile binning
//!   of Eq. 3–4 and per-dimension B+-trees for probing bin interiors.
//! * [`CompressedColumns`] — any index's columns compressed with WAH or
//!   CONCISE (the storage layout IBIG uses).
//! * [`cost`] — the §4.5 space/time model and the optimal bin count Eq. 8.
//!
//! # The column encoding
//!
//! For dimension `i` with sorted distinct values `v₁ < … < v_C`, column
//! `c ∈ [0, C]` holds the object set `{p : p[i] missing ∨ p[i] > v_c}`
//! (with `v₀ = −∞`, i.e. column 0 is all-ones). For an object `o` with
//! `o[i] = v_j`, the paper's Definition 4 sets are single column lookups:
//! `[Qᵢ] = column(i, j−1)` and `[Pᵢ] = column(i, j)`, and `Q`/`P` are plain
//! word-wise intersections.

#![warn(missing_docs)]

mod binned;
mod bitmap;
mod compressed;
pub mod cost;

pub use binned::{compute_bins, BinnedBitmapIndex};
pub use bitmap::BitmapIndex;
pub use compressed::CompressedColumns;
