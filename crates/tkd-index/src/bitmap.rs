//! The range-encoded bitmap index of §4.3 (Fig. 6), with in-place dynamic
//! maintenance (append / tombstone / cell update) for the update layer.

use tkd_bitvec::{BitVec, Tombstones};
use tkd_model::{stats, Dataset, ObjectId, MAX_DIMS};

/// Sentinel marking a missing value in the per-object column-index table.
const MISSING: u32 = u32::MAX;

/// Words per block of the per-column suffix-popcount tables that power the
/// Heuristic 2 early exit (2048 bits per block).
const SUFFIX_BLOCK_WORDS: usize = 32;

/// Popcount of the AND of the first `m` word slices over `[start, end)`,
/// staged through a stack block buffer so each column is one vectorizable
/// pass (a word-at-a-time gather across columns defeats SIMD and
/// benchmarks ~2.5× slower).
#[inline]
fn block_and_count(words: &[&[u64]; MAX_DIMS], m: usize, start: usize, end: usize) -> usize {
    let mut buf = [0u64; SUFFIX_BLOCK_WORDS];
    let blen = end - start;
    buf[..blen].copy_from_slice(&words[0][start..end]);
    for col in &words[1..m] {
        for (b, s) in buf[..blen].iter_mut().zip(&col[start..end]) {
            *b &= s;
        }
    }
    tkd_bitvec::kernels::popcount(&buf[..blen])
}

/// Append one bit to a column, keeping its suffix-popcount table exact.
/// Amortized `O(1)` for a zero bit, `O(nblocks)` for a one (every block
/// prefix gains the bit).
fn col_push(col: &mut BitVec, suf: &mut Vec<u32>, bit: bool) {
    col.push(bit);
    let nblocks = col.as_words().len().div_ceil(SUFFIX_BLOCK_WORDS);
    // A fresh block's count and the trailing sentinel are both 0.
    while suf.len() < nblocks + 1 {
        suf.push(0);
    }
    if bit {
        for s in &mut suf[..nblocks] {
            *s += 1;
        }
    }
}

/// Clear one bit of a column, keeping its suffix table exact. No-op when
/// the bit is already zero.
fn col_clear(col: &mut BitVec, suf: &mut [u32], pos: usize) {
    if col.get(pos) {
        col.clear(pos);
        let b0 = pos / 64 / SUFFIX_BLOCK_WORDS;
        for s in &mut suf[..=b0] {
            *s -= 1;
        }
    }
}

/// Set one bit of a column, keeping its suffix table exact. No-op when the
/// bit is already one.
fn col_set(col: &mut BitVec, suf: &mut [u32], pos: usize) {
    if !col.get(pos) {
        col.set(pos);
        let b0 = pos / 64 / SUFFIX_BLOCK_WORDS;
        for s in &mut suf[..=b0] {
            *s += 1;
        }
    }
}

/// Suffix popcounts of a column at [`SUFFIX_BLOCK_WORDS`] granularity:
/// entry `b` is the popcount of words `b·B..`, entry `nblocks` is 0.
fn suffix_counts(col: &BitVec) -> Vec<u32> {
    let words = col.as_words();
    let nblocks = words.len().div_ceil(SUFFIX_BLOCK_WORDS);
    let mut suf = vec![0u32; nblocks + 1];
    for b in (0..nblocks).rev() {
        let start = b * SUFFIX_BLOCK_WORDS;
        let end = ((b + 1) * SUFFIX_BLOCK_WORDS).min(words.len());
        let cnt = tkd_bitvec::kernels::popcount(&words[start..end]) as u32;
        suf[b] = suf[b + 1] + cnt;
    }
    suf
}

/// Range-encoded bitmap index over an incomplete dataset.
///
/// Storage cost is exactly the paper's `Σᵢ (Cᵢ + 1) · |S|` bits
/// ([`BitmapIndex::size_bits`]). Building is incremental per dimension:
/// column `c` equals column `c − 1` minus the objects whose value is `v_c`,
/// so construction is `O(Σᵢ (Cᵢ + 1) · N / 64)` word operations.
#[derive(Clone, Debug)]
pub struct BitmapIndex {
    n: usize,
    dims: usize,
    /// First global object id covered by this index (0 for whole-dataset
    /// builds; see [`BitmapIndex::build_range`]).
    base: usize,
    /// Sorted distinct observed values per dimension.
    values: Vec<Vec<f64>>,
    /// `columns[i][c]` = `{p : p[i] missing ∨ p[i] > values[i][c-1]}`;
    /// `columns[i][0]` is all-ones (the missing slot).
    columns: Vec<Vec<BitVec>>,
    /// Per object, per dimension: 1-based index of the object's value in
    /// `values[i]`, or `MISSING`.
    val_idx: Vec<u32>,
    /// `block_suffix[i][c]` = [`suffix_counts`] of `columns[i][c]`, for the
    /// Heuristic 2 early exit.
    block_suffix: Vec<Vec<Vec<u32>>>,
    /// Live/tombstone bookkeeping for dynamic maintenance. Static builds
    /// are all-live; [`BitmapIndex::tombstone_row`] kills slots.
    ///
    /// **Invariants with tombstones present:** every column `c ≥ 1` holds 0
    /// at dead slots (cleared at tombstone time, suffix tables repaired),
    /// while **column 0 stays all-ones** — it is still skipped as the
    /// intersection identity, which is sound because any `c ≥ 1` column in
    /// the intersection masks the dead slots, and the all-column-0 fast
    /// paths answer from [`Tombstones::live_count`] / the live mask
    /// instead of `n`.
    live: Tombstones,
}

impl BitmapIndex {
    /// Build the index for `ds`.
    pub fn build(ds: &Dataset) -> Self {
        Self::build_range(ds, 0, ds.len())
    }

    /// Build a **shard** index over the contiguous global id range
    /// `[lo, hi)` of `ds`. Bit `i` of every column refers to the object
    /// with the stable global id `lo + i` ([`BitmapIndex::base`] recovers
    /// `lo`), so per-shard `Q`/`P` popcounts over a partition of the
    /// dataset sum to the whole-dataset counts. Distinct-value tables hold
    /// only the shard members' values; candidates from *outside* the shard
    /// are scored against it through [`BitmapIndex::select_for`].
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > ds.len()`.
    pub fn build_range(ds: &Dataset, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= ds.len(), "bad shard range {lo}..{hi}");
        let n = hi - lo;
        let dims = ds.dims();
        let mut values = Vec::with_capacity(dims);
        let mut columns = Vec::with_capacity(dims);
        let mut val_idx = vec![MISSING; n * dims];
        let members = || (lo..hi).map(|o| o as ObjectId);

        for dim in 0..dims {
            let vals = stats::distinct_values_in(ds, dim, lo, hi);
            // Objects holding each distinct value, for incremental column
            // construction.
            let mut holders: Vec<Vec<ObjectId>> = vec![Vec::new(); vals.len()];
            for o in members() {
                if let Some(v) = ds.value(o, dim) {
                    // `vals` is deduped with `==` (merging −0.0 into 0.0),
                    // so the lookup must use IEEE `<` too: `total_cmp`
                    // separates the zero signs and would land one slot past
                    // the merged entry.
                    let j = vals.partition_point(|&x| x < v);
                    debug_assert_eq!(vals[j], v);
                    let local = o as usize - lo;
                    holders[j].push(local as ObjectId);
                    val_idx[local * dims + dim] = (j + 1) as u32;
                }
            }
            let mut cols = Vec::with_capacity(vals.len() + 1);
            let mut cur = BitVec::ones(n);
            cols.push(cur.clone());
            for hs in &holders {
                for &o in hs {
                    cur.clear(o as usize);
                }
                cols.push(cur.clone());
            }
            values.push(vals);
            columns.push(cols);
        }
        let block_suffix = columns
            .iter()
            .map(|cols| cols.iter().map(suffix_counts).collect())
            .collect();
        BitmapIndex {
            n,
            dims,
            base: lo,
            values,
            columns,
            val_idx,
            block_suffix,
            live: Tombstones::all_live(n),
        }
    }

    /// Reassemble a whole-dataset index from its persisted logical parts
    /// — the snapshot loader's constructor. `val_slots` is the row-major
    /// `n × dims` table of 1-based value slots with `0` marking a missing
    /// cell (the [`BitmapIndex::value_slot`] form, which keeps the
    /// on-disk format free of in-memory sentinels). The suffix-popcount
    /// tables are recomputed from the adopted columns (one popcount pass,
    /// far below a rebuild's column construction), so they can never
    /// disagree with the bits.
    ///
    /// # Errors
    /// A description of the first structural inconsistency: mismatched
    /// arities, non-ascending or NaN value tables, column lengths that
    /// disagree with the live mask, a non-all-ones column 0, or an
    /// out-of-range value slot. Deeper bit-level semantics are pinned by
    /// the store's checksums and the round-trip parity suite.
    pub fn from_store_parts(
        dims: usize,
        values: Vec<Vec<f64>>,
        columns: Vec<Vec<BitVec>>,
        val_slots: Vec<u32>,
        live: Tombstones,
    ) -> Result<Self, String> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(format!("bad dimensionality {dims}"));
        }
        if values.len() != dims || columns.len() != dims {
            return Err(format!(
                "per-dimension tables disagree with dims={dims}: {} value tables, {} column sets",
                values.len(),
                columns.len()
            ));
        }
        let n = live.len();
        if val_slots.len() != n * dims {
            return Err(format!(
                "value-slot table holds {} entries, expected {}",
                val_slots.len(),
                n * dims
            ));
        }
        for (d, (vals, cols)) in values.iter().zip(&columns).enumerate() {
            if vals.iter().any(|v| v.is_nan()) {
                return Err(format!("NaN in the value table of dim {d}"));
            }
            if vals.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("value table of dim {d} is not strictly ascending"));
            }
            if cols.len() != vals.len() + 1 {
                return Err(format!(
                    "dim {d} has {} columns for {} values (expected Cᵢ + 1)",
                    cols.len(),
                    vals.len()
                ));
            }
            for (c, col) in cols.iter().enumerate() {
                if col.len() != n {
                    return Err(format!(
                        "column {c} of dim {d} has {} bits, expected {n}",
                        col.len()
                    ));
                }
            }
            if cols[0].count_ones() != n {
                return Err(format!("column 0 of dim {d} is not all-ones"));
            }
        }
        let mut val_idx = val_slots;
        for (i, slot) in val_idx.iter_mut().enumerate() {
            let d = i % dims;
            if *slot == 0 {
                *slot = MISSING;
            } else if *slot as usize > values[d].len() {
                return Err(format!(
                    "value slot {slot} of object {} exceeds dim {d}'s cardinality {}",
                    i / dims,
                    values[d].len()
                ));
            }
        }
        let block_suffix = columns
            .iter()
            .map(|cols| cols.iter().map(suffix_counts).collect())
            .collect();
        Ok(BitmapIndex {
            n,
            dims,
            base: 0,
            values,
            columns,
            val_idx,
            block_suffix,
            live,
        })
    }

    // ----- dynamic maintenance -------------------------------------------

    /// Append one object (slot `n()`), growing every column by one bit and
    /// inserting new distinct values into the value tables as needed (a new
    /// value splices in one cloned column, `O(N/64)` words, and shifts the
    /// larger values' `val_idx` entries). Returns the new local id.
    ///
    /// Cost without a new distinct value: `O(Σᵢ (Cᵢ+1))` bit appends plus
    /// `O(set bits · nblocks)` suffix updates — far below a rebuild's
    /// `O(Σᵢ (Cᵢ+1) · N/64)`.
    ///
    /// # Panics
    /// Panics on shard indexes (`base() != 0`) — only whole-dataset
    /// indexes are dynamically maintained.
    pub fn append_row(&mut self, mut value: impl FnMut(usize) -> Option<f64>) -> usize {
        assert_eq!(self.base, 0, "dynamic maintenance needs a base-0 index");
        let local = self.n;
        for dim in 0..self.dims {
            let slot = match value(dim) {
                None => {
                    for (col, suf) in self.columns[dim]
                        .iter_mut()
                        .zip(&mut self.block_suffix[dim])
                    {
                        col_push(col, suf, true);
                    }
                    MISSING
                }
                Some(v) => {
                    let j1 = self.ensure_value(dim, v);
                    // Bit semantics: 1 in columns `c ≤ j1 − 1` (the object
                    // satisfies `> values[c−1]` exactly below its own slot).
                    for (c, (col, suf)) in self.columns[dim]
                        .iter_mut()
                        .zip(&mut self.block_suffix[dim])
                        .enumerate()
                    {
                        col_push(col, suf, c < j1);
                    }
                    j1 as u32
                }
            };
            self.val_idx.push(slot);
        }
        self.live.push_live();
        self.n += 1;
        local
    }

    /// Tombstone local slot `local`: clear its bits in every `c ≥ 1` column
    /// (column 0 stays all-ones — see the `live` field invariants) and
    /// repair the suffix tables. Returns `false` if already dead.
    ///
    /// # Panics
    /// Panics on shard indexes or out-of-range slots.
    pub fn tombstone_row(&mut self, local: usize) -> bool {
        assert_eq!(self.base, 0, "dynamic maintenance needs a base-0 index");
        if !self.live.kill(local) {
            return false;
        }
        for dim in 0..self.dims {
            // Bits are set only in columns `1..hi`; missing = all of them.
            let hi = match self.val_idx[local * self.dims + dim] {
                MISSING => self.columns[dim].len(),
                j => j as usize,
            };
            for c in 1..hi {
                col_clear(
                    &mut self.columns[dim][c],
                    &mut self.block_suffix[dim][c],
                    local,
                );
            }
        }
        true
    }

    /// Overwrite one cell of live slot `local` (`None` = clear to missing),
    /// moving its bits across the affected column range of `dim` and
    /// updating `val_idx`. New distinct values splice in a column as in
    /// [`BitmapIndex::append_row`]; values left without holders stay in the
    /// table (they still encode a valid threshold — compaction prunes
    /// them).
    ///
    /// # Panics
    /// Panics on shard indexes, out-of-range slots, or dead slots.
    pub fn set_cell(&mut self, local: usize, dim: usize, new: Option<f64>) {
        assert_eq!(self.base, 0, "dynamic maintenance needs a base-0 index");
        assert!(self.live.is_live(local), "cell update on dead slot {local}");
        // Resolve the new slot first: a value-table insert shifts `val_idx`
        // (including this object's), so the old slot is read afterwards.
        let new_j = match new {
            None => MISSING,
            Some(v) => self.ensure_value(dim, v) as u32,
        };
        let old_j = self.val_idx[local * self.dims + dim];
        let ncols = self.columns[dim].len();
        // Set-bit ranges are prefixes `1..hi` of the non-trivial columns.
        let old_hi = match old_j {
            MISSING => ncols,
            j => j as usize,
        };
        let new_hi = match new_j {
            MISSING => ncols,
            j => j as usize,
        };
        if new_hi > old_hi {
            for c in old_hi..new_hi {
                col_set(
                    &mut self.columns[dim][c],
                    &mut self.block_suffix[dim][c],
                    local,
                );
            }
        } else {
            for c in new_hi..old_hi {
                col_clear(
                    &mut self.columns[dim][c],
                    &mut self.block_suffix[dim][c],
                    local,
                );
            }
        }
        self.val_idx[local * self.dims + dim] = new_j;
    }

    /// 1-based slot of `v` in `dim`'s value table, splicing in a new column
    /// when `v` is a new distinct value.
    fn ensure_value(&mut self, dim: usize, v: f64) -> usize {
        let vals = &mut self.values[dim];
        // IEEE `<` probe against the `==`-deduped table (see `build_range`).
        let j = vals.partition_point(|&x| x < v);
        if j < vals.len() && vals[j] == v {
            return j + 1;
        }
        vals.insert(j, v);
        // New column `j+1` = `{p : missing ∨ p > v}`. No existing value
        // lies in `(values[j−1], v]`, so over existing objects that is
        // exactly column `j` — clone it. Cloning column 0 (new minimum)
        // must additionally mask out tombstones, which column 0 keeps set.
        let mut col = self.columns[dim][j].clone();
        if j == 0 {
            col.and_assign(self.live.live_mask());
        }
        let suf = suffix_counts(&col);
        self.columns[dim].insert(j + 1, col);
        self.block_suffix[dim].insert(j + 1, suf);
        for o in 0..self.n {
            let slot = &mut self.val_idx[o * self.dims + dim];
            if *slot != MISSING && *slot as usize > j {
                *slot += 1;
            }
        }
        j + 1
    }

    /// Number of live (non-tombstoned) slots.
    pub fn live_count(&self) -> usize {
        self.live.live_count()
    }

    /// Number of tombstoned slots.
    pub fn dead_count(&self) -> usize {
        self.live.dead_count()
    }

    /// Dense live mask (bit per slot), for word-parallel scans over live
    /// objects.
    pub fn live_mask(&self) -> &BitVec {
        self.live.live_mask()
    }

    // ----- static accessors ----------------------------------------------

    /// First global object id covered (0 unless built with
    /// [`BitmapIndex::build_range`]). Object arguments of the per-object
    /// accessors (`value_index`, `q_column`, …) and set-bit positions of
    /// every column are **local**: global id = `base() + local`.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of indexed objects.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Dimensional cardinality `Cᵢ`.
    pub fn cardinality(&self, dim: usize) -> usize {
        self.values[dim].len()
    }

    /// Sorted distinct values of `dim`.
    pub fn values(&self, dim: usize) -> &[f64] {
        &self.values[dim]
    }

    /// Vertical column `c` of `dim` (see the crate docs for its set
    /// semantics). Column 0 is the all-ones missing slot.
    pub fn column(&self, dim: usize, c: usize) -> &BitVec {
        &self.columns[dim][c]
    }

    /// Number of columns of `dim` (`Cᵢ + 1`).
    pub fn num_columns(&self, dim: usize) -> usize {
        self.columns[dim].len()
    }

    /// 1-based value index of `o` in `dim`, or `None` when missing.
    #[inline]
    pub fn value_index(&self, o: ObjectId, dim: usize) -> Option<u32> {
        match self.val_idx[o as usize * self.dims + dim] {
            MISSING => None,
            j => Some(j),
        }
    }

    /// The paper's `[Qᵢ]` for object `o`: all-ones when `o[i]` is missing,
    /// else the column just below `o`'s value.
    #[inline]
    pub fn q_column(&self, o: ObjectId, dim: usize) -> &BitVec {
        match self.value_index(o, dim) {
            None => &self.columns[dim][0],
            Some(j) => &self.columns[dim][(j - 1) as usize],
        }
    }

    /// The paper's `[Pᵢ]` for object `o`: all-ones when `o[i]` is missing,
    /// else the column at `o`'s value.
    #[inline]
    pub fn p_column(&self, o: ObjectId, dim: usize) -> &BitVec {
        match self.value_index(o, dim) {
            None => &self.columns[dim][0],
            Some(j) => &self.columns[dim][j as usize],
        }
    }

    /// `Q = (∩ᵢ Qᵢ) − {o}` (Definition 4). `|Q|` is `MaxBitScore(o)`.
    ///
    /// Allocates the result; the hot path uses [`BitmapIndex::q_into`].
    pub fn q_vec(&self, o: ObjectId) -> BitVec {
        let mut q = BitVec::zeros(self.n);
        self.q_into(o, &mut q);
        q
    }

    /// `P = ∩ᵢ Pᵢ` (Definition 4).
    ///
    /// Allocates the result; the hot path uses [`BitmapIndex::p_into`].
    pub fn p_vec(&self, o: ObjectId) -> BitVec {
        let mut p = BitVec::zeros(self.n);
        self.p_into(o, &mut p);
        p
    }

    /// `[Qᵢ]` column index for `o` in `dim` (0 = the all-ones missing slot,
    /// also selected when `o` holds the dimension's minimum).
    #[inline]
    fn q_col_index(&self, o: ObjectId, dim: usize) -> usize {
        match self.value_index(o, dim) {
            None => 0,
            Some(j) => (j - 1) as usize,
        }
    }

    /// `[Pᵢ]` column index for `o` in `dim` (0 when missing).
    #[inline]
    fn p_col_index(&self, o: ObjectId, dim: usize) -> usize {
        match self.value_index(o, dim) {
            None => 0,
            Some(j) => j as usize,
        }
    }

    /// Collect the word slices (and suffix tables) of `o`'s non-trivial
    /// `[Qᵢ]` selections — column 0 is the intersection identity and is
    /// skipped, as in [`crate::intersect_selected_into`]. Returns how many
    /// were kept.
    #[inline]
    fn q_selection<'a>(
        &'a self,
        o: ObjectId,
        words: &mut [&'a [u64]; MAX_DIMS],
        suffix: &mut [&'a [u32]; MAX_DIMS],
    ) -> usize {
        let mut m = 0;
        for dim in 0..self.dims {
            let c = self.q_col_index(o, dim);
            if c > 0 {
                words[m] = self.columns[dim][c].as_words();
                suffix[m] = &self.block_suffix[dim][c];
                m += 1;
            }
        }
        m
    }

    /// Intersect one selected column per dimension into `dst`; the
    /// all-column-0 fallback is the live mask (all-ones on static
    /// indexes, tombstone-aware on dynamic ones).
    fn fill_selected(&self, col_idx: impl Fn(usize) -> usize, dst: &mut BitVec) {
        crate::intersect_selected_into(&self.columns, col_idx, self.live.live_mask(), dst);
    }

    /// Fill caller-owned scratch with `Q = (∩ᵢ Qᵢ) − {o}` in one fused pass
    /// — no allocation.
    ///
    /// # Panics
    /// Panics if `q.len() != self.n()`.
    pub fn q_into(&self, o: ObjectId, q: &mut BitVec) {
        assert_eq!(q.len(), self.n, "scratch length mismatch");
        self.fill_selected(|d| self.q_col_index(o, d), q);
        q.clear(o as usize);
    }

    /// Fill caller-owned scratch with `P = ∩ᵢ Pᵢ` in one fused pass — no
    /// allocation.
    ///
    /// # Panics
    /// Panics if `p.len() != self.n()`.
    pub fn p_into(&self, o: ObjectId, p: &mut BitVec) {
        assert_eq!(p.len(), self.n, "scratch length mismatch");
        self.fill_selected(|d| self.p_col_index(o, d), p);
    }

    /// Fill both `Q` and `P` scratch vectors — no allocation. A convenience
    /// over [`BitmapIndex::q_into`] + [`BitmapIndex::p_into`] (two
    /// vectorized passes; a word-interleaved single pass benchmarked
    /// slower because it defeats SIMD).
    ///
    /// # Panics
    /// Panics if either scratch length differs from `self.n()`.
    pub fn q_p_into(&self, o: ObjectId, q: &mut BitVec, p: &mut BitVec) {
        self.q_into(o, q);
        self.p_into(o, p);
    }

    /// `MaxBitScore(o) = |Q|` (Heuristic 2).
    pub fn max_bit_score(&self, o: ObjectId) -> usize {
        self.max_bit_score_counted(o)
    }

    /// `MaxBitScore(o)` as a fused multi-way AND-popcount over the column
    /// words — nothing is materialized and nothing is allocated.
    pub fn max_bit_score_counted(&self, o: ObjectId) -> usize {
        let mut words: [&[u64]; MAX_DIMS] = [&[]; MAX_DIMS];
        let mut suffix: [&[u32]; MAX_DIMS] = [&[]; MAX_DIMS];
        let m = self.q_selection(o, &mut words, &mut suffix);
        if m == 0 {
            // Every live object (o is live by contract) minus o itself.
            return self.live_count() - 1;
        }
        let nwords = words[0].len();
        let mut total = 0usize;
        let mut w = 0usize;
        while w < nwords {
            let end = (w + SUFFIX_BLOCK_WORDS).min(nwords);
            total += block_and_count(&words, m, w, end);
            w = end;
        }
        // o ∈ [Qᵢ] for every i (o[i] ≥ o[i], and the missing slot is
        // all-ones), so |Q| = |∩ᵢ Qᵢ| − 1 without clearing o's bit.
        total - 1
    }

    /// Heuristic 2 in one call: `Some(MaxBitScore(o))` when it exceeds
    /// `tau`, `None` when `MaxBitScore(o) ≤ tau` — i.e. `None` means
    /// *prune*. The decision is exactly `max_bit_score(o) ≤ tau`, but the
    /// fused AND-popcount stops as soon as the bits counted so far plus the
    /// sparsest column's remaining suffix popcount can no longer exceed
    /// `tau`: on Heuristic-2-heavy workloads most of each scan is skipped.
    /// This is the hot path of Algorithm 3 — most visited objects die here.
    pub fn max_bit_score_above(&self, o: ObjectId, tau: usize) -> Option<usize> {
        let mut words: [&[u64]; MAX_DIMS] = [&[]; MAX_DIMS];
        let mut suffix: [&[u32]; MAX_DIMS] = [&[]; MAX_DIMS];
        let m = self.q_selection(o, &mut words, &mut suffix);
        if m == 0 {
            let mbs = self.live_count() - 1;
            return (mbs > tau).then_some(mbs);
        }
        // o's own bit is part of every count here, so the prune condition
        // |Q| ≤ tau reads |∩ᵢ Qᵢ| ≤ tau + 1.
        let limit = tau + 1;
        // Upfront: the sparsest single column already bounds |∩ᵢ Qᵢ|.
        let min0 = suffix[..m].iter().map(|s| s[0] as usize).min().unwrap();
        if min0 <= limit {
            return None;
        }
        let nwords = words[0].len();
        let mut total = 0usize;
        let mut block = 0usize;
        let mut w = 0usize;
        while w < nwords {
            let end = (w + SUFFIX_BLOCK_WORDS).min(nwords);
            total += block_and_count(&words, m, w, end);
            w = end;
            block += 1;
            let min_suffix = suffix[..m].iter().map(|s| s[block] as usize).min().unwrap();
            if total + min_suffix <= limit {
                return None;
            }
        }
        let mbs = total - 1;
        (mbs > tau).then_some(mbs)
    }

    /// Resolve the `[Qᵢ]`/`[Pᵢ]` column picks for an **arbitrary value
    /// vector** — the cross-shard scoring entry point: a shard index built
    /// with [`BitmapIndex::build_range`] can score any candidate, member
    /// or not, from its per-dimension values. `value(d)` returns the
    /// candidate's observation in dimension `d` (`None` = missing).
    ///
    /// For shard members the resolved picks coincide exactly with
    /// [`BitmapIndex::q_column`] / [`BitmapIndex::p_column`]; for
    /// non-members the columns encode the same set predicates
    /// (`{p : p missing ∨ p ≥ v}` and `{p : p missing ∨ p > v}`).
    pub fn select_for(&self, mut value: impl FnMut(usize) -> Option<f64>) -> ColumnSelection {
        let mut sel = ColumnSelection {
            q: [0; MAX_DIMS],
            p: [0; MAX_DIMS],
            eq: [0; MAX_DIMS],
        };
        for dim in 0..self.dims {
            if let Some(v) = value(dim) {
                let vals = &self.values[dim];
                // IEEE `<` probe against the `==`-deduped table (see
                // `build_range`): `c` counts the strictly smaller values.
                let c = vals.partition_point(|&x| x < v);
                let present = c < vals.len() && vals[c] == v;
                sel.q[dim] = c as u32;
                sel.p[dim] = if present { c as u32 + 1 } else { c as u32 };
                sel.eq[dim] = if present { c as u32 + 1 } else { 0 };
            }
        }
        sel
    }

    /// Fill caller-owned scratch with the selection's
    /// `Q = ∩ᵢ columns[i][sel.q[i]]`, clearing `member`'s bit when the
    /// candidate is a member of this index (local id). No allocation.
    ///
    /// # Panics
    /// Panics if `q.len() != self.n()` or `member` is out of range.
    pub fn q_into_selected(&self, sel: &ColumnSelection, member: Option<usize>, q: &mut BitVec) {
        assert_eq!(q.len(), self.n, "scratch length mismatch");
        self.fill_selected(|d| sel.q[d] as usize, q);
        if let Some(local) = member {
            q.clear(local);
        }
    }

    /// Fill caller-owned scratch with the selection's
    /// `P = ∩ᵢ columns[i][sel.p[i]]` — no allocation.
    ///
    /// # Panics
    /// Panics if `p.len() != self.n()`.
    pub fn p_into_selected(&self, sel: &ColumnSelection, p: &mut BitVec) {
        assert_eq!(p.len(), self.n, "scratch length mismatch");
        self.fill_selected(|d| sel.p[d] as usize, p);
    }

    /// Cheap upper bound of `|∩ᵢ columns[i][sel.q[i]]|`: the sparsest
    /// selected column's total popcount (`O(dims)` table lookups, no words
    /// touched). The parallel engine's cross-shard Heuristic 2 sums these
    /// to skip whole shards.
    pub fn q_selected_upper_bound(&self, sel: &ColumnSelection) -> usize {
        let mut ub = self.live_count();
        for dim in 0..self.dims {
            let c = sel.q[dim] as usize;
            if c > 0 {
                ub = ub.min(self.block_suffix[dim][c][0] as usize);
            }
        }
        ub
    }

    /// `|∩ᵢ columns[i][sel.q[i]]|` with a *budget* early exit: returns
    /// `None` as soon as the count is provably `≤ budget` (blockwise, via
    /// the suffix-popcount tables — the same certificate as
    /// [`BitmapIndex::max_bit_score_above`]), else the exact count. A
    /// `None` lets the sharded Heuristic 2 prune without finishing the
    /// scan; a `Some` feeds the running cross-shard total.
    pub fn q_count_selected_above(&self, sel: &ColumnSelection, budget: usize) -> Option<usize> {
        let mut words: [&[u64]; MAX_DIMS] = [&[]; MAX_DIMS];
        let mut suffix: [&[u32]; MAX_DIMS] = [&[]; MAX_DIMS];
        let mut m = 0;
        for dim in 0..self.dims {
            let c = sel.q[dim] as usize;
            if c > 0 {
                words[m] = self.columns[dim][c].as_words();
                suffix[m] = &self.block_suffix[dim][c];
                m += 1;
            }
        }
        if m == 0 {
            let live = self.live_count();
            return (live > budget).then_some(live);
        }
        let min0 = suffix[..m].iter().map(|s| s[0] as usize).min().unwrap();
        if min0 <= budget {
            return None;
        }
        let nwords = words[0].len();
        let mut total = 0usize;
        let mut block = 0usize;
        let mut w = 0usize;
        while w < nwords {
            let end = (w + SUFFIX_BLOCK_WORDS).min(nwords);
            total += block_and_count(&words, m, w, end);
            w = end;
            block += 1;
            if total > budget {
                // Keep decided: finish the scan for the exact count (the
                // cross-shard caller needs it to budget later shards).
                while w < nwords {
                    let end = (w + SUFFIX_BLOCK_WORDS).min(nwords);
                    total += block_and_count(&words, m, w, end);
                    w = end;
                }
                return Some(total);
            }
            let min_suffix = suffix[..m].iter().map(|s| s[block] as usize).min().unwrap();
            if total + min_suffix <= budget {
                return None;
            }
        }
        (total > budget).then_some(total)
    }

    /// 1-based value slot of local object `local` in `dim`, `0` when
    /// missing — the raw form of [`BitmapIndex::value_index`], directly
    /// comparable with [`ColumnSelection::eq_slot`] for tie detection.
    #[inline]
    pub fn value_slot(&self, local: usize, dim: usize) -> u32 {
        match self.val_idx[local * self.dims + dim] {
            MISSING => 0,
            j => j,
        }
    }

    /// Index size in bits: the paper's **logical** `cost_s =
    /// Σᵢ (Cᵢ + 1) · |S|`. This is the quantity Figs. 11's "index size"
    /// axis plots; the process actually allocates whole 64-bit words per
    /// column — see [`BitmapIndex::allocated_bytes`] for that number.
    pub fn size_bits(&self) -> u64 {
        self.columns
            .iter()
            .map(|cols| cols.len() as u64 * self.n as u64)
            .sum()
    }

    /// The paper's logical size in bytes (`cost_s / 8`, rounded up once at
    /// the end). **Not** the allocation footprint: each column rounds up to
    /// word granularity separately — use [`BitmapIndex::allocated_bytes`]
    /// when accounting for memory.
    pub fn size_bytes(&self) -> u64 {
        self.size_bits().div_ceil(8)
    }

    /// Actual allocated column storage in bytes: every column holds
    /// `ceil(|S| / 64)` 64-bit words regardless of the logical bit count.
    /// Always ≥ [`BitmapIndex::size_bytes`].
    pub fn allocated_bytes(&self) -> u64 {
        let ncols: u64 = self.columns.iter().map(|c| c.len() as u64).sum();
        ncols * (self.n as u64).div_ceil(64) * 8
    }
}

/// Resolved per-dimension column picks (plus equality slots) for one
/// candidate against one [`BitmapIndex`] — produced by
/// [`BitmapIndex::select_for`], consumed by the `*_selected` scoring
/// methods. Plain `Copy` data on the stack: the parallel engine keeps one
/// per shard in its per-worker scratch, so candidate scoring allocates
/// nothing.
#[derive(Clone, Copy, Debug)]
pub struct ColumnSelection {
    /// `[Qᵢ]` column index per dimension (0 = the all-ones missing slot).
    q: [u32; MAX_DIMS],
    /// `[Pᵢ]` column index per dimension.
    p: [u32; MAX_DIMS],
    /// 1-based slot of the candidate's value in the index's distinct-value
    /// table, or 0 when missing / not present in this shard.
    eq: [u32; MAX_DIMS],
}

impl Default for ColumnSelection {
    /// The all-missing selection: every pick is the all-ones column 0.
    fn default() -> Self {
        ColumnSelection {
            q: [0; MAX_DIMS],
            p: [0; MAX_DIMS],
            eq: [0; MAX_DIMS],
        }
    }
}

impl ColumnSelection {
    /// 1-based slot of the candidate's value in `dim`'s distinct-value
    /// table (0 = candidate misses `dim` or its value does not occur in
    /// this index). Two observations are equal **iff** their slots are
    /// equal and non-zero, so tie detection against
    /// [`BitmapIndex::value_slot`] is one integer compare.
    #[inline]
    pub fn eq_slot(&self, dim: usize) -> u32 {
        self.eq[dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::{dominance, fixtures};

    fn bits_to_string(b: &BitVec) -> String {
        (0..b.len())
            .map(|i| if b.get(i) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn fig6_q3_of_b3() {
        // §4.3: for B3, [Q3] = 00011001011111111111 (objects in label order
        // A1..A5, B1..B5, C1..C5, D1..D5).
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let b3 = ds.id_by_label("B3").unwrap();
        assert_eq!(bits_to_string(idx.q_column(b3, 2)), "00011001011111111111");
    }

    #[test]
    fn fig6_worked_c2_vectors() {
        // §4.3's worked example for C2 lists all eight [Pi]/[Qi] vectors.
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let c2 = ds.id_by_label("C2").unwrap();
        assert_eq!(bits_to_string(idx.p_column(c2, 0)), "11111111110011110011");
        assert_eq!(bits_to_string(idx.p_column(c2, 1)), "11111111111111111111");
        assert_eq!(bits_to_string(idx.p_column(c2, 2)), "11111111111111111111");
        assert_eq!(bits_to_string(idx.p_column(c2, 3)), "10111101111011111011");
        for dim in 0..4 {
            assert_eq!(
                bits_to_string(idx.q_column(c2, dim)),
                "11111111111111111111",
                "dim {dim}"
            );
        }
        // [P] = ∩ [Pi] with |P| = 14.
        assert_eq!(bits_to_string(&idx.p_vec(c2)), "10111101110011110011");
        assert_eq!(idx.p_vec(c2).count_ones(), 14);
    }

    #[test]
    fn fig8_max_bit_scores() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for (label, expected) in fixtures::fig8_maxbitscores() {
            let o = ds.id_by_label(label).unwrap();
            assert_eq!(idx.max_bit_score(o), expected, "MaxBitScore({label})");
        }
    }

    #[test]
    fn columns_match_set_semantics() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for dim in 0..ds.dims() {
            let vals = idx.values(dim);
            for c in 0..idx.num_columns(dim) {
                let col = idx.column(dim, c);
                for p in ds.ids() {
                    let expected = match ds.value(p, dim) {
                        None => true,
                        Some(v) => c == 0 || v > vals[c - 1],
                    };
                    assert_eq!(col.get(p as usize), expected, "dim {dim} col {c} obj {p}");
                }
            }
        }
    }

    #[test]
    fn q_contains_p() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for o in ds.ids() {
            let mut p = idx.p_vec(o);
            p.clear(o as usize); // o itself is never in Q
            let q = idx.q_vec(o);
            assert!(p.is_subset_of(&q), "P ⊄ Q for object {o}");
        }
    }

    #[test]
    fn max_bit_score_bounds_true_score() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for o in ds.ids() {
            assert!(dominance::score_of(&ds, o) <= idx.max_bit_score(o));
        }
    }

    #[test]
    fn into_variants_match_clone_and_chain_oracle() {
        // Independent oracle: the pre-scratch clone + and_assign chain over
        // *all* selected columns (no column-0 skip, no block kernels).
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let oracle_q = |o: ObjectId| {
            let mut q = idx.q_column(o, 0).clone();
            for dim in 1..idx.dims() {
                q.and_assign(idx.q_column(o, dim));
            }
            q.clear(o as usize);
            q
        };
        let oracle_p = |o: ObjectId| {
            let mut p = idx.p_column(o, 0).clone();
            for dim in 1..idx.dims() {
                p.and_assign(idx.p_column(o, dim));
            }
            p
        };
        let mut q = BitVec::ones(ds.len());
        let mut p = BitVec::ones(ds.len());
        for o in ds.ids() {
            idx.q_into(o, &mut q);
            assert_eq!(q, oracle_q(o), "q_into object {o}");
            idx.p_into(o, &mut p);
            assert_eq!(p, oracle_p(o), "p_into object {o}");
            idx.q_p_into(o, &mut q, &mut p);
            assert_eq!(q, oracle_q(o), "q_p_into q of object {o}");
            assert_eq!(p, oracle_p(o), "q_p_into p of object {o}");
            assert_eq!(q, idx.q_vec(o), "q_vec routes through q_into");
            assert_eq!(
                idx.max_bit_score_counted(o),
                oracle_q(o).count_ones(),
                "counted MaxBitScore of object {o}"
            );
        }
    }

    #[test]
    fn range_builds_partition_the_full_index() {
        // Sharded Q/P popcounts must sum to the whole-dataset counts, and
        // member selections must coincide with the member accessors.
        let ds = fixtures::fig3_sample();
        let full = BitmapIndex::build(&ds);
        for cuts in [vec![0, 20], vec![0, 8, 20], vec![0, 5, 11, 16, 20]] {
            let shards: Vec<BitmapIndex> = cuts
                .windows(2)
                .map(|w| BitmapIndex::build_range(&ds, w[0], w[1]))
                .collect();
            for o in ds.ids() {
                let mut q_total = 0;
                let mut p_total = 0;
                for s in &shards {
                    let sel = s.select_for(|d| ds.value(o, d));
                    let member = (s.base()..s.base() + s.n())
                        .contains(&(o as usize))
                        .then(|| o as usize - s.base());
                    let mut q = BitVec::zeros(s.n());
                    let mut p = BitVec::zeros(s.n());
                    s.q_into_selected(&sel, member, &mut q);
                    s.p_into_selected(&sel, &mut p);
                    // Selected columns match the global predicate bit by bit.
                    for local in 0..s.n() {
                        let g = s.base() + local;
                        assert_eq!(
                            q.get(local),
                            full.q_vec(o).get(g),
                            "Q obj {o} shard base {} bit {local}",
                            s.base()
                        );
                        assert_eq!(p.get(local), full.p_vec(o).get(g), "P obj {o} bit {local}");
                    }
                    q_total += q.count_ones();
                    p_total += p.count_ones();
                    // The fused count agrees (counts include o's own bit when member).
                    let raw = q.count_ones() + usize::from(member.is_some());
                    assert_eq!(s.q_count_selected_above(&sel, 0).unwrap_or(0), raw);
                    assert!(s.q_selected_upper_bound(&sel) >= raw);
                }
                assert_eq!(q_total, full.q_vec(o).count_ones(), "obj {o}");
                assert_eq!(p_total, full.p_vec(o).count_ones(), "obj {o}");
            }
        }
    }

    #[test]
    fn selection_eq_slots_detect_exact_ties() {
        let ds = fixtures::fig3_sample();
        let shard = BitmapIndex::build_range(&ds, 7, 15);
        for o in ds.ids() {
            let sel = shard.select_for(|d| ds.value(o, d));
            for local in 0..shard.n() {
                let pid = (shard.base() + local) as ObjectId;
                for d in 0..ds.dims() {
                    let tied = match (ds.value(o, d), ds.value(pid, d)) {
                        (Some(a), Some(b)) => a == b,
                        _ => false,
                    };
                    let slot = shard.value_slot(local, d);
                    assert_eq!(
                        sel.eq_slot(d) != 0 && sel.eq_slot(d) == slot,
                        tied,
                        "o={o} pid={pid} dim={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn budgeted_count_agrees_with_exact() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for o in ds.ids() {
            let sel = idx.select_for(|d| ds.value(o, d));
            let exact = idx.q_vec(o).count_ones() + 1; // q_vec cleared o's bit
            for budget in [0usize, 1, 5, exact.saturating_sub(1), exact, exact + 3] {
                match idx.q_count_selected_above(&sel, budget) {
                    Some(c) => {
                        assert_eq!(c, exact, "obj {o} budget {budget}");
                        assert!(c > budget);
                    }
                    None => assert!(exact <= budget, "obj {o} budget {budget}"),
                }
            }
        }
    }

    #[test]
    fn negative_zero_shares_positive_zeros_slot() {
        // distinct_values dedups −0.0 into 0.0 with IEEE `==`; the build
        // lookup must agree, or −0.0/0.0 objects land in the wrong column.
        let ds =
            Dataset::from_rows(1, &[vec![Some(-0.0)], vec![Some(0.0)], vec![Some(1.0)]]).unwrap();
        let idx = BitmapIndex::build(&ds);
        assert_eq!(idx.cardinality(0), 2);
        assert_eq!(idx.value_index(0, 0), idx.value_index(1, 0));
        assert_eq!(idx.value_index(2, 0), Some(2));
        // Both zeros tie; 1.0 beats both: MaxBitScore 2, 2, 0.
        assert_eq!(idx.max_bit_score(0), 2);
        assert_eq!(idx.max_bit_score(1), 2);
        assert_eq!(idx.max_bit_score(2), 0);
    }

    #[test]
    fn allocated_bytes_uses_word_granularity() {
        // Fig. 3: 20 objects -> every column is one 64-bit word.
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let ncols: u64 = (0..4).map(|d| idx.num_columns(d) as u64).sum();
        assert_eq!(idx.allocated_bytes(), ncols * 8);
        assert!(idx.allocated_bytes() >= idx.size_bytes());
    }

    #[test]
    fn size_matches_formula() {
        // Fig. 3 dataset: C = (4, 5, 6, 7) distinct values per dim.
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        assert_eq!(idx.cardinality(0), 4);
        assert_eq!(idx.cardinality(1), 5);
        assert_eq!(idx.cardinality(2), 6);
        assert_eq!(idx.cardinality(3), 7);
        let expected: u64 = [4u64, 5, 6, 7].iter().map(|c| (c + 1) * 20).sum();
        assert_eq!(idx.size_bits(), expected);
        assert_eq!(idx.size_bytes(), expected.div_ceil(8));
    }

    /// Deterministic splitmix-style value stream for the dynamic tests.
    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn random_row(seed: &mut u64, dims: usize) -> Vec<Option<f64>> {
        loop {
            let row: Vec<Option<f64>> = (0..dims)
                .map(|_| {
                    if mix(seed) % 10 < 3 {
                        None
                    } else {
                        // Mix of integers, halves, and signed zeros.
                        Some(match mix(seed) % 8 {
                            0 => -0.0,
                            1 => 0.0,
                            m => (mix(seed) % 6) as f64 + if m == 2 { 0.5 } else { 0.0 },
                        })
                    }
                })
                .collect();
            if row.iter().any(Option::is_some) {
                return row;
            }
        }
    }

    /// The dynamic index must answer every live candidate exactly like an
    /// index rebuilt from scratch over the live rows: same `Q`/`P`
    /// popcounts, same budgeted-count decisions, and sound upper bounds —
    /// across appends, tombstones, and cell updates (including signed
    /// zeros and to/from-missing transitions).
    #[test]
    fn dynamic_maintenance_matches_rebuild() {
        let dims = 3;
        let mut seed = 7u64;
        // Slot-indexed live rows (None = tombstoned).
        let mut rows: Vec<Option<Vec<Option<f64>>>> = Vec::new();
        let mut dyn_idx = {
            let ds = Dataset::from_rows(dims, &[]).unwrap();
            BitmapIndex::build(&ds)
        };
        for step in 0..180 {
            let live_slots: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].is_some()).collect();
            match mix(&mut seed) % 10 {
                // Tombstone a live slot.
                0..=2 if !live_slots.is_empty() => {
                    let s = live_slots[mix(&mut seed) as usize % live_slots.len()];
                    assert!(dyn_idx.tombstone_row(s));
                    assert!(!dyn_idx.tombstone_row(s), "double tombstone is a no-op");
                    rows[s] = None;
                }
                // Update one cell of a live slot.
                3..=4 if !live_slots.is_empty() => {
                    let s = live_slots[mix(&mut seed) as usize % live_slots.len()];
                    let d = mix(&mut seed) as usize % dims;
                    let nv = random_row(&mut seed, dims)[d];
                    let row = rows[s].as_mut().unwrap();
                    let mut cand = row.clone();
                    cand[d] = nv;
                    if cand.iter().any(Option::is_some) {
                        dyn_idx.set_cell(s, d, nv);
                        *row = cand;
                    }
                }
                // Append a fresh row.
                _ => {
                    let row = random_row(&mut seed, dims);
                    let local = dyn_idx.append_row(|d| row[d]);
                    assert_eq!(local, rows.len());
                    rows.push(Some(row));
                }
            }
            if step % 9 != 0 && step != 179 {
                continue; // compare every few steps (and at the end)
            }
            // Rebuild oracle over the live rows only.
            let live_rows: Vec<Vec<Option<f64>>> = rows.iter().flatten().cloned().collect();
            let oracle = BitmapIndex::build(&Dataset::from_rows(dims, &live_rows).unwrap());
            assert_eq!(dyn_idx.live_count(), live_rows.len());
            assert_eq!(dyn_idx.n() - dyn_idx.dead_count(), live_rows.len());
            let mut q = BitVec::zeros(dyn_idx.n());
            let mut p = BitVec::zeros(dyn_idx.n());
            let mut oq = BitVec::zeros(oracle.n());
            let mut op = BitVec::zeros(oracle.n());
            for row in rows.iter().flatten() {
                let sel = dyn_idx.select_for(|d| row[d]);
                let osel = oracle.select_for(|d| row[d]);
                dyn_idx.q_into_selected(&sel, None, &mut q);
                dyn_idx.p_into_selected(&sel, &mut p);
                oracle.q_into_selected(&osel, None, &mut oq);
                oracle.p_into_selected(&osel, &mut op);
                let (qc, oqc) = (q.count_ones(), oq.count_ones());
                assert_eq!(qc, oqc, "Q count diverged at step {step}");
                assert_eq!(p.count_ones(), op.count_ones(), "P count at {step}");
                // Dead slots never leak into a fill.
                for dead in (0..rows.len()).filter(|&i| rows[i].is_none()) {
                    assert!(!q.get(dead) && !p.get(dead), "dead slot {dead} set");
                }
                assert!(dyn_idx.q_selected_upper_bound(&sel) >= qc);
                for budget in [0, qc.saturating_sub(1), qc, qc + 2] {
                    assert_eq!(
                        dyn_idx.q_count_selected_above(&sel, budget),
                        (qc > budget).then_some(qc),
                        "budgeted count at step {step} budget {budget}"
                    );
                }
            }
            // Member-form scoring agrees with the oracle's member form.
            let mut live_i = 0;
            for (slot, row) in rows.iter().enumerate() {
                let Some(_) = row else { continue };
                let mbs = dyn_idx.max_bit_score_counted(slot as ObjectId);
                let ombs = oracle.max_bit_score_counted(live_i as ObjectId);
                assert_eq!(mbs, ombs, "MaxBitScore at step {step} slot {slot}");
                for tau in [0, mbs.saturating_sub(1), mbs, mbs + 1] {
                    assert_eq!(
                        dyn_idx.max_bit_score_above(slot as ObjectId, tau),
                        oracle.max_bit_score_above(live_i as ObjectId, tau),
                        "H2 decision at step {step} slot {slot} tau {tau}"
                    );
                }
                live_i += 1;
            }
        }
    }

    /// Disassemble an index into the logical parts `from_store_parts`
    /// adopts (the store's export shape).
    #[allow(clippy::type_complexity)]
    fn export_parts(
        idx: &BitmapIndex,
    ) -> (usize, Vec<Vec<f64>>, Vec<Vec<BitVec>>, Vec<u32>, Tombstones) {
        let dims = idx.dims();
        let values: Vec<Vec<f64>> = (0..dims).map(|d| idx.values(d).to_vec()).collect();
        let columns: Vec<Vec<BitVec>> = (0..dims)
            .map(|d| {
                (0..idx.num_columns(d))
                    .map(|c| idx.column(d, c).clone())
                    .collect()
            })
            .collect();
        let slots: Vec<u32> = (0..idx.n())
            .flat_map(|o| (0..dims).map(move |d| idx.value_slot(o, d)))
            .collect();
        (
            dims,
            values,
            columns,
            slots,
            Tombstones::from_live_mask(idx.live_mask().clone()),
        )
    }

    #[test]
    fn store_parts_roundtrip_including_tombstones() {
        let ds = fixtures::fig3_sample();
        let mut idx = BitmapIndex::build(&ds);
        idx.tombstone_row(4);
        idx.tombstone_row(17);
        let (dims, values, columns, slots, live) = export_parts(&idx);
        let rebuilt = BitmapIndex::from_store_parts(dims, values, columns, slots, live).unwrap();
        assert_eq!(rebuilt.n(), idx.n());
        assert_eq!(rebuilt.live_count(), idx.live_count());
        for o in ds.ids().filter(|&o| !matches!(o, 4 | 17)) {
            assert_eq!(rebuilt.q_vec(o), idx.q_vec(o), "Q of {o}");
            assert_eq!(rebuilt.p_vec(o), idx.p_vec(o), "P of {o}");
            let mbs = idx.max_bit_score_counted(o);
            assert_eq!(rebuilt.max_bit_score_counted(o), mbs);
            // Suffix tables were recomputed: the budgeted scans agree.
            for tau in [0, mbs.saturating_sub(1), mbs] {
                assert_eq!(
                    rebuilt.max_bit_score_above(o, tau),
                    idx.max_bit_score_above(o, tau),
                    "H2 of {o} at tau {tau}"
                );
            }
        }
    }

    #[test]
    fn store_parts_reject_inconsistencies() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let parts = export_parts(&idx);
        // Baseline sanity: unmodified parts load.
        {
            let (d, v, c, s, l) = parts.clone();
            assert!(BitmapIndex::from_store_parts(d, v, c, s, l).is_ok());
        }
        // Out-of-range value slot.
        {
            let (d, v, c, mut s, l) = parts.clone();
            s[3] = 99;
            let err = BitmapIndex::from_store_parts(d, v, c, s, l).unwrap_err();
            assert!(err.contains("exceeds"), "{err}");
        }
        // Column 0 not all-ones.
        {
            let (d, v, mut c, s, l) = parts.clone();
            c[0][0].clear(2);
            let err = BitmapIndex::from_store_parts(d, v, c, s, l).unwrap_err();
            assert!(err.contains("all-ones"), "{err}");
        }
        // Column count off by one.
        {
            let (d, v, mut c, s, l) = parts.clone();
            c[1].pop();
            assert!(BitmapIndex::from_store_parts(d, v, c, s, l).is_err());
        }
        // Unsorted value table.
        {
            let (d, mut v, c, s, l) = parts.clone();
            v[0].swap(0, 1);
            assert!(BitmapIndex::from_store_parts(d, v, c, s, l).is_err());
        }
        // Live mask length disagrees with the columns.
        {
            let (d, v, c, s, _) = parts;
            let l = Tombstones::all_live(idx.n() + 1);
            assert!(BitmapIndex::from_store_parts(d, v, c, s, l).is_err());
        }
    }

    #[test]
    fn append_into_empty_and_delete_everything() {
        let ds = Dataset::from_rows(2, &[]).unwrap();
        let mut idx = BitmapIndex::build(&ds);
        let a = idx.append_row(|d| [Some(1.0), None][d]);
        let b = idx.append_row(|d| [Some(2.0), Some(0.5)][d]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(idx.live_count(), 2);
        // 2.0 ≥-dominates: MaxBitScore(a) counts b, not vice versa.
        assert_eq!(idx.max_bit_score_counted(0), 1);
        assert_eq!(idx.max_bit_score_counted(1), 0);
        assert!(idx.tombstone_row(0));
        assert!(idx.tombstone_row(1));
        assert_eq!(idx.live_count(), 0);
        assert_eq!(idx.dead_count(), 2);
        // Rebirth by appending again into the tombstone-saturated index.
        let c = idx.append_row(|_| Some(3.0));
        assert_eq!(c, 2);
        assert_eq!(idx.live_count(), 1);
        assert_eq!(idx.max_bit_score_counted(2), 0);
    }

    #[test]
    fn float_values_supported() {
        // §4.3: "the bitmap index does support floating-point numbers".
        // The fourth object misses dimension 0 entirely (it only observes
        // the padding dimension 1, since all-missing rows are rejected).
        let ds = Dataset::from_rows(
            2,
            &[
                vec![Some(0.5), Some(0.0)],
                vec![Some(1.25), Some(0.0)],
                vec![Some(0.5), Some(0.0)],
                vec![None, Some(0.0)],
            ],
        )
        .unwrap();
        let idx = BitmapIndex::build(&ds);
        assert_eq!(idx.cardinality(0), 2);
        assert_eq!(idx.value_index(0, 0), Some(1));
        assert_eq!(idx.value_index(1, 0), Some(2));
        assert_eq!(idx.value_index(3, 0), None);
        // 0.5 is the minimum, so [Q1] is the all-ones column: everything but
        // the object itself might be dominated.
        assert_eq!(idx.max_bit_score(0), 3); // {1, 2, 3}
                                             // 1.25 is the maximum: only the equal-or-above set {itself} plus the
                                             // missing object remain, minus self.
        assert_eq!(idx.max_bit_score(1), 1); // {3}
    }

    use tkd_model::Dataset;
}
