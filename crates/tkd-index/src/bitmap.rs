//! The range-encoded bitmap index of §4.3 (Fig. 6).

use tkd_bitvec::BitVec;
use tkd_model::{stats, Dataset, ObjectId};

/// Sentinel marking a missing value in the per-object column-index table.
const MISSING: u32 = u32::MAX;

/// Range-encoded bitmap index over an incomplete dataset.
///
/// Storage cost is exactly the paper's `Σᵢ (Cᵢ + 1) · |S|` bits
/// ([`BitmapIndex::size_bits`]). Building is incremental per dimension:
/// column `c` equals column `c − 1` minus the objects whose value is `v_c`,
/// so construction is `O(Σᵢ (Cᵢ + 1) · N / 64)` word operations.
#[derive(Clone, Debug)]
pub struct BitmapIndex {
    n: usize,
    dims: usize,
    /// Sorted distinct observed values per dimension.
    values: Vec<Vec<f64>>,
    /// `columns[i][c]` = `{p : p[i] missing ∨ p[i] > values[i][c-1]}`;
    /// `columns[i][0]` is all-ones (the missing slot).
    columns: Vec<Vec<BitVec>>,
    /// Per object, per dimension: 1-based index of the object's value in
    /// `values[i]`, or `MISSING`.
    val_idx: Vec<u32>,
}

impl BitmapIndex {
    /// Build the index for `ds`.
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.len();
        let dims = ds.dims();
        let mut values = Vec::with_capacity(dims);
        let mut columns = Vec::with_capacity(dims);
        let mut val_idx = vec![MISSING; n * dims];

        for dim in 0..dims {
            let vals = stats::distinct_values(ds, dim);
            // Objects holding each distinct value, for incremental column
            // construction.
            let mut holders: Vec<Vec<ObjectId>> = vec![Vec::new(); vals.len()];
            for o in ds.ids() {
                if let Some(v) = ds.value(o, dim) {
                    let j = vals.partition_point(|x| x.total_cmp(&v).is_lt());
                    debug_assert_eq!(vals[j], v);
                    holders[j].push(o);
                    val_idx[o as usize * dims + dim] = (j + 1) as u32;
                }
            }
            let mut cols = Vec::with_capacity(vals.len() + 1);
            let mut cur = BitVec::ones(n);
            cols.push(cur.clone());
            for hs in &holders {
                for &o in hs {
                    cur.clear(o as usize);
                }
                cols.push(cur.clone());
            }
            values.push(vals);
            columns.push(cols);
        }
        BitmapIndex {
            n,
            dims,
            values,
            columns,
            val_idx,
        }
    }

    /// Number of indexed objects.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Dimensional cardinality `Cᵢ`.
    pub fn cardinality(&self, dim: usize) -> usize {
        self.values[dim].len()
    }

    /// Sorted distinct values of `dim`.
    pub fn values(&self, dim: usize) -> &[f64] {
        &self.values[dim]
    }

    /// Vertical column `c` of `dim` (see the crate docs for its set
    /// semantics). Column 0 is the all-ones missing slot.
    pub fn column(&self, dim: usize, c: usize) -> &BitVec {
        &self.columns[dim][c]
    }

    /// Number of columns of `dim` (`Cᵢ + 1`).
    pub fn num_columns(&self, dim: usize) -> usize {
        self.columns[dim].len()
    }

    /// 1-based value index of `o` in `dim`, or `None` when missing.
    #[inline]
    pub fn value_index(&self, o: ObjectId, dim: usize) -> Option<u32> {
        match self.val_idx[o as usize * self.dims + dim] {
            MISSING => None,
            j => Some(j),
        }
    }

    /// The paper's `[Qᵢ]` for object `o`: all-ones when `o[i]` is missing,
    /// else the column just below `o`'s value.
    #[inline]
    pub fn q_column(&self, o: ObjectId, dim: usize) -> &BitVec {
        match self.value_index(o, dim) {
            None => &self.columns[dim][0],
            Some(j) => &self.columns[dim][(j - 1) as usize],
        }
    }

    /// The paper's `[Pᵢ]` for object `o`: all-ones when `o[i]` is missing,
    /// else the column at `o`'s value.
    #[inline]
    pub fn p_column(&self, o: ObjectId, dim: usize) -> &BitVec {
        match self.value_index(o, dim) {
            None => &self.columns[dim][0],
            Some(j) => &self.columns[dim][j as usize],
        }
    }

    /// `Q = (∩ᵢ Qᵢ) − {o}` (Definition 4). `|Q|` is `MaxBitScore(o)`.
    pub fn q_vec(&self, o: ObjectId) -> BitVec {
        let mut q = self.q_column(o, 0).clone();
        for dim in 1..self.dims {
            q.and_assign(self.q_column(o, dim));
        }
        q.clear(o as usize);
        q
    }

    /// `P = ∩ᵢ Pᵢ` (Definition 4).
    pub fn p_vec(&self, o: ObjectId) -> BitVec {
        let mut p = self.p_column(o, 0).clone();
        for dim in 1..self.dims {
            p.and_assign(self.p_column(o, dim));
        }
        p
    }

    /// `MaxBitScore(o) = |Q|` (Heuristic 2).
    pub fn max_bit_score(&self, o: ObjectId) -> usize {
        self.q_vec(o).count_ones()
    }

    /// Index size in bits: the paper's `cost_s = Σᵢ (Cᵢ + 1) · |S|`.
    pub fn size_bits(&self) -> u64 {
        self.columns
            .iter()
            .map(|cols| cols.len() as u64 * self.n as u64)
            .sum()
    }

    /// Index size in bytes (bit count over 8, rounded up per column word
    /// granularity is ignored — this reports the paper's logical size).
    pub fn size_bytes(&self) -> u64 {
        self.size_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::{dominance, fixtures};

    fn bits_to_string(b: &BitVec) -> String {
        (0..b.len())
            .map(|i| if b.get(i) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn fig6_q3_of_b3() {
        // §4.3: for B3, [Q3] = 00011001011111111111 (objects in label order
        // A1..A5, B1..B5, C1..C5, D1..D5).
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let b3 = ds.id_by_label("B3").unwrap();
        assert_eq!(bits_to_string(idx.q_column(b3, 2)), "00011001011111111111");
    }

    #[test]
    fn fig6_worked_c2_vectors() {
        // §4.3's worked example for C2 lists all eight [Pi]/[Qi] vectors.
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        let c2 = ds.id_by_label("C2").unwrap();
        assert_eq!(bits_to_string(idx.p_column(c2, 0)), "11111111110011110011");
        assert_eq!(bits_to_string(idx.p_column(c2, 1)), "11111111111111111111");
        assert_eq!(bits_to_string(idx.p_column(c2, 2)), "11111111111111111111");
        assert_eq!(bits_to_string(idx.p_column(c2, 3)), "10111101111011111011");
        for dim in 0..4 {
            assert_eq!(
                bits_to_string(idx.q_column(c2, dim)),
                "11111111111111111111",
                "dim {dim}"
            );
        }
        // [P] = ∩ [Pi] with |P| = 14.
        assert_eq!(bits_to_string(&idx.p_vec(c2)), "10111101110011110011");
        assert_eq!(idx.p_vec(c2).count_ones(), 14);
    }

    #[test]
    fn fig8_max_bit_scores() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for (label, expected) in fixtures::fig8_maxbitscores() {
            let o = ds.id_by_label(label).unwrap();
            assert_eq!(idx.max_bit_score(o), expected, "MaxBitScore({label})");
        }
    }

    #[test]
    fn columns_match_set_semantics() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for dim in 0..ds.dims() {
            let vals = idx.values(dim);
            for c in 0..idx.num_columns(dim) {
                let col = idx.column(dim, c);
                for p in ds.ids() {
                    let expected = match ds.value(p, dim) {
                        None => true,
                        Some(v) => c == 0 || v > vals[c - 1],
                    };
                    assert_eq!(col.get(p as usize), expected, "dim {dim} col {c} obj {p}");
                }
            }
        }
    }

    #[test]
    fn q_contains_p() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for o in ds.ids() {
            let mut p = idx.p_vec(o);
            p.clear(o as usize); // o itself is never in Q
            let q = idx.q_vec(o);
            assert!(p.is_subset_of(&q), "P ⊄ Q for object {o}");
        }
    }

    #[test]
    fn max_bit_score_bounds_true_score() {
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        for o in ds.ids() {
            assert!(dominance::score_of(&ds, o) <= idx.max_bit_score(o));
        }
    }

    #[test]
    fn size_matches_formula() {
        // Fig. 3 dataset: C = (4, 5, 6, 7) distinct values per dim.
        let ds = fixtures::fig3_sample();
        let idx = BitmapIndex::build(&ds);
        assert_eq!(idx.cardinality(0), 4);
        assert_eq!(idx.cardinality(1), 5);
        assert_eq!(idx.cardinality(2), 6);
        assert_eq!(idx.cardinality(3), 7);
        let expected: u64 = [4u64, 5, 6, 7].iter().map(|c| (c + 1) * 20).sum();
        assert_eq!(idx.size_bits(), expected);
        assert_eq!(idx.size_bytes(), expected.div_ceil(8));
    }

    #[test]
    fn float_values_supported() {
        // §4.3: "the bitmap index does support floating-point numbers".
        // The fourth object misses dimension 0 entirely (it only observes
        // the padding dimension 1, since all-missing rows are rejected).
        let ds = Dataset::from_rows(
            2,
            &[
                vec![Some(0.5), Some(0.0)],
                vec![Some(1.25), Some(0.0)],
                vec![Some(0.5), Some(0.0)],
                vec![None, Some(0.0)],
            ],
        )
        .unwrap();
        let idx = BitmapIndex::build(&ds);
        assert_eq!(idx.cardinality(0), 2);
        assert_eq!(idx.value_index(0, 0), Some(1));
        assert_eq!(idx.value_index(1, 0), Some(2));
        assert_eq!(idx.value_index(3, 0), None);
        // 0.5 is the minimum, so [Q1] is the all-ones column: everything but
        // the object itself might be dominated.
        assert_eq!(idx.max_bit_score(0), 3); // {1, 2, 3}
                                             // 1.25 is the maximum: only the equal-or-above set {itself} plus the
                                             // missing object remain, minus self.
        assert_eq!(idx.max_bit_score(1), 1); // {3}
    }

    use tkd_model::Dataset;
}
