//! The §4.5 analytical space/time model and the optimal bin count (Eq. 5–8).
//!
//! The paper trades index size against query cost through the bin count `x`:
//!
//! * Eq. 5 — space: `cost_s = N · (x + 1) · d` bits;
//! * Eq. 6 — time: `cost_t = d · (log₂(σN) + ⌈σN / x⌉ − 1)`, the B+-tree
//!   descent plus the bin-interior scan that forms `nonD(o)`;
//! * Eq. 7 — combined objective: `cost = cost_s · cost_t`;
//! * Eq. 8 — its closed-form minimizer `x* = √(σN / (log₂(σN) − 1))`.
//!
//! The paper's worked examples: `x*(N=100K, σ=0.1) = 29` and
//! `x*(N=16K, σ=0.2) = 17`.

/// Eq. 5 — binned index size in bits for uniform bin count `x`.
pub fn space_cost_bits(n: usize, x: usize, d: usize) -> u64 {
    n as u64 * (x as u64 + 1) * d as u64
}

/// Eq. 6 — per-object score cost model (abstract units).
///
/// `sigma` is the missing rate in `[0, 1]`. Returns 0 for degenerate inputs
/// (no missing values or empty data) where the model does not apply.
pub fn query_cost(n: usize, d: usize, sigma: f64, x: usize) -> f64 {
    assert!(x >= 1, "x must be positive");
    let sn = sigma * n as f64;
    if sn <= 1.0 {
        return 0.0;
    }
    d as f64 * (sn.log2() + (sn / x as f64).ceil() - 1.0)
}

/// Eq. 7 — combined objective `cost_s × cost_t`.
pub fn combined_cost(n: usize, d: usize, sigma: f64, x: usize) -> f64 {
    space_cost_bits(n, x, d) as f64 * query_cost(n, d, sigma, x)
}

/// Eq. 8 — the closed-form optimal bin count
/// `x* = √(σN / (log₂(σN) − 1))`, rounded to the nearest integer, ≥ 1.
///
/// Returns 1 when `σN` is too small for the model (`log₂(σN) ≤ 1`).
pub fn optimal_bins(n: usize, sigma: f64) -> usize {
    let sn = sigma * n as f64;
    if sn <= 2.0 {
        return 1;
    }
    let denom = sn.log2() - 1.0;
    if denom <= 0.0 {
        return 1;
    }
    ((sn / denom).sqrt().round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // §4.5: "for N = 100K and σ = 0.1, … the optimal bin size x = 29.
        // When N = 16K and σ = 0.2, the optimal bin size x is 17."
        assert_eq!(optimal_bins(100_000, 0.1), 29);
        assert_eq!(optimal_bins(16_000, 0.2), 17);
    }

    #[test]
    fn space_grows_with_x_and_time_shrinks() {
        let n = 100_000;
        let d = 10;
        let sigma = 0.1;
        let mut prev_space = 0;
        let mut prev_time = f64::INFINITY;
        for x in [1, 2, 4, 8, 16, 32, 64, 128] {
            let s = space_cost_bits(n, x, d);
            let t = query_cost(n, d, sigma, x);
            assert!(s > prev_space, "space must grow with x");
            assert!(t <= prev_time, "query cost must not grow with x");
            prev_space = s;
            prev_time = t;
        }
    }

    #[test]
    fn space_formula_exact() {
        assert_eq!(space_cost_bits(100, 3, 4), 100 * 4 * 4);
    }

    #[test]
    fn closed_form_is_near_the_empirical_argmin() {
        // The ceil() in Eq. 6 makes the objective piecewise constant; the
        // continuous minimizer must land within a few bins of the discrete
        // argmin of Eq. 7.
        for (n, sigma) in [(100_000, 0.1), (16_000, 0.2), (50_000, 0.3)] {
            let xstar = optimal_bins(n, sigma);
            let (mut best_x, mut best) = (1usize, f64::INFINITY);
            for x in 1..=400 {
                let c = combined_cost(n, 10, sigma, x);
                if c < best {
                    best = c;
                    best_x = x;
                }
            }
            let lo = best_x.saturating_sub(best_x / 3 + 3);
            let hi = best_x + best_x / 3 + 3;
            assert!(
                (lo..=hi).contains(&xstar),
                "x*={xstar} far from empirical argmin {best_x} (N={n}, σ={sigma})"
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(optimal_bins(0, 0.5), 1);
        assert_eq!(optimal_bins(100, 0.0), 1);
        assert_eq!(query_cost(0, 5, 0.5, 4), 0.0);
        assert_eq!(query_cost(100, 5, 0.0, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "x must be positive")]
    fn query_cost_rejects_zero_bins() {
        let _ = query_cost(100, 5, 0.5, 0);
    }
}
