//! The shared k-edge matrix: every algorithm — the five sequential ones,
//! the sharded parallel paths, and the serving engine — must behave
//! identically at the awkward corners of the query space:
//!
//! * `k = 0` (empty result, nothing scored),
//! * `k = n − 1`, `k = n`, `k = n + 5` (full or over-full result),
//! * the empty dataset,
//! * 1-dimensional datasets (degenerate masks, every pair comparable).
//!
//! This test supersedes the per-module `k_zero_is_empty` checks that used
//! to live in `naive.rs` / `esb.rs` / `ubb.rs`.

use tkd_core::{
    parallel_big, parallel_ibig, Algorithm, EngineQuery, ParallelEngine, ShardedBigContext,
    ShardedIbigContext, TkdQuery,
};
use tkd_model::{fixtures, Dataset};

/// Deterministic incomplete dataset (splitmix-style hash).
fn synth(seed: u64, n: usize, d: usize, card: u64, missing_pct: u64) -> Dataset {
    let mut h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 31;
        h
    };
    let mut rows = Vec::with_capacity(n);
    'outer: while rows.len() < n {
        let mut row = Vec::with_capacity(d);
        for _ in 0..d {
            if next() % 100 < missing_pct {
                row.push(None);
            } else {
                row.push(Some((next() % card) as f64));
            }
        }
        if row.iter().all(Option::is_none) {
            continue 'outer;
        }
        rows.push(row);
    }
    Dataset::from_rows(d, &rows).unwrap()
}

fn edge_datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("empty-3d", Dataset::from_rows(3, &[]).unwrap()),
        ("empty-1d", Dataset::from_rows(1, &[]).unwrap()),
        (
            "single-object-1d",
            Dataset::from_rows(1, &[vec![Some(4.0)]]).unwrap(),
        ),
        ("one-dim", synth(3, 40, 1, 6, 0)),
        ("one-dim-missing", synth(4, 40, 1, 6, 35)),
        ("fig3", fixtures::fig3_sample()),
        ("mixed", synth(9, 70, 3, 8, 30)),
    ]
}

fn edge_ks(n: usize) -> Vec<usize> {
    let mut ks = vec![0, 1, n.saturating_sub(1), n, n + 5];
    ks.sort_unstable();
    ks.dedup();
    ks
}

/// Every algorithm (sequential, parallel, engine) returns the same score
/// vector as Naive on every edge dataset × edge k — and the k = 0 /
/// empty-dataset cells return empty results without panicking.
#[test]
fn k_edge_matrix_all_algorithms_agree() {
    for (name, ds) in edge_datasets() {
        let n = ds.len();
        let engine = ParallelEngine::builder(&ds).threads(2).shards(2).build();
        for k in edge_ks(n) {
            let reference = TkdQuery::new(k).algorithm(Algorithm::Naive).run(&ds);
            assert_eq!(reference.len(), k.min(n), "naive size {name} k={k}");
            if k == 0 || n == 0 {
                assert!(reference.is_empty(), "{name} k={k}");
            }
            for alg in Algorithm::ALL {
                // Sequential path.
                let r = TkdQuery::new(k).algorithm(alg).run(&ds);
                assert_eq!(r.scores(), reference.scores(), "{name} {alg:?} k={k}");
                // Parallel path (2 threads) for the bitmap engines.
                if matches!(alg, Algorithm::Big | Algorithm::Ibig) {
                    let p = TkdQuery::new(k).algorithm(alg).threads(2).run(&ds);
                    assert_eq!(
                        p.scores(),
                        reference.scores(),
                        "{name} parallel {alg:?} k={k}"
                    );
                }
                // Engine path.
                let e = engine.query(&EngineQuery::new(k).algorithm(alg));
                assert_eq!(
                    e.scores(),
                    reference.scores(),
                    "{name} engine {alg:?} k={k}"
                );
            }
        }
    }
}

/// The k = 0 fast path skips scoring entirely — the whole queue is
/// accounted as pruned, uniformly across the queue-driven algorithms.
#[test]
fn k_zero_skips_all_scoring() {
    let ds = fixtures::fig3_sample();
    for alg in Algorithm::ALL {
        let r = TkdQuery::new(0).algorithm(alg).run(&ds);
        assert!(r.is_empty(), "{alg:?}");
        assert_eq!(r.stats.scored, 0, "{alg:?} must not score anything");
        assert_eq!(r.stats.total(), ds.len(), "{alg:?} accounting");
    }
}

/// Oversized k on the sharded engines: every object is returned exactly
/// once (no loss, no duplication across shard boundaries).
#[test]
fn oversized_k_returns_every_object_once() {
    let ds = synth(11, 130, 3, 5, 25);
    let ctx = ShardedBigContext::build(&ds, 3);
    let ictx: ShardedIbigContext<'_> = ShardedIbigContext::build_auto(&ds, 3);
    for threads in [1usize, 2, 4] {
        for r in [
            parallel_big(&ctx, ds.len() + 9, threads),
            parallel_ibig(&ictx, ds.len() + 9, threads),
        ] {
            assert_eq!(r.len(), ds.len(), "threads={threads}");
            let mut ids = r.ids();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), ds.len(), "duplicate ids, threads={threads}");
        }
    }
}
