//! Property-based invariants of the query variants (subspace, constrained,
//! MFD, complete-data baseline) on random incomplete datasets.

use proptest::prelude::*;
use tkd_core::complete_baseline::skyline_peel_top_k;
use tkd_core::mfd::{mfd_score, mfd_top_k, mfd_weight, MfdConfig};
use tkd_core::variants::{constrained_top_k, subspace_top_k};
use tkd_core::{naive, Algorithm, TkdQuery};
use tkd_model::{dominance, Dataset};
use tkd_skyline::constrained::Constraints;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=4).prop_flat_map(|dims| {
        let row = proptest::collection::vec(
            proptest::option::weighted(0.75, (0u8..8).prop_map(|v| v as f64)),
            dims,
        )
        .prop_filter("at least one observed", |r| r.iter().any(Option::is_some));
        proptest::collection::vec(row, 2..35)
            .prop_map(move |rows| Dataset::from_rows(dims, &rows).expect("valid rows"))
    })
}

fn complete_dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=3).prop_flat_map(|dims| {
        let row = proptest::collection::vec((0u8..10).prop_map(|v| v as f64), dims);
        proptest::collection::vec(row, 1..40).prop_map(move |rows| {
            let rows: Vec<Vec<Option<f64>>> = rows
                .into_iter()
                .map(|r| r.into_iter().map(Some).collect())
                .collect();
            Dataset::from_rows(dims, &rows).expect("valid rows")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Subspace results equal running Naive on the projected dataset, with
    /// correctly mapped ids, for every algorithm.
    #[test]
    fn subspace_equals_projection(ds in dataset_strategy(), k in 1usize..6, dim in 0usize..2) {
        let dims = vec![dim.min(ds.dims() - 1)];
        let (sub, kept) = ds.project(&dims).unwrap();
        let expected = naive::naive(&sub, k);
        for alg in Algorithm::ALL {
            let r = subspace_top_k(&ds, &dims, &TkdQuery::new(k).algorithm(alg)).unwrap();
            prop_assert_eq!(r.scores(), expected.scores(), "{:?}", alg);
            // Ids must refer to the original dataset and observe the dim.
            for e in r.iter() {
                prop_assert!(kept.contains(&e.id));
            }
        }
    }

    /// Constrained results score dominance among admitted objects only,
    /// verified against a direct count.
    #[test]
    fn constrained_scores_are_regional(ds in dataset_strategy(), k in 1usize..6, lo in 0u8..4, width in 1u8..6) {
        let c = Constraints::none(ds.dims())
            .with_range(0, lo as f64, (lo + width) as f64);
        let r = constrained_top_k(&ds, &c, &TkdQuery::new(k).algorithm(Algorithm::Big));
        let admitted = c.admitted(&ds);
        for e in r.iter() {
            prop_assert!(c.admits(&ds, e.id));
            let manual = admitted
                .iter()
                .filter(|&&p| p != e.id && dominance::dominates(&ds, e.id, p))
                .count();
            prop_assert_eq!(e.score, manual);
        }
        prop_assert_eq!(r.len(), k.min(admitted.len()));
    }

    /// MFD with uniform weights ranks consistently with unweighted TKD when
    /// every pair of objects shares the same observation pattern (then all
    /// W(o,o') are equal, so the orders coincide).
    #[test]
    fn mfd_uniform_on_complete_data_matches_tkd(ds in complete_dataset_strategy(), k in 1usize..6) {
        let cfg = MfdConfig::uniform(ds.dims(), 0.5);
        let weighted = mfd_top_k(&ds, k, &cfg);
        let plain = naive::naive(&ds, k);
        // On complete data W(o, o') = 1 for all pairs under uniform weights
        // summing to 1, so MFD score == score and the kth values align.
        let mfd_scores: Vec<f64> = weighted.iter().map(|e| e.score).collect();
        let tkd_scores: Vec<usize> = plain.scores();
        for (m, t) in mfd_scores.iter().zip(&tkd_scores) {
            prop_assert!((m - *t as f64).abs() < 1e-9, "MFD {m} vs TKD {t}");
        }
    }

    /// The MFD weight is symmetric, bounded by the total weight, and
    /// monotone in λ.
    #[test]
    fn mfd_weight_laws(ds in dataset_strategy(), a in 0usize..35, b in 0usize..35) {
        let a = (a % ds.len()) as u32;
        let b = (b % ds.len()) as u32;
        let w_total: f64 = 1.0;
        for lambda in [0.2, 0.8] {
            let cfg = MfdConfig::uniform(ds.dims(), lambda);
            let w_ab = mfd_weight(&ds, &cfg, a, b);
            let w_ba = mfd_weight(&ds, &cfg, b, a);
            prop_assert!((w_ab - w_ba).abs() < 1e-12, "W symmetric");
            prop_assert!(w_ab <= w_total + 1e-12, "W bounded by Σw");
            prop_assert!(w_ab >= 0.0);
        }
        let lo = mfd_weight(&ds, &MfdConfig::uniform(ds.dims(), 0.1), a, b);
        let hi = mfd_weight(&ds, &MfdConfig::uniform(ds.dims(), 0.9), a, b);
        prop_assert!(lo <= hi + 1e-12, "W monotone in lambda");
    }

    /// MFD scores only accumulate over dominated objects: zero iff the
    /// object dominates nothing.
    #[test]
    fn mfd_score_zero_iff_dominates_nothing(ds in dataset_strategy()) {
        let cfg = MfdConfig::uniform(ds.dims(), 0.5);
        for o in ds.ids() {
            let s = mfd_score(&ds, &cfg, o);
            let plain = dominance::score_of(&ds, o);
            prop_assert_eq!(s > 0.0, plain > 0, "object {}", o);
        }
    }

    /// The complete-data skyline-peeling baseline agrees with Naive on any
    /// complete dataset.
    #[test]
    fn peeling_agrees_with_naive(ds in complete_dataset_strategy(), k in 1usize..8) {
        let peel = skyline_peel_top_k(&ds, k).unwrap();
        let reference = naive::naive(&ds, k);
        prop_assert_eq!(peel.scores(), reference.scores());
    }
}
