//! Allocation accounting for the steady-state query paths.
//!
//! The PR-2 acceptance bar: after context build, `big_with_scratch` /
//! `ibig_with_scratch` perform **zero heap allocations per visited
//! object**. A counting global allocator measures the number of
//! allocations one full query performs on datasets of different sizes —
//! if any per-object allocation survived, the count would grow with `N`
//! (hundreds of extra allocations here); instead it must be a small
//! per-query constant (the `TopK` candidate vector and the result).
//!
//! Everything runs in a single `#[test]` so no concurrent test pollutes
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tkd_core::{big, engine, ibig};
use tkd_model::Dataset;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Allocation count of `f` (including whatever its return value allocates).
fn allocs_during<T>(f: impl FnOnce() -> T) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    drop(out);
    after - before
}

/// Deterministic incomplete dataset (splitmix-style hash).
fn synth(seed: u64, n: usize, d: usize, card: u64, missing_pct: u64) -> Dataset {
    let mut h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 31;
        h
    };
    let mut rows = Vec::with_capacity(n);
    'outer: while rows.len() < n {
        let mut row = Vec::with_capacity(d);
        for _ in 0..d {
            if next() % 100 < missing_pct {
                row.push(None);
            } else {
                row.push(Some((next() % card) as f64));
            }
        }
        if row.iter().all(Option::is_none) {
            continue 'outer;
        }
        rows.push(row);
    }
    Dataset::from_rows(d, &rows).unwrap()
}

#[test]
fn query_allocations_are_constant_in_dataset_size() {
    const K: usize = 32;
    // Per-query allocation ceiling: the TopK candidate vector plus the
    // result construction — nothing that scales with visited objects.
    const PER_QUERY_CEILING: u64 = 8;

    let small = synth(7, 400, 4, 40, 20);
    let large = synth(7, 2_000, 4, 40, 20);

    // --- BIG ---------------------------------------------------------
    let ctx_s = big::BigContext::build(&small);
    let ctx_l = big::BigContext::build(&large);
    let mut scr_s = ctx_s.scratch();
    let mut scr_l = ctx_l.scratch();
    // Warm-up: fault in any lazily initialized state.
    let warm = big::big_with_scratch(&ctx_l, K, &mut scr_l);
    assert!(!warm.is_empty());

    let a_small = allocs_during(|| big::big_with_scratch(&ctx_s, K, &mut scr_s));
    let a_large = allocs_during(|| big::big_with_scratch(&ctx_l, K, &mut scr_l));
    assert_eq!(
        a_small, a_large,
        "BIG allocation count must not grow with dataset size \
         (small: {a_small}, large: {a_large})"
    );
    assert!(
        a_large <= PER_QUERY_CEILING,
        "BIG query performed {a_large} allocations (ceiling {PER_QUERY_CEILING})"
    );

    // Visited-object sanity: the large run visits hundreds of objects, so
    // even one allocation per visited object would blow the ceiling.
    let r = big::big_with_scratch(&ctx_l, K, &mut scr_l);
    assert!(
        r.stats.scored + r.stats.h2_pruned > 50,
        "workload too small to be meaningful: {:?}",
        r.stats
    );

    // --- IBIG --------------------------------------------------------
    let ictx_s: ibig::IbigContext<'_> = ibig::IbigContext::build(&small, &[8, 8, 8, 8]);
    let ictx_l: ibig::IbigContext<'_> = ibig::IbigContext::build(&large, &[8, 8, 8, 8]);
    let mut iscr_s = ictx_s.scratch();
    let mut iscr_l = ictx_l.scratch();
    let warm = ibig::ibig_with_scratch(&ictx_l, K, &mut iscr_l);
    assert!(!warm.is_empty());

    let a_small = allocs_during(|| ibig::ibig_with_scratch(&ictx_s, K, &mut iscr_s));
    let a_large = allocs_during(|| ibig::ibig_with_scratch(&ictx_l, K, &mut iscr_l));
    assert_eq!(
        a_small, a_large,
        "IBIG allocation count must not grow with dataset size \
         (small: {a_small}, large: {a_large})"
    );
    assert!(
        a_large <= PER_QUERY_CEILING,
        "IBIG query performed {a_large} allocations (ceiling {PER_QUERY_CEILING})"
    );

    // Reusing one scratch across many queries stays constant too.
    let again = allocs_during(|| {
        for k in [1usize, 4, 8, 16] {
            big::big_with_scratch(&ctx_l, k, &mut scr_l);
        }
    });
    assert!(
        again <= 4 * PER_QUERY_CEILING,
        "scratch reuse across queries allocated {again} times"
    );

    // --- Parallel engine ---------------------------------------------
    // After warm-up (pool populated, thread stacks cached), a parallel
    // query's allocation count must not grow with the dataset size: the
    // per-candidate scoring paths stay allocation-free, and the slot
    // buffer + worker scratches come from the engine pool. Thread spawning
    // itself costs a constant number of allocations per query, so the
    // ceiling is higher than the sequential one but still n-independent.
    const PER_PARALLEL_QUERY_CEILING: u64 = 64;
    let eng_s = engine::ParallelEngine::builder(&small)
        .threads(2)
        .shards(2)
        .build();
    let eng_l = engine::ParallelEngine::builder(&large)
        .threads(2)
        .shards(2)
        .build();
    let q = engine::EngineQuery::new(K);
    for _ in 0..3 {
        // Warm-up: populate pools, fault in thread-stack caches.
        assert!(!eng_s.query(&q).is_empty());
        assert!(!eng_l.query(&q).is_empty());
    }
    let measure = |f: &dyn Fn() -> tkd_core::TkdResult| -> u64 {
        (0..3).map(|_| allocs_during(f)).min().unwrap()
    };
    let a_small = measure(&|| eng_s.query(&q));
    let a_large = measure(&|| eng_l.query(&q));
    assert_eq!(
        a_small, a_large,
        "parallel query allocation count must not grow with dataset size \
         (small: {a_small}, large: {a_large})"
    );
    assert!(
        a_large <= PER_PARALLEL_QUERY_CEILING,
        "parallel query performed {a_large} allocations \
         (ceiling {PER_PARALLEL_QUERY_CEILING})"
    );

    // Batched serving: per-query allocations in `query_many` stay
    // n-independent too (worker-per-query, pooled scratches).
    let batch: Vec<engine::EngineQuery> =
        (1..=6).map(|k| engine::EngineQuery::new(k * 4)).collect();
    let _ = eng_s.query_many(&batch);
    let _ = eng_l.query_many(&batch);
    let b_small = measure(&|| {
        let r = eng_s.query_many(&batch);
        r.into_iter().next().unwrap()
    });
    let b_large = measure(&|| {
        let r = eng_l.query_many(&batch);
        r.into_iter().next().unwrap()
    });
    assert_eq!(
        b_small, b_large,
        "query_many allocation count must not grow with dataset size \
         (small: {b_small}, large: {b_large})"
    );
}
