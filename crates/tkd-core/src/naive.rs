//! The Naive baseline (§4.1): exhaustive pairwise score computation.

use crate::result::{ResultEntry, TkdResult};
use crate::stats::PruneStats;
use crate::topk::TopK;
use tkd_model::{dominance, Dataset, ObjectId};

/// Answer a TKD query by computing every object's score with `O(N²·d)`
/// pairwise comparisons and keeping the best `k`.
pub fn naive(ds: &Dataset, k: usize) -> TkdResult {
    if k == 0 {
        // Nothing can enter the result: skip the quadratic scoring pass
        // (uniform k-edge behavior across all five algorithms; the skipped
        // objects are accounted as pruned-without-scoring).
        return TkdResult::new(
            Vec::new(),
            PruneStats {
                h1_pruned: ds.len(),
                ..Default::default()
            },
        );
    }
    let scores = dominance::all_scores(ds);
    let mut top = TopK::new(k);
    for o in ds.ids() {
        top.offer(o, scores[o as usize]);
    }
    TkdResult::new(
        top.into_entries(),
        PruneStats {
            scored: ds.len(),
            ..Default::default()
        },
    )
}

/// All scores plus the full ranking (scores descending, id ascending) —
/// used by examples and by the Table 4 comparison, where the entire ranking
/// (not just the top k) is of interest.
pub fn full_ranking(ds: &Dataset) -> Vec<ResultEntry> {
    let scores = dominance::all_scores(ds);
    let mut entries: Vec<ResultEntry> = ds
        .ids()
        .map(|o: ObjectId| ResultEntry {
            id: o,
            score: scores[o as usize],
        })
        .collect();
    entries.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    #[test]
    fn t1d_on_fig2_returns_f() {
        // §3: "a T1D (k = 1) query on the dataset depicted in Fig. 2 returns
        // the result set {f}".
        let ds = fixtures::fig2_points();
        let r = naive(&ds, 1);
        assert_eq!(r.ids(), vec![ds.id_by_label("f").unwrap()]);
        assert_eq!(r.scores(), vec![3]);
    }

    #[test]
    fn t2d_on_fig3_returns_a2_c2() {
        let ds = fixtures::fig3_sample();
        let r = naive(&ds, 2);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.scores(), vec![16, 16]);
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let ds = fixtures::fig2_points();
        let r = naive(&ds, 100);
        assert_eq!(r.len(), ds.len());
        // Sorted descending.
        let s = r.scores();
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }

    // k-edge behavior (k = 0, k ≥ n, empty dataset) is covered uniformly
    // for all algorithms by `tests/edge_matrix.rs`.

    #[test]
    fn full_ranking_is_consistent() {
        let ds = fixtures::fig3_sample();
        let ranking = full_ranking(&ds);
        assert_eq!(ranking.len(), ds.len());
        for w in ranking.windows(2) {
            assert!(w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id));
        }
        for e in &ranking {
            assert_eq!(e.score, dominance::score_of(&ds, e.id));
        }
    }

    #[test]
    fn stats_report_full_scoring() {
        let ds = fixtures::fig3_sample();
        let r = naive(&ds, 2);
        assert_eq!(r.stats.scored, 20);
        assert_eq!(r.stats.pruned(), 0);
    }
}
