//! `MaxScore` — the upper bound score of Lemma 2, and the descending
//! priority queue `F` that drives UBB, BIG and IBIG (Fig. 5).
//!
//! For an observed dimension `i`, `Tᵢ(o) = {p ≠ o : o[i] ≤ p[i]} ∪ Sᵢ`
//! (where `Sᵢ` is the set of objects missing dimension `i`) over-counts the
//! objects `o` could possibly dominate, and
//! `MaxScore(o) = minᵢ |Tᵢ(o)|` (only observed dimensions can attain the
//! minimum, since `Tᵢ = S` for missing ones).
//!
//! Following the paper's §4.2 implementation note, `|Tᵢ|` is computed with a
//! per-dimension B+-tree rank query (`O(N·lg N)` overall): the tree holds
//! `(value, id)` pairs, so *number of entries with value `≥ o[i]`* is one
//! [`tkd_btree::BPlusTree::count_at_least`] probe (minus one for `o`
//! itself), plus the missing count `|Sᵢ|`.

use tkd_btree::{BPlusTree, F64Key};
use tkd_model::{Dataset, ObjectId};

/// `MaxScore(o)` for every object, via per-dimension B+-tree rank queries.
pub fn max_scores(ds: &Dataset) -> Vec<usize> {
    let n = ds.len();
    let dims = ds.dims();
    let mut out = vec![usize::MAX; n];
    for dim in 0..dims {
        let mut tree: BPlusTree<(F64Key, ObjectId), ()> = BPlusTree::new();
        for o in ds.ids() {
            if let Some(v) = ds.value(o, dim) {
                tree.insert(
                    (F64Key::new(v).expect("observed values are not NaN"), o),
                    (),
                );
            }
        }
        let missing = n - tree.len();
        for o in ds.ids() {
            if let Some(v) = ds.value(o, dim) {
                let key = (F64Key::new(v).expect("not NaN"), 0);
                // Entries with value >= v, minus o itself, plus the missing.
                let t_i = tree.count_at_least(&key) - 1 + missing;
                let slot = &mut out[o as usize];
                *slot = (*slot).min(t_i);
            }
        }
    }
    // Every object observes at least one dimension (model invariant), so no
    // usize::MAX survives.
    debug_assert!(out.iter().all(|&m| m != usize::MAX) || n == 0);
    out
}

/// The priority queue `F` of Fig. 5: all objects sorted by descending
/// `MaxScore`, ties by ascending id (which is label order for the paper's
/// fixtures).
pub fn maxscore_queue(ds: &Dataset) -> Vec<(ObjectId, usize)> {
    let scores = max_scores(ds);
    let mut queue: Vec<(ObjectId, usize)> = ds.ids().map(|o| (o, scores[o as usize])).collect();
    queue.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    queue
}

/// Reference implementation of `MaxScore` by direct set counting (used by
/// tests to validate the B+-tree path).
pub fn max_scores_bruteforce(ds: &Dataset) -> Vec<usize> {
    let n = ds.len();
    let mut out = vec![usize::MAX; n];
    for o in ds.ids() {
        for dim in 0..ds.dims() {
            if let Some(v) = ds.value(o, dim) {
                let t_i = ds
                    .ids()
                    .filter(|&p| {
                        p != o
                            && match ds.value(p, dim) {
                                None => true,
                                Some(w) => v <= w,
                            }
                    })
                    .count();
                out[o as usize] = out[o as usize].min(t_i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::{dominance, fixtures};

    #[test]
    fn fig5_queue_matches_paper() {
        let ds = fixtures::fig3_sample();
        let queue = maxscore_queue(&ds);
        let got: Vec<(&str, usize)> = queue
            .iter()
            .map(|&(o, s)| (ds.label(o).unwrap(), s))
            .collect();
        assert_eq!(got, fixtures::fig5_maxscores());
    }

    #[test]
    fn worked_b3_example() {
        // §4.2: MaxScore(B3) = 0 because T4(B3) = ∅.
        let ds = fixtures::fig3_sample();
        let b3 = ds.id_by_label("B3").unwrap();
        assert_eq!(max_scores(&ds)[b3 as usize], 0);
    }

    #[test]
    fn btree_path_equals_bruteforce() {
        let ds = fixtures::fig3_sample();
        assert_eq!(max_scores(&ds), max_scores_bruteforce(&ds));
        let ds = fixtures::fig2_points();
        assert_eq!(max_scores(&ds), max_scores_bruteforce(&ds));
    }

    #[test]
    fn upper_bounds_scores() {
        // Lemma 2: score(o) <= MaxScore(o).
        let ds = fixtures::fig3_sample();
        let ms = max_scores(&ds);
        for o in ds.ids() {
            assert!(dominance::score_of(&ds, o) <= ms[o as usize]);
        }
    }

    #[test]
    fn duplicates_and_missing_mix() {
        let ds = tkd_model::Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), Some(2.0)],
                vec![Some(1.0), None],
                vec![None, Some(2.0)],
                vec![Some(3.0), Some(2.0)],
            ],
        )
        .unwrap();
        assert_eq!(max_scores(&ds), max_scores_bruteforce(&ds));
    }
}
