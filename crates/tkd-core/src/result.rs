//! Query results.

use crate::PruneStats;
use tkd_model::ObjectId;

/// One answer object with its dominating score (Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultEntry {
    /// The object.
    pub id: ObjectId,
    /// `score(id)`: how many objects it dominates.
    pub score: usize,
}

/// Result of a TKD query: up to `k` entries sorted by descending score
/// (ties by ascending id), plus pruning statistics.
#[derive(Clone, Debug, Default)]
pub struct TkdResult {
    entries: Vec<ResultEntry>,
    /// How much work each pruning heuristic saved (Fig. 18).
    pub stats: PruneStats,
}

impl TkdResult {
    pub(crate) fn new(mut entries: Vec<ResultEntry>, stats: PruneStats) -> Self {
        entries.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
        TkdResult { entries, stats }
    }

    /// Construct preserving the caller's entry order (used by the random
    /// tie-break, which deliberately shuffles equal-score entries). Scores
    /// must already be non-increasing.
    pub(crate) fn new_ordered(entries: Vec<ResultEntry>, stats: PruneStats) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].score >= w[1].score));
        TkdResult { entries, stats }
    }

    /// Answer objects, best first.
    pub fn iter(&self) -> impl Iterator<Item = &ResultEntry> {
        self.entries.iter()
    }

    /// Answer entries as a slice, best first.
    pub fn entries(&self) -> &[ResultEntry] {
        &self.entries
    }

    /// Just the object ids, best first.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Just the scores, descending.
    pub fn scores(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.score).collect()
    }

    /// The k-th (smallest returned) score — the paper's threshold `τ`.
    pub fn kth_score(&self) -> Option<usize> {
        self.entries.last().map(|e| e.score)
    }

    /// Number of answers (may be less than `k` for tiny datasets).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Does the result contain `id`?
    pub fn contains(&self, id: ObjectId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }
}

impl IntoIterator for TkdResult {
    type Item = ResultEntry;
    type IntoIter = std::vec::IntoIter<ResultEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_by_score_then_id() {
        let r = TkdResult::new(
            vec![
                ResultEntry { id: 5, score: 3 },
                ResultEntry { id: 1, score: 7 },
                ResultEntry { id: 2, score: 3 },
            ],
            PruneStats::default(),
        );
        assert_eq!(r.ids(), vec![1, 2, 5]);
        assert_eq!(r.scores(), vec![7, 3, 3]);
        assert_eq!(r.kth_score(), Some(3));
        assert_eq!(r.len(), 3);
        assert!(r.contains(2));
        assert!(!r.contains(9));
    }

    #[test]
    fn empty_result() {
        let r = TkdResult::new(Vec::new(), PruneStats::default());
        assert!(r.is_empty());
        assert_eq!(r.kth_score(), None);
        assert_eq!(r.into_iter().count(), 0);
    }
}
