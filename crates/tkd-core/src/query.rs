//! The unified query API: pick an algorithm, run, get a [`TkdResult`].

use crate::result::TkdResult;
use crate::{big, esb, ibig, naive, parallel, ubb};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tkd_index::cost;
use tkd_model::{stats, Dataset};

/// Which of the paper's algorithms answers the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exhaustive pairwise baseline (§4.1).
    Naive,
    /// Extended skyband based (Algorithm 1).
    Esb,
    /// Upper bound based (Algorithm 2).
    Ubb,
    /// Bitmap index guided (Algorithms 3–4).
    Big,
    /// Improved BIG on the binned, compressed index (Algorithm 5).
    Ibig,
}

impl Algorithm {
    /// All five algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Naive,
        Algorithm::Esb,
        Algorithm::Ubb,
        Algorithm::Big,
        Algorithm::Ibig,
    ];
}

/// Bin-count selection for IBIG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinChoice {
    /// Eq. 8's optimal `x* = √(σN / (log₂(σN) − 1))` on every dimension.
    Auto,
    /// The same fixed count on every dimension.
    Fixed(usize),
    /// Explicit per-dimension counts (e.g. Zillow's `6/10/35/x/1000`).
    PerDim(Vec<usize>),
}

/// Tie handling among candidates sharing the k-th score.
///
/// The paper adopts *random selection* (§3); the deterministic default
/// favours the lowest object id, which makes runs reproducible. Randomness
/// applies to the candidates the algorithm retained — bound-pruned objects
/// (whose scores never beat the threshold strictly) are not revived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer smaller object ids (deterministic; default).
    ById,
    /// Shuffle candidates tied at the k-th score with the given seed.
    Random(u64),
}

/// Builder-style TKD query (Definition 3).
///
/// ```
/// use tkd_core::{Algorithm, TkdQuery};
/// let ds = tkd_model::fixtures::fig2_points();
/// let r = TkdQuery::new(1).algorithm(Algorithm::Ubb).run(&ds);
/// assert_eq!(r.ids(), vec![ds.id_by_label("f").unwrap()]);
/// ```
#[derive(Clone, Debug)]
pub struct TkdQuery {
    k: usize,
    algorithm: Algorithm,
    bins: BinChoice,
    tie: TieBreak,
    threads: usize,
}

impl TkdQuery {
    /// A top-`k` dominating query (BIG by default — the paper's fastest
    /// configuration without the space optimization).
    pub fn new(k: usize) -> Self {
        TkdQuery {
            k,
            algorithm: Algorithm::Big,
            bins: BinChoice::Auto,
            tie: TieBreak::ById,
            threads: 1,
        }
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Select IBIG's binning (ignored by the other algorithms).
    pub fn bins(mut self, b: BinChoice) -> Self {
        self.bins = b;
        self
    }

    /// Select tie handling.
    pub fn tie_break(mut self, t: TieBreak) -> Self {
        self.tie = t;
        self
    }

    /// Worker thread count (default 1 = the sequential engines). With
    /// more than one thread, BIG and IBIG route through the sharded
    /// parallel engine of [`crate::parallel`] — score- and
    /// order-identical to the sequential run — using `threads` shards;
    /// the other algorithms stay sequential. For serving many queries
    /// against one dataset, prefer [`crate::engine::ParallelEngine`],
    /// which builds the sharded contexts once.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// The query parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Execute against a dataset.
    pub fn run(&self, ds: &Dataset) -> TkdResult {
        let result = match self.algorithm {
            Algorithm::Naive => naive::naive(ds, self.k),
            Algorithm::Esb => esb::esb(ds, self.k),
            Algorithm::Ubb => ubb::ubb(ds, self.k),
            Algorithm::Big if self.threads > 1 => {
                let ctx = parallel::ShardedBigContext::build(ds, self.threads);
                parallel::parallel_big(&ctx, self.k, self.threads)
            }
            Algorithm::Big => big::big(ds, self.k),
            Algorithm::Ibig => {
                let bins = self.resolve_bins(ds);
                if self.threads > 1 {
                    let ctx: parallel::ShardedIbigContext<'_> =
                        parallel::ShardedIbigContext::build(ds, &bins, self.threads);
                    parallel::parallel_ibig(&ctx, self.k, self.threads)
                } else {
                    ibig::ibig_with_bins(ds, self.k, &bins)
                }
            }
        };
        match self.tie {
            TieBreak::ById => result,
            TieBreak::Random(seed) => shuffle_ties(result, seed),
        }
    }

    fn resolve_bins(&self, ds: &Dataset) -> Vec<usize> {
        match &self.bins {
            BinChoice::Auto => {
                let x = cost::optimal_bins(ds.len(), stats::missing_rate(ds));
                vec![x; ds.dims()]
            }
            BinChoice::Fixed(x) => vec![(*x).max(1); ds.dims()],
            BinChoice::PerDim(v) => {
                assert_eq!(v.len(), ds.dims(), "one bin count per dimension");
                v.clone()
            }
        }
    }
}

/// Re-order the entries tied at the k-th score pseudo-randomly (the
/// paper's tie-break), keeping strictly better entries in place.
pub(crate) fn shuffle_ties(result: TkdResult, seed: u64) -> TkdResult {
    let Some(tau) = result.kth_score() else {
        return result;
    };
    let stats = result.stats;
    let mut entries: Vec<_> = result.into_iter().collect();
    let first_tie = entries.partition_point(|e| e.score > tau);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    entries[first_tie..].shuffle(&mut rng);
    TkdResult::new_ordered(entries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    #[test]
    fn all_algorithms_agree_on_fig3() {
        let ds = fixtures::fig3_sample();
        for k in [1, 2, 3, 5, 8] {
            let reference = TkdQuery::new(k).algorithm(Algorithm::Naive).run(&ds);
            for alg in Algorithm::ALL {
                let r = TkdQuery::new(k).algorithm(alg).run(&ds);
                assert_eq!(r.scores(), reference.scores(), "{alg:?} k={k}");
            }
        }
    }

    #[test]
    fn bin_choices() {
        let ds = fixtures::fig3_sample();
        for bins in [
            BinChoice::Auto,
            BinChoice::Fixed(2),
            BinChoice::PerDim(vec![2, 2, 3, 3]),
        ] {
            let r = TkdQuery::new(2)
                .algorithm(Algorithm::Ibig)
                .bins(bins.clone())
                .run(&ds);
            assert_eq!(r.scores(), vec![16, 16], "{bins:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one bin count per dimension")]
    fn per_dim_bins_must_match_arity() {
        let ds = fixtures::fig3_sample();
        let _ = TkdQuery::new(2)
            .algorithm(Algorithm::Ibig)
            .bins(BinChoice::PerDim(vec![2]))
            .run(&ds);
    }

    #[test]
    fn random_tie_break_keeps_score_set() {
        let ds = fixtures::fig3_sample();
        let base = TkdQuery::new(5).run(&ds);
        for seed in 0..5 {
            let r = TkdQuery::new(5).tie_break(TieBreak::Random(seed)).run(&ds);
            assert_eq!(r.scores(), base.scores(), "seed {seed}");
            assert_eq!(r.len(), base.len());
        }
    }

    #[test]
    fn k_accessor() {
        assert_eq!(TkdQuery::new(7).k(), 7);
    }
}
