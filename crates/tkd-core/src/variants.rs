//! TKD query variants beyond the paper's core setting, following the
//! related-work directions it cites:
//!
//! * **Subspace TKD** (after Tiakas et al.'s subspace dominating queries,
//!   the paper's reference \[21\]) — rank by dominance inside a dimension
//!   subset;
//! * **Constrained TKD** (after the constrained-skyline variant of
//!   reference \[2\]) — rank within a per-dimension range region.
//!
//! Both reduce to the core algorithms on a derived dataset, so every
//! heuristic and index of the main implementation applies unchanged.

use crate::query::TkdQuery;
use crate::result::{ResultEntry, TkdResult};
use tkd_model::{Dataset, ModelError, ObjectId};
use tkd_skyline::constrained::Constraints;

/// Run `query` over the projection of `ds` onto `dims` (subspace TKD).
///
/// Scores count dominance among the objects that observe at least one of
/// the chosen dimensions; returned ids refer to `ds`.
///
/// # Errors
/// [`ModelError::BadDimensionality`] for an empty subspace;
/// [`ModelError::DimensionOutOfRange`] for an index past `ds.dims()`.
pub fn subspace_top_k(
    ds: &Dataset,
    dims: &[usize],
    query: &TkdQuery,
) -> Result<TkdResult, ModelError> {
    let (sub, kept) = ds.project(dims)?;
    Ok(remap(query.run(&sub), &kept))
}

/// Run `query` over the sub-population admitted by `constraints`
/// (constrained TKD). Scores count dominance among admitted objects only;
/// returned ids refer to `ds`.
pub fn constrained_top_k(ds: &Dataset, constraints: &Constraints, query: &TkdQuery) -> TkdResult {
    let admitted: Vec<ObjectId> = constraints.admitted(ds);
    if admitted.is_empty() {
        return TkdResult::default();
    }
    let sub = ds.select(&admitted);
    remap(query.run(&sub), &admitted)
}

/// Translate result ids from a derived dataset back to the original:
/// entry `i` of `result` refers to `mapping[result_id]` in the source the
/// mapping came from ([`Dataset::select`]'s id list or
/// [`Dataset::project`]'s kept list). Order and scores are preserved, so
/// a remapped result is bit-identical to one computed on the original.
pub fn remap(result: TkdResult, mapping: &[ObjectId]) -> TkdResult {
    let stats = result.stats;
    let entries: Vec<ResultEntry> = result
        .into_iter()
        .map(|e| ResultEntry {
            id: mapping[e.id as usize],
            score: e.score,
        })
        .collect();
    TkdResult::new_ordered(entries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, TkdQuery};
    use tkd_model::{dominance, fixtures};

    #[test]
    fn subspace_t1d_on_fig2() {
        // Project Fig. 2 onto the y axis only: c = (5,-) drops out; the
        // best y wins every comparison. Points by y: d=1 < f=2 < e=4 <
        // b=6 < a=7, all comparable -> d dominates the other four.
        let ds = fixtures::fig2_points();
        let q = TkdQuery::new(1).algorithm(Algorithm::Naive);
        let r = subspace_top_k(&ds, &[1], &q).unwrap();
        assert_eq!(ds.label(r.ids()[0]), Some("d"));
        assert_eq!(r.scores(), vec![4]);
    }

    #[test]
    fn full_space_subspace_equals_plain_query() {
        let ds = fixtures::fig3_sample();
        let q = TkdQuery::new(3).algorithm(Algorithm::Big);
        let plain = q.run(&ds);
        let sub = subspace_top_k(&ds, &[0, 1, 2, 3], &q).unwrap();
        assert_eq!(sub.ids(), plain.ids());
        assert_eq!(sub.scores(), plain.scores());
    }

    #[test]
    fn subspace_ids_refer_to_original_dataset() {
        let ds = fixtures::fig3_sample();
        // Dim 0 is observed only by C* and D*.
        let q = TkdQuery::new(2).algorithm(Algorithm::Ubb);
        let r = subspace_top_k(&ds, &[0], &q).unwrap();
        for e in r.iter() {
            let label = ds.label(e.id).unwrap();
            assert!(label.starts_with('C') || label.starts_with('D'), "{label}");
        }
    }

    #[test]
    fn subspace_rejects_empty() {
        let ds = fixtures::fig2_points();
        let q = TkdQuery::new(1);
        assert!(subspace_top_k(&ds, &[], &q).is_err());
    }

    #[test]
    fn subspace_algorithms_agree() {
        let ds = fixtures::fig3_sample();
        for dims in [vec![3usize], vec![1, 3], vec![0, 2]] {
            let reference =
                subspace_top_k(&ds, &dims, &TkdQuery::new(3).algorithm(Algorithm::Naive))
                    .unwrap()
                    .scores();
            for alg in Algorithm::ALL {
                let r = subspace_top_k(&ds, &dims, &TkdQuery::new(3).algorithm(alg)).unwrap();
                assert_eq!(r.scores(), reference, "{alg:?} on {dims:?}");
            }
        }
    }

    #[test]
    fn constrained_top_k_scores_within_region() {
        let ds = fixtures::fig2_points();
        // Region x in [4, 10]: admits a, c, d, f (and e, unconstrained on x
        // as it has no x)... e = (-,4) observes no x, so it is admitted.
        let c = Constraints::none(2).with_range(0, 4.0, 10.0);
        let q = TkdQuery::new(1).algorithm(Algorithm::Naive);
        let r = constrained_top_k(&ds, &c, &q);
        // Within {a, c, d, e, f}: f=(4,2) dominates a, c, e (as before; b
        // is gone and was not dominated by f anyway).
        assert_eq!(ds.label(r.ids()[0]), Some("f"));
        assert_eq!(r.scores(), vec![3]);
        // Verify the score against a manual count inside the region.
        let admitted = c.admitted(&ds);
        let f = ds.id_by_label("f").unwrap();
        let manual = admitted
            .iter()
            .filter(|&&p| p != f && dominance::dominates(&ds, f, p))
            .count();
        assert_eq!(r.scores()[0], manual);
    }

    #[test]
    fn empty_region_returns_empty_result() {
        let ds = fixtures::fig2_points();
        let c = Constraints::none(2)
            .with_range(0, -10.0, -5.0)
            .with_range(1, -10.0, -5.0);
        let r = constrained_top_k(&ds, &c, &TkdQuery::new(3));
        assert!(r.is_empty());
    }

    #[test]
    fn constrained_algorithms_agree() {
        let ds = fixtures::fig3_sample();
        let c = Constraints::none(4).with_range(3, 1.0, 4.0);
        let reference = constrained_top_k(&ds, &c, &TkdQuery::new(4).algorithm(Algorithm::Naive));
        for alg in Algorithm::ALL {
            let r = constrained_top_k(&ds, &c, &TkdQuery::new(4).algorithm(alg));
            assert_eq!(r.scores(), reference.scores(), "{alg:?}");
        }
    }
}
