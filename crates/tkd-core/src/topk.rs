//! Shared bounded top-k candidate set (the paper's `SC` with threshold `τ`).

use crate::result::ResultEntry;
use tkd_model::ObjectId;

/// A bounded set of the best `k` `(score, id)` pairs seen so far,
/// maintaining the paper's threshold `τ` = smallest score in a *full* set
/// (−1, represented as `None`, while not full — Algorithm 2, line 1).
///
/// Replacement is by strict score comparison, matching Algorithm 2 line 7:
/// an object only enters a full set if its score strictly exceeds `τ`.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    /// Sorted ascending by (score, Reverse(id)): worst candidate first.
    entries: Vec<ResultEntry>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            entries: Vec::with_capacity(k.min(1024)),
        }
    }

    /// The paper's `τ`: the k-th best score once `k` candidates exist.
    pub fn tau(&self) -> Option<usize> {
        if self.entries.len() == self.k {
            self.entries.first().map(|e| e.score)
        } else {
            None
        }
    }

    /// Would an object with upper bound `bound` be useless (`bound ≤ τ`)?
    pub fn prunes(&self, bound: usize) -> bool {
        matches!(self.tau(), Some(t) if bound <= t)
    }

    /// Offer a candidate (Algorithm 2 lines 7–11).
    pub fn offer(&mut self, id: ObjectId, score: usize) {
        if self.k == 0 {
            return;
        }
        if self.entries.len() < self.k {
            let pos = self.entries.partition_point(|e| {
                (e.score, std::cmp::Reverse(e.id)) < (score, std::cmp::Reverse(id))
            });
            self.entries.insert(pos, ResultEntry { id, score });
        } else if score > self.entries[0].score {
            self.entries.remove(0);
            let pos = self.entries.partition_point(|e| {
                (e.score, std::cmp::Reverse(e.id)) < (score, std::cmp::Reverse(id))
            });
            self.entries.insert(pos, ResultEntry { id, score });
        }
    }

    /// Finish, yielding entries (unsorted contract: `TkdResult` re-sorts).
    pub fn into_entries(self) -> Vec<ResultEntry> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_none_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.tau(), None);
        t.offer(1, 10);
        assert_eq!(t.tau(), None);
        t.offer(2, 5);
        assert_eq!(t.tau(), Some(5));
    }

    #[test]
    fn strict_replacement() {
        let mut t = TopK::new(2);
        t.offer(1, 5);
        t.offer(2, 5);
        // Equal score does not displace (Algorithm 2 line 7: score > τ).
        t.offer(3, 5);
        let ids: Vec<ObjectId> = t.clone().into_entries().iter().map(|e| e.id).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
        // Strictly better does.
        t.offer(4, 6);
        assert_eq!(t.tau(), Some(5));
        t.offer(5, 7);
        assert_eq!(t.tau(), Some(6));
    }

    #[test]
    fn prunes_at_or_below_tau() {
        let mut t = TopK::new(1);
        assert!(!t.prunes(0));
        t.offer(1, 4);
        assert!(t.prunes(4));
        assert!(t.prunes(3));
        assert!(!t.prunes(5));
    }

    #[test]
    fn k_zero_accepts_nothing() {
        let mut t = TopK::new(0);
        t.offer(1, 100);
        assert!(t.into_entries().is_empty());
    }
}
