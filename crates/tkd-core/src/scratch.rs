//! Reusable query-time scratch buffers — the zero-allocation engine room
//! of the BIG/IBIG scoring paths.
//!
//! The paper's bit-parallel scoring (Algorithms 3 and 5) needs two dense
//! working vectors per scored object (`Q` and `P`) plus, for IBIG, the
//! epoch-stamped `nonD`/`tagT` membership tables of §4.5. Allocating those
//! per object dominates the constant factor once the index is in place, so
//! they live here: sized **once** when a context is built, then lent
//! mutably into every query. After context build, the steady-state query
//! path ([`crate::big::big_with_scratch`] /
//! [`crate::ibig::ibig_with_scratch`]) performs **zero heap allocations
//! per visited object** — `crates/tkd-core/tests/zero_alloc.rs` pins this
//! with a counting global allocator.
//!
//! # Invariants
//!
//! * **Length** — all buffers are sized for exactly `n` objects
//!   ([`ScratchSpace::new`]'s argument). Lending a scratch built for one
//!   dataset to a context over a different-sized dataset panics on the
//!   first fill (`length mismatch`).
//! * **No aliasing** — `q` and `p` are distinct buffers; the scoring code
//!   destructures [`ScratchSpace`] so the borrow checker proves the fused
//!   `Q − P` enumeration (reading `q`/`p`) cannot overlap the stamp-table
//!   writes.
//! * **No cross-query state** — buffer *contents* are overwritten
//!   wholesale by each fill and the stamp tables are epoch-invalidated per
//!   object, so a `ScratchSpace` carries no information between queries;
//!   reusing one across queries, `k`s, or algorithms is always sound.

use tkd_bitvec::BitVec;

/// Caller-owned scratch buffers for the bit-parallel scoring paths.
///
/// See the [module docs](self) for the aliasing and length invariants.
#[derive(Clone, Debug)]
pub struct ScratchSpace {
    /// `Q = (∩ᵢ Qᵢ) − {o}` of the object currently being scored.
    pub(crate) q: BitVec,
    /// `P = ∩ᵢ Pᵢ` of the object currently being scored.
    pub(crate) p: BitVec,
    /// Epoch-stamped `nonD` / `tagT` tables (IBIG only).
    pub(crate) stamps: EpochStamps,
}

impl ScratchSpace {
    /// Scratch for datasets of exactly `n` objects.
    pub fn new(n: usize) -> Self {
        ScratchSpace {
            q: BitVec::zeros(n),
            p: BitVec::zeros(n),
            stamps: EpochStamps::new(n),
        }
    }

    /// The object count this scratch was sized for.
    pub fn n(&self) -> usize {
        self.q.len()
    }
}

/// Epoch-stamped per-object tables: membership in `nonD(o)` and the
/// paper's `tagT` equality counter, invalidated in `O(1)` per scored
/// object by bumping the epoch instead of clearing `O(N)` entries.
#[derive(Clone, Debug)]
pub(crate) struct EpochStamps {
    epoch: u32,
    /// `nonD` membership stamp.
    nond_stamp: Vec<u32>,
    /// Equality counter (the paper's `tagT`) and its stamp.
    tag: Vec<u32>,
    tag_stamp: Vec<u32>,
}

impl EpochStamps {
    fn new(n: usize) -> Self {
        EpochStamps {
            epoch: 0,
            nond_stamp: vec![0; n],
            tag: vec![0; n],
            tag_stamp: vec![0; n],
        }
    }

    /// Invalidate all marks. Epoch 0 is reserved as "blank", so on the
    /// (astronomically rare) wrap the tables are cleared for real.
    pub(crate) fn next_object(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.nond_stamp.fill(0);
            self.tag_stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark `id` as a member of `nonD`; returns whether it was new.
    #[inline]
    pub(crate) fn mark_nond(&mut self, id: usize) -> bool {
        if self.nond_stamp[id] == self.epoch {
            false
        } else {
            self.nond_stamp[id] = self.epoch;
            true
        }
    }

    /// Is `id` marked in `nonD` for the current object?
    #[inline]
    pub(crate) fn is_nond(&self, id: usize) -> bool {
        self.nond_stamp[id] == self.epoch
    }

    /// Increment `id`'s equality counter for the current object.
    #[inline]
    pub(crate) fn bump_tag(&mut self, id: usize) {
        if self.tag_stamp[id] != self.epoch {
            self.tag_stamp[id] = self.epoch;
            self.tag[id] = 0;
        }
        self.tag[id] += 1;
    }

    /// `id`'s equality counter for the current object.
    #[inline]
    pub(crate) fn tag_of(&self, id: usize) -> u32 {
        if self.tag_stamp[id] == self.epoch {
            self.tag[id]
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_for_n() {
        let s = ScratchSpace::new(130);
        assert_eq!(s.n(), 130);
        assert_eq!(s.q.len(), 130);
        assert_eq!(s.p.len(), 130);
    }

    #[test]
    fn stamps_invalidate_per_object() {
        let mut st = EpochStamps::new(4);
        st.next_object();
        assert!(st.mark_nond(2));
        assert!(!st.mark_nond(2), "double-mark reports not-new");
        assert!(st.is_nond(2));
        st.bump_tag(1);
        st.bump_tag(1);
        assert_eq!(st.tag_of(1), 2);
        assert_eq!(st.tag_of(0), 0);
        st.next_object();
        assert!(!st.is_nond(2), "epoch bump invalidates nonD");
        assert_eq!(st.tag_of(1), 0, "epoch bump invalidates tags");
    }

    #[test]
    fn epoch_wrap_clears_tables() {
        let mut st = EpochStamps::new(2);
        st.next_object();
        st.bump_tag(0);
        assert!(st.mark_nond(0));
        st.epoch = u32::MAX; // force the wrap on the next bump
        st.next_object();
        assert_eq!(st.epoch, 1);
        assert!(!st.is_nond(0));
        assert_eq!(st.tag_of(0), 0);
        assert!(st.mark_nond(0));
    }
}
