//! Dynamic updates — incremental inserts, deletes, and cell updates over
//! the bitmap-index engines, after Kosmatopoulos & Tsichlas's *Dynamic
//! Top-k Dominating Queries* brought to the incomplete-data setting of
//! Miao et al. (ICDE 2016).
//!
//! [`DynamicEngine`] **owns** its dataset and maintains every
//! query-acceleration artifact in place instead of rebuilding it per
//! change:
//!
//! * the range-encoded [`BitmapIndex`] — columns grow by appended bits,
//!   deletes clear tombstone bits (suffix-popcount tables repaired
//!   incrementally), new distinct values splice in one cloned column;
//! * the [`BinnedBitmapIndex`] — bin boundaries are frozen between
//!   compactions (a value above the last boundary extends it; a never
//!   observed dimension gets its first bin on demand), per-dimension
//!   B+-tree keys are inserted/removed, and tombstones are cleared from
//!   *every* column including column 0;
//! * the shared [`Preprocessed`] artifacts — the per-object per-dimension
//!   `|Tᵢ|` counts behind `MaxScore` are repaired **exactly** by
//!   word-parallel delta scans (`live ∧ ¬column` enumerations), the
//!   incomparable sets gain/lose bits in `O(masks)`, and the descending
//!   queue is re-sorted lazily at the next query.
//!
//! Exactness of the maintained `MaxScore` queue is not an optimization —
//! it is what makes the engine **bit-identical** to rebuilding from
//! scratch: ties at the k-th score are resolved by candidate-queue order
//! (an equal score never displaces, Algorithm 2 line 7), so a merely
//! *sound* bound would change which of the tied objects survives.
//! `tests/dynamic_parity.rs` pins this equivalence across randomized op
//! sequences × missing rates × {BIG, IBIG} × thread counts.
//!
//! Queries run through the **unchanged** scratch paths:
//! [`crate::big::big_with_scratch`] / [`crate::ibig::ibig_with_scratch`]
//! over borrowed contexts ([`BigContext::from_prebuilt`],
//! [`IbigContext::from_prebuilt_dense`]), and `threads > 1` through the
//! replay-merged parallel engine over
//! [`ShardedBigContext::from_prebuilt`] /
//! [`ShardedIbigContext::from_prebuilt_dense`]. Dynamic IBIG scores off
//! dense binned columns — run-length codecs cannot absorb in-place bit
//! flips, so the dynamic store trades the paper's compression for `O(1)`
//! bit maintenance (compaction re-quantiles and could re-compress).
//!
//! Deletes tombstone; a [`CompactionPolicy`] rebuilds the whole store —
//! re-quantiling bins and renumbering slots — once the tombstone fraction
//! crosses its threshold, bumping [`DynamicEngine::epoch`]. Object ids
//! handed out by [`DynamicEngine::insert`] are **stable across
//! compaction**: results and the mutation API speak stable ids, and the
//! internal slot renumbering is invisible.

use crate::big::{self, BigContext};
use crate::ibig::{self, IbigContext};
use crate::parallel::{parallel_big, parallel_ibig, ShardedBigContext, ShardedIbigContext};
use crate::preprocess::{incomparable_bitvecs, Preprocessed};
use crate::query::{shuffle_ties, Algorithm, BinChoice, TieBreak};
use crate::result::{ResultEntry, TkdResult};
use crate::scratch::ScratchSpace;
use crate::standing::{
    self, Notification, StandingId, StandingQuery, StandingSpec, StandingState, StandingStats,
};
use crate::EngineQuery;
use std::collections::HashMap;
use std::fmt;
use tkd_bitvec::{BitVec, Concise, Tombstones};
use tkd_index::{cost, BinnedBitmapIndex, BitmapIndex};
use tkd_model::{stats, Dataset, DimMask, ModelError, ObjectId};

/// When the engine rebuilds itself to shed tombstones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionPolicy {
    /// Rebuild once `dead / total slots` exceeds this fraction.
    pub max_tombstone_fraction: f64,
    /// …but never before this many tombstones exist (tiny stores would
    /// otherwise thrash: rebuilding 10 rows to shed 3 is slower than
    /// carrying them).
    pub min_dead: usize,
}

impl Default for CompactionPolicy {
    /// Rebuild at 25 % tombstones, once at least 64 exist.
    fn default() -> Self {
        CompactionPolicy {
            max_tombstone_fraction: 0.25,
            min_dead: 64,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts (tests and benchmarks that want to
    /// observe tombstone behavior in isolation).
    pub fn never() -> Self {
        CompactionPolicy {
            max_tombstone_fraction: 2.0,
            min_dead: usize::MAX,
        }
    }
}

/// Construction options for [`DynamicEngine::with_options`].
#[derive(Clone, Debug)]
pub struct DynamicOptions {
    /// IBIG bin selection, re-resolved against the live data at every
    /// compaction.
    pub bins: BinChoice,
    /// Tombstone compaction policy.
    pub policy: CompactionPolicy,
}

impl Default for DynamicOptions {
    fn default() -> Self {
        DynamicOptions {
            bins: BinChoice::Auto,
            policy: CompactionPolicy::default(),
        }
    }
}

/// One update against a [`DynamicEngine`] — the op-file/batch currency of
/// `tkdq update` and `repro --exp updates`.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// Insert a row (`None` = missing cell).
    Insert(Vec<Option<f64>>),
    /// Insert a labeled row.
    InsertLabeled(String, Vec<Option<f64>>),
    /// Delete by stable id.
    Delete(ObjectId),
    /// Overwrite one cell by stable id (`None` clears it to missing).
    Set(ObjectId, usize, Option<f64>),
}

/// Why an update or dynamic query was rejected. Failed ops leave the
/// engine unchanged.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateError {
    /// Row validation failed (arity, NaN, all-missing, bad dimension).
    Model(ModelError),
    /// The id was never issued by this engine.
    UnknownId(ObjectId),
    /// The id was issued but its object has been deleted.
    Deleted(ObjectId),
    /// The dynamic engine serves the index-guided algorithms only.
    UnsupportedAlgorithm(Algorithm),
    /// A standing-query registration was invalid (bad subspace,
    /// constraint, fallback fraction, or unsupported algorithm).
    InvalidStandingQuery(String),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Model(e) => write!(f, "{e}"),
            UpdateError::UnknownId(id) => write!(f, "unknown object id {id}"),
            UpdateError::Deleted(id) => write!(f, "object {id} was deleted"),
            UpdateError::UnsupportedAlgorithm(a) => {
                write!(f, "dynamic engine serves BIG/IBIG, not {a:?}")
            }
            UpdateError::InvalidStandingQuery(why) => {
                write!(f, "invalid standing query: {why}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<ModelError> for UpdateError {
    fn from(e: ModelError) -> Self {
        UpdateError::Model(e)
    }
}

/// Lifetime counters of a [`DynamicEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Successful inserts.
    pub inserts: usize,
    /// Successful deletes.
    pub deletes: usize,
    /// Successful cell updates (no-op value rewrites included).
    pub cell_updates: usize,
    /// Compactions performed (policy-triggered or explicit).
    pub compactions: usize,
}

/// Sentinel in the `t` table for unobserved cells — public because the
/// snapshot codec persists the table verbatim ([`DynamicParts::t`]).
pub const T_UNOBSERVED: u32 = u32::MAX;

/// What [`DynamicEngine::apply_ops`] did with one op batch: how far it
/// got, the identities it handed out or retired, and — when standing
/// queries are registered — one result-delta [`Notification`] per query.
///
/// Unlike [`DynamicEngine::apply_all`], a failing op does **not** abort
/// the post-batch work: window age-out and standing maintenance still run
/// over whatever prefix applied, so subscriber state stays consistent
/// with the engine after partial failures.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// Ops applied (the prefix before the first failure, if any).
    pub applied: usize,
    /// Stable ids handed out by this batch's inserts, in op order.
    pub inserted_ids: Vec<ObjectId>,
    /// Stable ids deleted by sliding-window age-out (oldest first).
    pub aged_out: Vec<ObjectId>,
    /// `(index of the failing op, its error)`, if the batch stopped early.
    pub error: Option<(usize, UpdateError)>,
    /// This batch's sequence number (monotonic per engine).
    pub batch_seq: u64,
    /// One delta per registered standing query (empty deltas included).
    pub notifications: Vec<Notification>,
}

/// Borrowed view of a [`DynamicEngine`]'s persisted logical state —
/// what the snapshot *writer* consumes ([`DynamicEngine::store_parts_ref`]).
/// Field-for-field the borrowed twin of [`DynamicParts`], which remains
/// the owned currency of the *load* path.
#[derive(Clone, Copy, Debug)]
pub struct DynamicPartsRef<'a> {
    /// All slots since the last compaction, tombstoned rows included.
    pub ds: &'a Dataset,
    /// Slot → stable id (strictly increasing).
    pub stable_of: &'a [ObjectId],
    /// Next stable id to hand out.
    pub next_id: ObjectId,
    /// The maintained exact bitmap index.
    pub index: &'a BitmapIndex,
    /// The maintained binned index.
    pub binned: &'a BinnedBitmapIndex,
    /// Maintained queue + incomparable sets (queue freshly re-sorted).
    pub pre: &'a Preprocessed,
    /// Row-major `n × dims` table of `|Tᵢ(o)|` ([`T_UNOBSERVED`] where
    /// missing).
    pub t: &'a [u32],
    /// IBIG bin selection.
    pub bins: &'a BinChoice,
    /// Tombstone compaction policy.
    pub policy: CompactionPolicy,
    /// Compaction epoch.
    pub epoch: u64,
    /// Lifetime update counters.
    pub stats: UpdateStats,
}

/// The persisted logical state of a [`DynamicEngine`] — everything
/// [`DynamicEngine::from_store_parts`] needs to resume bit-identically,
/// and nothing derivable: the slot→stable-id map, live/dead bookkeeping
/// (inside [`DynamicParts::index`]'s live mask), `|Sᵢ|` missing counts,
/// the scratch space, and the stable-id→slot inverse are all recomputed
/// at load.
#[derive(Clone, Debug)]
pub struct DynamicParts {
    /// All slots since the last compaction, tombstoned rows included.
    pub ds: Dataset,
    /// Slot → stable id (strictly increasing).
    pub stable_of: Vec<ObjectId>,
    /// Next stable id to hand out.
    pub next_id: ObjectId,
    /// The maintained exact bitmap index (its live mask is the engine's).
    pub index: BitmapIndex,
    /// The maintained binned index (frozen bins, live probe trees).
    pub binned: BinnedBitmapIndex,
    /// Maintained queue + incomparable sets. The queue must be clean
    /// (re-sorted) — [`DynamicEngine::to_store_parts`] refreshes first.
    pub pre: Preprocessed,
    /// Row-major `n × dims` table of `|Tᵢ(o)|`, [`T_UNOBSERVED`] where
    /// `o` misses `i` (stale on tombstoned slots, like in memory).
    pub t: Vec<u32>,
    /// IBIG bin selection, re-resolved at the next compaction.
    pub bins: BinChoice,
    /// Tombstone compaction policy.
    pub policy: CompactionPolicy,
    /// Compaction epoch.
    pub epoch: u64,
    /// Lifetime update counters.
    pub stats: UpdateStats,
}

/// Storage-provenance summary of a [`DynamicEngine`] — see
/// [`DynamicEngine::storage_report`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Columns still borrowing a shared snapshot buffer.
    pub borrowed_columns: usize,
    /// All columns tallied (bitmap + binned + live mask + F-sets).
    pub total_columns: usize,
    /// Do the dataset's value/mask slabs borrow a snapshot buffer?
    pub dataset_borrowed: bool,
}

impl StorageReport {
    /// Does *any* storage still borrow a snapshot buffer (i.e. the
    /// engine serves borrowed rather than promoted/owned storage)?
    pub fn is_borrowed(&self) -> bool {
        self.borrowed_columns > 0 || self.dataset_borrowed
    }
}

/// A versioned, owning update layer over the BIG/IBIG query engines: see
/// the [module docs](self) for the maintenance strategy and the exactness
/// argument.
///
/// ```
/// use tkd_core::dynamic::DynamicEngine;
/// use tkd_core::EngineQuery;
/// use tkd_model::Dataset;
///
/// // Values are smaller-is-better: (1, 1) dominates both later rows.
/// let ds = Dataset::from_rows(2, &[vec![Some(1.0), Some(1.0)]]).unwrap();
/// let mut engine = DynamicEngine::new(ds);
/// let b = engine.insert(&[Some(2.0), None]).unwrap();
/// engine.insert(&[Some(3.0), Some(2.0)]).unwrap();
/// let top = engine.query(&EngineQuery::new(1)).unwrap();
/// assert_eq!((top.entries()[0].id, top.entries()[0].score), (0, 2));
/// engine.delete(0).unwrap(); // (2, −) now dominates (3, 2) on dim 0
/// let top = engine.query(&EngineQuery::new(1)).unwrap();
/// assert_eq!(top.entries()[0].id, b); // ids are stable across updates
/// ```
pub struct DynamicEngine {
    dims: usize,
    /// All slots ever inserted since the last compaction, tombstones
    /// included (their rows keep their values until compaction).
    ds: Dataset,
    live: Tombstones,
    /// Slot → stable id (strictly increasing, so slot order and stable-id
    /// order agree — the tie-order invariant).
    stable_of: Vec<ObjectId>,
    /// Stable id → slot, live objects only.
    slot_of: HashMap<ObjectId, usize>,
    next_id: ObjectId,
    index: BitmapIndex,
    binned: BinnedBitmapIndex,
    /// Maintained queue + incomparable sets, lent into query contexts.
    pre: Preprocessed,
    /// Row-major `n × dims` table of `|Tᵢ(o)|` (the exact per-dimension
    /// MaxScore ingredients); [`T_UNOBSERVED`] where `o` misses `i`.
    t: Vec<u32>,
    /// Per-dimension live missing counts `|Sᵢ|`.
    missing: Vec<usize>,
    /// The queue needs a re-sort before the next query.
    queue_dirty: bool,
    scratch: ScratchSpace,
    bins: BinChoice,
    policy: CompactionPolicy,
    epoch: u64,
    stats: UpdateStats,
    /// Standing-query registry, dirty tracking, and the shared exact-score
    /// cache (dormant — zero per-op cost — until a query registers).
    standing: StandingState,
}

impl fmt::Debug for DynamicEngine {
    /// Summary form (the full artifact dump would be megabytes).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicEngine")
            .field("dims", &self.dims)
            .field("live", &self.len())
            .field("tombstones", &self.tombstones())
            .field("epoch", &self.epoch)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl DynamicEngine {
    /// Take ownership of `ds` and build the initial artifacts (equivalent
    /// to epoch 0's compaction).
    pub fn new(ds: Dataset) -> Self {
        Self::with_options(ds, DynamicOptions::default())
    }

    /// [`DynamicEngine::new`] with explicit binning and compaction policy.
    pub fn with_options(ds: Dataset, options: DynamicOptions) -> Self {
        let dims = ds.dims();
        let n = ds.len();
        let mut engine = DynamicEngine {
            dims,
            ds,
            live: Tombstones::all_live(n),
            stable_of: (0..n as ObjectId).collect(),
            slot_of: (0..n).map(|s| (s as ObjectId, s)).collect(),
            next_id: n as ObjectId,
            index: BitmapIndex::build(&Dataset::from_rows(dims, &[]).expect("valid dims")),
            binned: BinnedBitmapIndex::build(
                &Dataset::from_rows(dims, &[]).expect("valid dims"),
                &vec![1; dims],
            ),
            pre: Preprocessed {
                queue: Vec::new(),
                f_sets: HashMap::new(),
            },
            t: Vec::new(),
            missing: vec![0; dims],
            queue_dirty: false,
            scratch: ScratchSpace::new(n),
            bins: options.bins,
            policy: options.policy,
            epoch: 0,
            stats: UpdateStats::default(),
            standing: StandingState::default(),
        };
        engine.rebuild_artifacts();
        engine
    }

    // ----- accessors ------------------------------------------------------

    /// Dimensionality of the data space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of **live** objects.
    pub fn len(&self) -> usize {
        self.live.live_count()
    }

    /// Is the live set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned slots awaiting compaction.
    pub fn tombstones(&self) -> usize {
        self.live.dead_count()
    }

    /// Current tombstone fraction of the slot space.
    pub fn tombstone_fraction(&self) -> f64 {
        self.live.dead_fraction()
    }

    /// Compaction epoch: how many times the store has been rebuilt.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime update counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Where the engine's word storage lives: how many of its `BitVec`
    /// columns (bitmap + binned + incomparable sets) still **borrow** a
    /// shared snapshot buffer versus own their words, and whether the
    /// dataset slabs do. A freshly built engine is fully owned; a
    /// zero-copy load is fully borrowed; mutations promote exactly the
    /// storage they touch.
    pub fn storage_report(&self) -> StorageReport {
        let mut r = StorageReport::default();
        let mut tally = |bv: &tkd_bitvec::BitVec| {
            r.total_columns += 1;
            r.borrowed_columns += usize::from(bv.is_shared());
        };
        tally(self.index.live_mask());
        for d in 0..self.index.dims() {
            for c in 0..self.index.num_columns(d) {
                tally(self.index.column(d, c));
            }
        }
        for d in 0..self.binned.dims() {
            for c in 0..self.binned.num_columns(d) {
                tally(self.binned.column(d, c));
            }
        }
        for bv in self.pre.f_sets.values() {
            tally(bv);
        }
        r.dataset_borrowed = self.ds.is_shared();
        r
    }

    /// Is `id` a live object?
    pub fn contains(&self, id: ObjectId) -> bool {
        self.slot_of.contains_key(&id)
    }

    /// Value of live object `id` at `dim` (`None` = missing).
    pub fn value(&self, id: ObjectId, dim: usize) -> Result<Option<f64>, UpdateError> {
        let slot = self.slot(id)?;
        if dim >= self.dims {
            return Err(ModelError::DimensionOutOfRange {
                dim,
                dims: self.dims,
            }
            .into());
        }
        Ok(self.ds.value(slot as ObjectId, dim))
    }

    /// Label of live object `id`, if any.
    pub fn label(&self, id: ObjectId) -> Result<Option<&str>, UpdateError> {
        let slot = self.slot(id)?;
        Ok(self.ds.label(slot as ObjectId))
    }

    /// Stable ids of the live objects, in insertion order.
    pub fn live_ids(&self) -> Vec<ObjectId> {
        self.live.iter_live().map(|s| self.stable_of[s]).collect()
    }

    /// A compacted copy of the live data, in insertion order (row `i`
    /// corresponds to `live_ids()[i]`) — what a rebuild-from-scratch
    /// oracle would operate on.
    pub fn snapshot(&self) -> Dataset {
        let slots: Vec<ObjectId> = self.live.iter_live().map(|s| s as ObjectId).collect();
        self.ds.select(&slots)
    }

    // ----- updates --------------------------------------------------------

    /// Insert a row, returning its stable id.
    ///
    /// # Errors
    /// Row validation errors ([`UpdateError::Model`]); the engine is
    /// unchanged on error.
    pub fn insert(&mut self, row: &[Option<f64>]) -> Result<ObjectId, UpdateError> {
        self.insert_inner(row, None)
    }

    /// Insert a labeled row, returning its stable id.
    ///
    /// # Errors
    /// Same as [`DynamicEngine::insert`].
    pub fn insert_labeled(
        &mut self,
        label: impl Into<String>,
        row: &[Option<f64>],
    ) -> Result<ObjectId, UpdateError> {
        self.insert_inner(row, Some(label.into()))
    }

    fn insert_inner(
        &mut self,
        row: &[Option<f64>],
        label: Option<String>,
    ) -> Result<ObjectId, UpdateError> {
        let mask = self.check_row(row)?;
        // 1. Every existing live object's |Tᵢ| gains the new object's
        //    contribution (word-parallel delta scans over the pre-insert
        //    index).
        for (dim, &obs) in row.iter().enumerate() {
            self.shift_t(dim, obs, None, 1);
            if obs.is_none() {
                self.missing[dim] += 1;
            }
        }
        // 2. Indexes and storage grow by one slot.
        let slot = self.index.append_row(|d| row[d]);
        let also = self.binned.append_row(|d| row[d]);
        debug_assert_eq!(slot, also);
        match label {
            Some(l) => self.ds.push_row_labeled(l, row),
            None => self.ds.push_row(row),
        }
        .expect("row already validated");
        self.live.push_live();
        if self.standing.tracking() {
            self.standing.on_insert_slot();
        }
        // 3. The new object's own |Tᵢ| row, via the (updated) probe trees
        //    — the same rank-query formula the from-scratch oracle uses.
        for (dim, &obs) in row.iter().enumerate() {
            self.t.push(match obs {
                None => T_UNOBSERVED,
                Some(v) => {
                    (self.binned.count_value_at_least(dim, v) - 1 + self.missing[dim]) as u32
                }
            });
        }
        // 4. Incomparable sets: a bit for the newcomer in every mask's
        //    set, plus an entry for its own mask if unseen.
        for (key, bv) in self.pre.f_sets.iter_mut() {
            bv.push(*key & mask.bits() == 0);
        }
        self.ensure_fset(mask);
        // 5. Stable identity.
        let id = self.next_id;
        self.next_id += 1;
        self.stable_of.push(id);
        self.slot_of.insert(id, slot);
        self.queue_dirty = true;
        self.stats.inserts += 1;
        Ok(id)
    }

    /// Delete live object `id` (tombstone now, physical removal at the
    /// next compaction).
    ///
    /// # Errors
    /// [`UpdateError::UnknownId`] / [`UpdateError::Deleted`]; the engine
    /// is unchanged on error.
    pub fn delete(&mut self, id: ObjectId) -> Result<(), UpdateError> {
        let slot = self.slot(id)?;
        if self.standing.tracking() {
            self.standing.mark(slot);
            self.standing.structural += 1;
            self.standing.effective += 1;
        }
        // Kill first so the delta scans exclude the victim itself.
        self.live.kill(slot);
        for dim in 0..self.dims {
            let obs = self.ds.value(slot as ObjectId, dim);
            self.shift_t(dim, obs, None, -1);
            if obs.is_none() {
                self.missing[dim] -= 1;
            }
        }
        self.index.tombstone_row(slot);
        let row: Vec<Option<f64>> = (0..self.dims)
            .map(|d| self.ds.value(slot as ObjectId, d))
            .collect();
        self.binned.tombstone_row(slot, |d| row[d]);
        for bv in self.pre.f_sets.values_mut() {
            bv.clear(slot);
        }
        self.slot_of.remove(&id);
        self.queue_dirty = true;
        self.stats.deletes += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Overwrite one cell of live object `id` (`None` clears it to
    /// missing, `Some` sets/overwrites it).
    ///
    /// # Errors
    /// Id errors, [`ModelError::DimensionOutOfRange`],
    /// [`ModelError::NaNValue`], and [`ModelError::AllMissingRow`] when
    /// clearing the object's only observed value. The engine is unchanged
    /// on error.
    pub fn update_value(
        &mut self,
        id: ObjectId,
        dim: usize,
        new: Option<f64>,
    ) -> Result<(), UpdateError> {
        let slot = self.slot(id)?;
        if dim >= self.dims {
            return Err(ModelError::DimensionOutOfRange {
                dim,
                dims: self.dims,
            }
            .into());
        }
        if new.is_some_and(f64::is_nan) {
            return Err(ModelError::NaNValue { row: slot, dim }.into());
        }
        let old = self.ds.value(slot as ObjectId, dim);
        let mut mask = self.ds.mask(slot as ObjectId);
        if old.is_some() && new.is_none() && mask.count() == 1 {
            return Err(ModelError::AllMissingRow(slot).into());
        }
        self.stats.cell_updates += 1;
        match (old, new) {
            (None, None) => return Ok(()),
            // IEEE-equal rewrite (covers −0.0 ↔ 0.0): every index artifact
            // treats the two identically (value tables dedup with `==`,
            // `F64Key` normalizes signed zero), so only storage changes.
            (Some(a), Some(b)) if a == b => {
                self.ds
                    .set_value(slot as ObjectId, dim, new)
                    .expect("validated");
                return Ok(());
            }
            _ => {}
        }
        if self.standing.tracking() {
            // The rewritten row's own score can change too — the delta
            // scans below only cover the *other* side of each pair.
            self.standing.mark(slot);
            self.standing.touched_dims |= 1u64 << dim;
            self.standing.effective += 1;
        }
        // Other objects' |T_dim|: remove the old contribution, add the new
        // one. Both scans skip the object itself (its own row is
        // recomputed below) and see only other objects' bits, which the
        // in-between index mutation does not touch.
        self.shift_t(dim, old, Some(slot), -1);
        self.index.set_cell(slot, dim, new);
        self.shift_t(dim, new, Some(slot), 1);
        self.binned.set_cell(slot, dim, old, new);
        self.ds
            .set_value(slot as ObjectId, dim, new)
            .expect("validated above");
        match (old.is_some(), new.is_some()) {
            (true, false) => self.missing[dim] += 1,
            (false, true) => self.missing[dim] -= 1,
            _ => {}
        }
        // The object's own |T_dim| from the updated probe tree.
        self.t[slot * self.dims + dim] = match new {
            None => T_UNOBSERVED,
            Some(v) => (self.binned.count_value_at_least(dim, v) - 1 + self.missing[dim]) as u32,
        };
        // Observedness flips re-home the object across incomparable sets.
        if old.is_some() != new.is_some() {
            match new {
                Some(_) => mask.set(dim),
                None => mask.unset(dim),
            }
            self.ensure_fset(mask);
            for (key, bv) in self.pre.f_sets.iter_mut() {
                if *key & mask.bits() == 0 {
                    bv.set(slot);
                } else {
                    bv.clear(slot);
                }
            }
        }
        self.queue_dirty = true;
        Ok(())
    }

    /// Apply one [`UpdateOp`]. Inserts return `Some(stable id)`.
    ///
    /// # Errors
    /// The op's own validation errors; the engine is unchanged on error.
    pub fn apply(&mut self, op: &UpdateOp) -> Result<Option<ObjectId>, UpdateError> {
        match op {
            UpdateOp::Insert(row) => self.insert(row).map(Some),
            UpdateOp::InsertLabeled(label, row) => {
                self.insert_labeled(label.clone(), row).map(Some)
            }
            UpdateOp::Delete(id) => self.delete(*id).map(|()| None),
            UpdateOp::Set(id, dim, v) => self.update_value(*id, *dim, *v).map(|()| None),
        }
    }

    /// Apply a batch front to back, stopping at the first failure.
    ///
    /// # Errors
    /// `(index of the failing op, its error)` — ops before it are applied.
    pub fn apply_all(&mut self, ops: &[UpdateOp]) -> Result<(), (usize, UpdateError)> {
        for (i, op) in ops.iter().enumerate() {
            self.apply(op).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    // ----- standing queries -----------------------------------------------

    /// Register a standing query: its initial result is computed now (a
    /// full query), and every subsequent [`DynamicEngine::apply_ops`]
    /// batch patches it in place and reports the delta as a
    /// [`Notification`]. Duplicate registrations of the same spec are
    /// independent queries with fresh ids.
    ///
    /// # Errors
    /// [`UpdateError::InvalidStandingQuery`] for a spec naming an
    /// unsupported algorithm, an out-of-range or empty subspace, a
    /// malformed constraint, or a fallback fraction outside `[0, 1]`.
    pub fn register(&mut self, spec: StandingSpec) -> Result<StandingId, UpdateError> {
        spec.validate(self.dims)
            .map_err(UpdateError::InvalidStandingQuery)?;
        if !self.standing.tracking() {
            self.standing.activate(self.ds.len());
        }
        let result = self.standing_answer_fresh(&spec);
        let id = self.standing.next_id;
        self.standing.next_id += 1;
        self.standing.queries.insert(
            id,
            StandingQuery {
                spec,
                result,
                stats: StandingStats::default(),
            },
        );
        Ok(id)
    }

    /// Remove a standing query. Returns whether `id` was registered; the
    /// last removal drops all tracking state (updates go back to paying
    /// zero standing overhead).
    pub fn unregister(&mut self, id: StandingId) -> bool {
        let removed = self.standing.queries.remove(&id).is_some();
        if removed && self.standing.queries.is_empty() {
            self.standing.deactivate();
        }
        removed
    }

    /// The current result set of a standing query (stable ids, sorted by
    /// score desc then id asc), or `None` for an unknown id. Reflects the
    /// state as of the last [`DynamicEngine::apply_ops`] batch (or
    /// registration); direct mutation-call dirt is folded in at the next
    /// batch.
    pub fn standing_result(&self, id: StandingId) -> Option<&[ResultEntry]> {
        self.standing.queries.get(&id).map(|q| q.result.as_slice())
    }

    /// Patch/fallback/skip counters of a standing query.
    pub fn standing_stats(&self, id: StandingId) -> Option<StandingStats> {
        self.standing.queries.get(&id).map(|q| q.stats)
    }

    /// Ids of all registered standing queries, ascending.
    pub fn standing_ids(&self) -> Vec<StandingId> {
        self.standing.queries.keys().copied().collect()
    }

    /// Set (or clear) the sliding-window capacity: after each
    /// [`DynamicEngine::apply_ops`] batch, the **oldest** live objects —
    /// by stable id, which is insertion order — beyond the capacity are
    /// deleted through the normal tombstone + compaction machinery and
    /// reported in [`BatchReport::aged_out`].
    pub fn set_window(&mut self, capacity: Option<usize>) {
        self.standing.window = capacity;
    }

    /// The sliding-window capacity, if any.
    pub fn window(&self) -> Option<usize> {
        self.standing.window
    }

    /// Apply a batch of ops as one **maintenance unit**: ops run front to
    /// back stopping at the first failure (exactly [`apply_all`]'s
    /// semantics), then window age-out and standing-query maintenance run
    /// over whatever applied, so subscriber state stays consistent even
    /// after a partial batch. One [`Notification`] per registered
    /// standing query is always produced, empty deltas included.
    ///
    /// [`apply_all`]: DynamicEngine::apply_all
    pub fn apply_ops(&mut self, ops: &[UpdateOp]) -> BatchReport {
        let mut report = BatchReport {
            applied: 0,
            inserted_ids: Vec::new(),
            aged_out: Vec::new(),
            error: None,
            batch_seq: 0,
            notifications: Vec::new(),
        };
        for (i, op) in ops.iter().enumerate() {
            match self.apply(op) {
                Ok(Some(id)) => {
                    report.inserted_ids.push(id);
                    report.applied += 1;
                }
                Ok(None) => report.applied += 1,
                Err(e) => {
                    report.error = Some((i, e));
                    break;
                }
            }
        }
        if let Some(cap) = self.standing.window {
            while self.len() > cap {
                let oldest = self
                    .live
                    .iter_live()
                    .next()
                    .map(|s| self.stable_of[s])
                    .expect("live set is non-empty while above capacity");
                self.delete(oldest).expect("oldest live id is deletable");
                report.aged_out.push(oldest);
            }
        }
        self.standing.batch_seq += 1;
        report.batch_seq = self.standing.batch_seq;
        report.notifications = self.standing_maintenance();
        report
    }

    /// Run one batch's standing maintenance: invalidate the score cache
    /// for the dirty slots, patch (or re-query) every registered query,
    /// emit the deltas, and clear the per-batch trackers.
    fn standing_maintenance(&mut self) -> Vec<Notification> {
        if !self.standing.tracking() {
            return Vec::new();
        }
        self.refresh();
        if self.scratch.n() != self.ds.len() {
            self.scratch = ScratchSpace::new(self.ds.len());
        }
        // Invalidate exactly the dirtied cache entries, counting how much
        // of the *live* set was touched (dead dirt cannot inflate the
        // fraction past 1.0, so `fallback_fraction = 1.0` never falls
        // back).
        let mut dirty_live = 0usize;
        if self.standing.all_dirty {
            for c in self.standing.cache.iter_mut() {
                *c = standing::SCORE_UNKNOWN;
            }
        } else {
            for &s in &self.standing.dirty_slots {
                self.standing.cache[s] = standing::SCORE_UNKNOWN;
                if self.live.is_live(s) {
                    dirty_live += 1;
                }
            }
        }
        let live_count = self.live.live_count();
        let fraction = if self.standing.all_dirty {
            1.0
        } else if live_count == 0 {
            0.0
        } else {
            dirty_live as f64 / live_count as f64
        };
        let effective = self.standing.effective > 0;
        let structural = self.standing.structural > 0 || self.standing.all_dirty;
        let touched_dims = self.standing.touched_dims;
        let seq = self.standing.batch_seq;

        let mut queries = std::mem::take(&mut self.standing.queries);
        let mut snapshot: Option<(Dataset, Vec<ObjectId>)> = None;
        let mut notes = Vec::with_capacity(queries.len());
        for (&id, q) in queries.iter_mut() {
            let (new_result, via_fallback) = if !effective {
                // Nothing effective happened: the result provably stands.
                q.stats.skipped += 1;
                (q.result.clone(), false)
            } else if q.spec.is_full_space() {
                if fraction > q.spec.fallback_fraction {
                    q.stats.fallbacks += 1;
                    (self.standing_requery_full(&q.spec), true)
                } else {
                    q.stats.patched += 1;
                    (self.standing_patch_full(&q.spec), false)
                }
            } else if structural || touched_dims & q.spec.scope_mask() != 0 {
                // Scoped queries rank a derived dataset: re-query it.
                q.stats.fallbacks += 1;
                let (snap, ids) =
                    snapshot.get_or_insert_with(|| (self.snapshot(), self.live_ids()));
                (standing::scoped_requery(snap, ids, &q.spec), true)
            } else {
                // No structural change and no in-scope dimension touched:
                // the derived dataset is unchanged, so is the result.
                q.stats.skipped += 1;
                (q.result.clone(), false)
            };
            let (added, removed, rescored) = standing::diff(&q.result, &new_result);
            q.result = new_result;
            q.stats.batches += 1;
            notes.push(Notification {
                id,
                batch_seq: seq,
                added,
                removed,
                rescored,
                kth_score: q.result.last().map(|e| e.score),
                via_fallback,
            });
        }
        self.standing.queries = queries;
        self.standing.reset_batch();
        notes
    }

    /// Compute a fresh result for a spec through the same paths the
    /// per-batch maintenance uses (registration and the fallback path).
    fn standing_answer_fresh(&mut self, spec: &StandingSpec) -> Vec<ResultEntry> {
        self.refresh();
        if self.scratch.n() != self.ds.len() {
            self.scratch = ScratchSpace::new(self.ds.len());
        }
        if spec.is_full_space() {
            self.standing_requery_full(spec)
        } else {
            standing::scoped_requery(&self.snapshot(), &self.live_ids(), spec)
        }
    }

    /// Full-space fallback: plain sequential re-query, results mapped to
    /// stable ids, cache warmed with the k exact scores just computed.
    fn standing_requery_full(&mut self, spec: &StandingSpec) -> Vec<ResultEntry> {
        let slots = standing::requery_full(
            &self.ds,
            &self.index,
            &self.binned,
            &self.pre,
            spec.algorithm,
            spec.k,
            &mut self.standing.cache,
            &mut self.scratch,
        );
        self.slots_to_stable(slots)
    }

    /// Full-space patch: the cached-score queue walk, mapped to stable ids.
    fn standing_patch_full(&mut self, spec: &StandingSpec) -> Vec<ResultEntry> {
        let slots = standing::patched_top_k(
            &self.ds,
            &self.index,
            &self.binned,
            &self.pre,
            spec.algorithm,
            spec.k,
            &mut self.standing.cache,
            &mut self.scratch,
        );
        self.slots_to_stable(slots)
    }

    /// Slot-id entries → stable-id entries. `stable_of` is strictly
    /// increasing, so (score desc, id asc) order is preserved verbatim.
    fn slots_to_stable(&self, entries: Vec<ResultEntry>) -> Vec<ResultEntry> {
        entries
            .into_iter()
            .map(|e| ResultEntry {
                id: self.stable_of[e.id as usize],
                score: e.score,
            })
            .collect()
    }

    // ----- queries --------------------------------------------------------

    /// Answer a query single-threaded through the sequential scratch
    /// engines. Entry ids are **stable ids**.
    ///
    /// # Errors
    /// [`UpdateError::UnsupportedAlgorithm`] for anything but BIG/IBIG.
    pub fn query(&mut self, q: &EngineQuery) -> Result<TkdResult, UpdateError> {
        self.query_threads(q, 1)
    }

    /// Answer a query with `threads` workers cooperating through the
    /// replay-merged parallel engine (identical results to
    /// [`DynamicEngine::query`] — the same differential guarantee the
    /// static parallel engine carries).
    ///
    /// # Errors
    /// [`UpdateError::UnsupportedAlgorithm`] for anything but BIG/IBIG.
    pub fn query_threads(
        &mut self,
        q: &EngineQuery,
        threads: usize,
    ) -> Result<TkdResult, UpdateError> {
        if !matches!(q.algorithm, Algorithm::Big | Algorithm::Ibig) {
            return Err(UpdateError::UnsupportedAlgorithm(q.algorithm));
        }
        self.refresh();
        if self.scratch.n() != self.ds.len() {
            self.scratch = ScratchSpace::new(self.ds.len());
        }
        let threads = threads.max(1);
        let result = match (q.algorithm, threads) {
            (Algorithm::Big, 1) => {
                let ctx = BigContext::from_prebuilt(&self.ds, &self.index, &self.pre);
                big::big_with_scratch(&ctx, q.k, &mut self.scratch)
            }
            (Algorithm::Big, t) => {
                let ctx = ShardedBigContext::from_prebuilt(&self.ds, &self.index, &self.pre);
                parallel_big(&ctx, q.k, t)
            }
            (Algorithm::Ibig, 1) => {
                let ctx: IbigContext<'_, Concise> =
                    IbigContext::from_prebuilt_dense(&self.ds, &self.binned, &self.pre);
                ibig::ibig_with_scratch(&ctx, q.k, &mut self.scratch)
            }
            (Algorithm::Ibig, t) => {
                let ctx: ShardedIbigContext<'_, Concise> =
                    ShardedIbigContext::from_prebuilt_dense(&self.ds, &self.binned, &self.pre);
                parallel_ibig(&ctx, q.k, t)
            }
            _ => unreachable!("guarded above"),
        };
        // Slot ids → stable ids. `stable_of` is strictly increasing, so
        // the (score desc, id asc) entry order is preserved verbatim.
        let stats = result.stats;
        let entries: Vec<ResultEntry> = result
            .into_iter()
            .map(|e| ResultEntry {
                id: self.stable_of[e.id as usize],
                score: e.score,
            })
            .collect();
        let mapped = TkdResult::new_ordered(entries, stats);
        Ok(match q.tie {
            TieBreak::ById => mapped,
            TieBreak::Random(seed) => shuffle_ties(mapped, seed),
        })
    }

    /// Answer a batch of concurrent queries against the live state —
    /// the coalescing path of the network server: the borrowed
    /// single-shard contexts are built **once** per batch (O(1) in the
    /// dataset) and the batch fans out worker-per-query through
    /// [`crate::ParallelEngine::query_many`]. Results come back in
    /// batch order, each bit-identical (entries, scores, tie order) to
    /// running [`DynamicEngine::query`] alone, and entry ids are
    /// **stable ids**.
    ///
    /// # Errors
    /// [`UpdateError::UnsupportedAlgorithm`] if any query names anything
    /// but BIG/IBIG (the batch is rejected whole; the engine state is
    /// untouched either way — queries never mutate).
    pub fn query_many(
        &mut self,
        queries: &[EngineQuery],
        threads: usize,
    ) -> Result<Vec<TkdResult>, UpdateError> {
        for q in queries {
            if !matches!(q.algorithm, Algorithm::Big | Algorithm::Ibig) {
                return Err(UpdateError::UnsupportedAlgorithm(q.algorithm));
            }
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        self.refresh();
        let engine = crate::ParallelEngine::from_prebuilt(
            &self.ds,
            &self.index,
            &self.binned,
            &self.pre,
            threads,
        );
        // Run with the identity tie-break and map slot → stable ids
        // first, applying the requested tie handling after the mapping —
        // the exact order of operations of `query_threads`, so the two
        // paths stay bit-identical.
        let plain: Vec<EngineQuery> = queries
            .iter()
            .map(|q| EngineQuery {
                k: q.k,
                algorithm: q.algorithm,
                tie: TieBreak::ById,
            })
            .collect();
        let results = engine.query_many(&plain);
        Ok(queries
            .iter()
            .zip(results)
            .map(|(q, r)| {
                let stats = r.stats;
                let entries: Vec<ResultEntry> = r
                    .into_iter()
                    .map(|e| ResultEntry {
                        id: self.stable_of[e.id as usize],
                        score: e.score,
                    })
                    .collect();
                let mapped = TkdResult::new_ordered(entries, stats);
                match q.tie {
                    TieBreak::ById => mapped,
                    TieBreak::Random(seed) => shuffle_ties(mapped, seed),
                }
            })
            .collect())
    }

    // ----- persistence ----------------------------------------------------

    /// Export the engine's logical state for the snapshot writer. Takes
    /// `&mut self` to flush the deferred queue re-sort first, so the
    /// persisted queue is always clean and the serialization of a given
    /// logical state is deterministic.
    pub fn to_store_parts(&mut self) -> DynamicParts {
        self.refresh();
        DynamicParts {
            ds: self.ds.clone(),
            stable_of: self.stable_of.clone(),
            next_id: self.next_id,
            index: self.index.clone(),
            binned: self.binned.clone(),
            pre: self.pre.clone(),
            t: self.t.clone(),
            bins: self.bins.clone(),
            policy: self.policy,
            epoch: self.epoch,
            stats: self.stats,
        }
    }

    /// Borrowed form of [`DynamicEngine::to_store_parts`] — the encode
    /// path's view. Serializing through references keeps peak memory at
    /// one engine plus the output buffer; the owned [`DynamicParts`]
    /// (a full deep copy of every artifact) is only ever built on load.
    pub fn store_parts_ref(&mut self) -> DynamicPartsRef<'_> {
        self.refresh();
        DynamicPartsRef {
            ds: &self.ds,
            stable_of: &self.stable_of,
            next_id: self.next_id,
            index: &self.index,
            binned: &self.binned,
            pre: &self.pre,
            t: &self.t,
            bins: &self.bins,
            policy: self.policy,
            epoch: self.epoch,
            stats: self.stats,
        }
    }

    /// Resume an engine from persisted parts (snapshot load) — the
    /// inverse of [`DynamicEngine::to_store_parts`], rebuilding every
    /// derivable structure (live bookkeeping from the index's mask, the
    /// stable-id inverse, `|Sᵢ|` counts, scratch) and validating the
    /// cross-section invariants the query paths rely on: consistent
    /// arities, strictly increasing stable ids (the tie-order invariant),
    /// a `t` table whose observedness matches the dataset's masks, a
    /// clean correctly-sorted queue covering exactly the live slots, and
    /// an incomparable set for every live mask.
    ///
    /// # Errors
    /// A description of the first violated invariant. Bit-level integrity
    /// is the snapshot checksums' job; result-level equivalence is pinned
    /// by the round-trip parity suite.
    pub fn from_store_parts(parts: DynamicParts) -> Result<Self, String> {
        let DynamicParts {
            ds,
            stable_of,
            next_id,
            index,
            binned,
            pre,
            t,
            bins,
            policy,
            epoch,
            stats,
        } = parts;
        let dims = ds.dims();
        let n = ds.len();
        if index.n() != n || index.dims() != dims || index.base() != 0 {
            return Err(format!(
                "bitmap index shape ({} × {}, base {}) disagrees with the dataset ({n} × {dims})",
                index.n(),
                index.dims(),
                index.base()
            ));
        }
        if binned.n() != n || binned.dims() != dims || binned.base() != 0 {
            return Err(format!(
                "binned index shape ({} × {}) disagrees with the dataset ({n} × {dims})",
                binned.n(),
                binned.dims()
            ));
        }
        let live = Tombstones::from_live_mask(index.live_mask().clone());
        if stable_of.len() != n {
            return Err(format!(
                "stable-id table holds {} entries for {n} slots",
                stable_of.len()
            ));
        }
        if stable_of.windows(2).any(|w| w[0] >= w[1]) {
            return Err("stable ids are not strictly increasing".into());
        }
        if let Some(&last) = stable_of.last() {
            if last >= next_id {
                return Err(format!("stable id {last} is not below next_id {next_id}"));
            }
        }
        if t.len() != n * dims {
            return Err(format!(
                "t table holds {} entries, expected {}",
                t.len(),
                n * dims
            ));
        }
        let mut missing = vec![0usize; dims];
        for (d, m) in missing.iter_mut().enumerate() {
            *m = live
                .live_count()
                .checked_sub(binned.observed_count(d))
                .ok_or_else(|| {
                    format!("dim {d} observes more probe entries than live slots exist")
                })?;
        }
        // Live slots' t rows agree with the masks; the queue covers the
        // live slots exactly, sorted by (MaxScore desc, slot asc), each
        // entry carrying the min of its observed t row.
        for s in live.iter_live() {
            let mask = ds.mask(s as ObjectId);
            for d in 0..dims {
                let unobserved = t[s * dims + d] == T_UNOBSERVED;
                if unobserved == mask.observed(d) {
                    return Err(format!(
                        "t table observedness of slot {s} dim {d} disagrees with the dataset"
                    ));
                }
            }
        }
        if pre.queue().len() != live.live_count() {
            return Err(format!(
                "queue holds {} entries for {} live slots",
                pre.queue().len(),
                live.live_count()
            ));
        }
        let mut seen = BitVec::zeros(n);
        for (i, &(slot, ms)) in pre.queue().iter().enumerate() {
            let s = slot as usize;
            if s >= n || !live.is_live(s) {
                return Err(format!(
                    "queue entry {i} names dead or out-of-range slot {slot}"
                ));
            }
            if seen.get(s) {
                return Err(format!("queue names slot {slot} twice"));
            }
            seen.set(s);
            let expected = ds
                .mask(slot)
                .iter()
                .map(|d| t[s * dims + d] as usize)
                .min()
                .expect("live rows observe at least one dimension");
            if ms != expected {
                return Err(format!(
                    "queue MaxScore {ms} of slot {slot} disagrees with the t table ({expected})"
                ));
            }
            if i > 0 {
                let (ps, pm) = pre.queue()[i - 1];
                if (pm, slot) <= (ms, ps) {
                    return Err(format!(
                        "queue is not sorted by (MaxScore desc, slot asc) at entry {i}"
                    ));
                }
            }
        }
        for (mask, bv) in pre.f_sets() {
            if bv.len() != n {
                return Err(format!(
                    "incomparable set of mask {mask:#x} has {} bits, expected {n}",
                    bv.len()
                ));
            }
        }
        for s in live.iter_live() {
            let mask = ds.mask(s as ObjectId).bits();
            if !pre.f_sets().contains_key(&mask) {
                return Err(format!(
                    "no incomparable set for live mask {mask:#x} (slot {s})"
                ));
            }
        }
        let slot_of = live.iter_live().map(|s| (stable_of[s], s)).collect();
        Ok(DynamicEngine {
            dims,
            ds,
            live,
            stable_of,
            slot_of,
            next_id,
            index,
            binned,
            pre,
            t,
            missing,
            queue_dirty: false,
            scratch: ScratchSpace::new(n),
            bins,
            policy,
            epoch,
            stats,
            standing: StandingState::default(),
        })
    }

    // ----- compaction -----------------------------------------------------

    /// Rebuild the store from the live rows now: slots are renumbered,
    /// bins re-quantiled, tombstones dropped, the epoch bumped. Stable ids
    /// survive. (Normally policy-triggered; exposed for tests, benches,
    /// and operational control.)
    pub fn compact_now(&mut self) {
        let live_slots: Vec<ObjectId> = self.live.iter_live().map(|s| s as ObjectId).collect();
        let stable: Vec<ObjectId> = live_slots
            .iter()
            .map(|&s| self.stable_of[s as usize])
            .collect();
        self.ds = self.ds.select(&live_slots);
        let n = self.ds.len();
        self.live = Tombstones::all_live(n);
        self.slot_of = stable.iter().enumerate().map(|(s, &id)| (id, s)).collect();
        self.stable_of = stable;
        self.scratch = ScratchSpace::new(n);
        self.rebuild_artifacts();
        self.epoch += 1;
        self.stats.compactions += 1;
        if self.standing.tracking() {
            // Slots were renumbered: every cache entry and every result
            // may shift. Treated as 100 % dirty.
            self.standing.on_compact(n);
        }
    }

    fn maybe_compact(&mut self) {
        if self.live.dead_count() >= self.policy.min_dead
            && self.live.dead_fraction() > self.policy.max_tombstone_fraction
        {
            self.compact_now();
        }
    }

    /// (Re)build every maintained artifact from `self.ds`, which must be
    /// tombstone-free — the epoch-0 initialisation and the compaction
    /// tail.
    fn rebuild_artifacts(&mut self) {
        let ds = &self.ds;
        let n = ds.len();
        let dims = self.dims;
        self.index = BitmapIndex::build(ds);
        let bins = match &self.bins {
            BinChoice::Auto => {
                let x = cost::optimal_bins(n, stats::missing_rate(ds));
                vec![x; dims]
            }
            BinChoice::Fixed(x) => vec![(*x).max(1); dims],
            BinChoice::PerDim(v) => {
                assert_eq!(v.len(), dims, "one bin count per dimension");
                v.clone()
            }
        };
        self.binned = BinnedBitmapIndex::build(ds, &bins);
        self.missing = (0..dims)
            .map(|d| n - self.binned.observed_count(d))
            .collect();
        self.t = vec![T_UNOBSERVED; n * dims];
        for o in 0..n {
            for d in ds.mask(o as ObjectId).iter() {
                let v = ds.raw_value(o as ObjectId, d);
                self.t[o * dims + d] =
                    (self.binned.count_value_at_least(d, v) - 1 + self.missing[d]) as u32;
            }
        }
        self.pre = Preprocessed {
            queue: Vec::new(),
            f_sets: incomparable_bitvecs(ds),
        };
        self.queue_dirty = true;
        self.refresh();
    }

    // ----- internals ------------------------------------------------------

    fn slot(&self, id: ObjectId) -> Result<usize, UpdateError> {
        match self.slot_of.get(&id) {
            Some(&s) => Ok(s),
            None if id < self.next_id => Err(UpdateError::Deleted(id)),
            None => Err(UpdateError::UnknownId(id)),
        }
    }

    /// Validate a row *before* any artifact is touched (inserts must be
    /// atomic), with exactly the model's rules — shared through
    /// [`tkd_model::validate_row`] so the two layers cannot drift.
    fn check_row(&self, row: &[Option<f64>]) -> Result<DimMask, UpdateError> {
        Ok(tkd_model::validate_row(self.dims, row, self.ds.len())?)
    }

    /// Add `delta` to `|T_dim(o)|` of every live object `o` that counts an
    /// object observing `obs` in `dim` (`None` = the object misses `dim`
    /// and contributes through `S_dim` to every observer), skipping
    /// `skip`. One word-parallel `live ∧ ¬column` enumeration: `O(N/64)`
    /// words plus one add per affected object.
    fn shift_t(&mut self, dim: usize, obs: Option<f64>, skip: Option<usize>, delta: i32) {
        // `o` counts the contributor iff `o[dim] ≤ v` (rank sets) or
        // always when the contributor misses `dim` (membership in S_dim) —
        // in both cases a complement-of-column scan:
        //   {o live, observed, o[dim] ≤ v}  =  live ∧ ¬column[#values ≤ v]
        //   {o live, observed}              =  live ∧ ¬column[C_dim]
        let c = match obs {
            Some(v) => self.index.values(dim).partition_point(|&x| x <= v),
            None => self.index.cardinality(dim),
        };
        if c == 0 {
            return; // column 0 is all-ones: the complement set is empty
        }
        let col = self.index.column(dim, c);
        let dims = self.dims;
        if self.standing.tracking() {
            // Standing queries registered: the enumerated slots are exactly
            // the objects whose pairwise dominance with the touched row can
            // change (see `crate::standing`'s module docs), so collecting
            // the dirty set is a by-product of the same scan.
            for s in self.live.live_mask().iter_ones_and_not(col) {
                if Some(s) == skip {
                    continue;
                }
                self.standing.mark(s);
                let e = &mut self.t[s * dims + dim];
                debug_assert_ne!(*e, T_UNOBSERVED, "shift hit an unobserved cell");
                *e = e.checked_add_signed(delta).expect("t-count out of range");
            }
        } else {
            for s in self.live.live_mask().iter_ones_and_not(col) {
                if Some(s) == skip {
                    continue;
                }
                let e = &mut self.t[s * dims + dim];
                debug_assert_ne!(*e, T_UNOBSERVED, "shift hit an unobserved cell");
                *e = e.checked_add_signed(delta).expect("t-count out of range");
            }
        }
    }

    /// Make sure the incomparable-set table has an entry for `mask`,
    /// building it over the live objects if absent.
    fn ensure_fset(&mut self, mask: DimMask) {
        if self.pre.f_sets.contains_key(&mask.bits()) {
            return;
        }
        let mut bv = BitVec::zeros(self.ds.len());
        for s in self.live.iter_live() {
            if self.ds.mask(s as ObjectId).bits() & mask.bits() == 0 {
                bv.set(s);
            }
        }
        self.pre.f_sets.insert(mask.bits(), bv);
    }

    /// Re-sort the candidate queue from the maintained exact `|Tᵢ|` table
    /// (deferred until the next query so op batches pay it once).
    fn refresh(&mut self) {
        if !self.queue_dirty {
            return;
        }
        self.pre.queue.clear();
        let dims = self.dims;
        for s in self.live.iter_live() {
            let ms = self
                .ds
                .mask(s as ObjectId)
                .iter()
                .map(|d| self.t[s * dims + d] as usize)
                .min()
                .expect("live rows observe at least one dimension");
            self.pre.queue.push((s as ObjectId, ms));
        }
        self.pre
            .queue
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.queue_dirty = false;
    }

    /// Test/diagnostic hook: the maintained queue in (stable id, MaxScore)
    /// form — must equal the from-scratch queue over [`snapshot`]
    /// (`tests/dynamic_parity.rs` pins it).
    ///
    /// [`snapshot`]: DynamicEngine::snapshot
    pub fn maintained_queue(&mut self) -> Vec<(ObjectId, usize)> {
        self.refresh();
        self.pre
            .queue
            .iter()
            .map(|&(s, ms)| (self.stable_of[s as usize], ms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxscore::maxscore_queue;
    use crate::query::TkdQuery;
    use tkd_model::fixtures;

    fn engine_no_compaction(ds: Dataset) -> DynamicEngine {
        DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Auto,
                policy: CompactionPolicy::never(),
            },
        )
    }

    /// Rebuild-from-scratch oracle: run the static engines over the live
    /// snapshot and translate row positions to stable ids.
    fn oracle(
        engine: &DynamicEngine,
        k: usize,
        alg: Algorithm,
        threads: usize,
    ) -> Vec<(ObjectId, usize)> {
        let snap = engine.snapshot();
        let ids = engine.live_ids();
        let r = TkdQuery::new(k).algorithm(alg).threads(threads).run(&snap);
        r.iter().map(|e| (ids[e.id as usize], e.score)).collect()
    }

    fn dynamic_entries(
        engine: &mut DynamicEngine,
        k: usize,
        alg: Algorithm,
    ) -> Vec<(ObjectId, usize)> {
        let r = engine
            .query(&EngineQuery::new(k).algorithm(alg))
            .expect("supported");
        r.iter().map(|e| (e.id, e.score)).collect()
    }

    #[test]
    fn fig3_insert_delete_update_parity() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        // Baseline: T2D answer {A2, C2} @ 16.
        let r = engine.query(&EngineQuery::new(2)).unwrap();
        assert_eq!(r.kth_score(), Some(16));
        // A dominating newcomer takes over (smaller is better).
        let star = engine
            .insert(&[Some(0.0), Some(0.0), Some(0.0), Some(0.0)])
            .unwrap();
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            let got = dynamic_entries(&mut engine, 2, alg);
            assert_eq!(got, oracle(&engine, 2, alg, 1), "{alg:?}");
            assert_eq!(got[0].0, star, "{alg:?}");
        }
        // Delete it: the old answer returns.
        engine.delete(star).unwrap();
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            let got = dynamic_entries(&mut engine, 2, alg);
            assert_eq!(got, oracle(&engine, 2, alg, 1), "{alg:?}");
        }
        assert_eq!(
            engine.query(&EngineQuery::new(2)).unwrap().kth_score(),
            Some(16)
        );
        // Update a value and stay pinned to the oracle.
        let c2 = engine
            .snapshot()
            .id_by_label("C2")
            .map(|p| engine.live_ids()[p as usize])
            .unwrap();
        engine.update_value(c2, 0, Some(0.0)).unwrap();
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            assert_eq!(
                dynamic_entries(&mut engine, 3, alg),
                oracle(&engine, 3, alg, 1),
                "{alg:?}"
            );
        }
    }

    #[test]
    fn maintained_queue_is_exact() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        engine.insert(&[Some(4.0), None, Some(2.0), None]).unwrap();
        engine.insert(&[None, Some(1.0), None, Some(5.0)]).unwrap();
        let ids = engine.live_ids();
        engine.delete(ids[3]).unwrap();
        engine.update_value(ids[7], 2, None).unwrap();
        engine.update_value(ids[20], 1, Some(3.0)).unwrap();
        let maintained = engine.maintained_queue();
        let snap = engine.snapshot();
        let live = engine.live_ids();
        let scratch: Vec<(ObjectId, usize)> = maxscore_queue(&snap)
            .into_iter()
            .map(|(pos, ms)| (live[pos as usize], ms))
            .collect();
        assert_eq!(maintained, scratch);
    }

    #[test]
    fn update_value_to_and_from_missing_on_minimal_row() {
        let ds =
            Dataset::from_rows(2, &[vec![Some(1.0), None], vec![Some(2.0), Some(2.0)]]).unwrap();
        let mut engine = engine_no_compaction(ds);
        // Clearing the only observed cell is rejected and changes nothing.
        assert_eq!(
            engine.update_value(0, 0, None),
            Err(UpdateError::Model(ModelError::AllMissingRow(0)))
        );
        assert_eq!(engine.value(0, 0).unwrap(), Some(1.0));
        // Observe the other dim, then clearing dim 0 becomes legal.
        engine.update_value(0, 1, Some(9.0)).unwrap();
        engine.update_value(0, 0, None).unwrap();
        assert_eq!(engine.value(0, 0).unwrap(), None);
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            assert_eq!(
                dynamic_entries(&mut engine, 2, alg),
                oracle(&engine, 2, alg, 1),
                "{alg:?}"
            );
        }
    }

    #[test]
    fn signed_zero_updates_are_semantic_noops() {
        let ds = Dataset::from_rows(1, &[vec![Some(-0.0)], vec![Some(1.0)]]).unwrap();
        let mut engine = engine_no_compaction(ds);
        let before = engine.maintained_queue();
        engine.update_value(0, 0, Some(0.0)).unwrap();
        assert_eq!(engine.value(0, 0).unwrap(), Some(0.0));
        assert_eq!(engine.maintained_queue(), before);
        // And inserting the other zero sign ties, not dominates.
        let z = engine.insert(&[Some(0.0)]).unwrap();
        let r = engine.query(&EngineQuery::new(3)).unwrap();
        let score_of = |id| r.iter().find(|e| e.id == id).unwrap().score;
        assert_eq!(score_of(0), 1, "zeros tie each other, dominate 1.0");
        assert_eq!(score_of(z), 1);
        assert_eq!(score_of(1), 0, "1.0 is dominated, dominates nobody");
    }

    #[test]
    fn id_errors_and_unsupported_algorithms() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        assert_eq!(engine.delete(999), Err(UpdateError::UnknownId(999)));
        engine.delete(5).unwrap();
        assert_eq!(engine.delete(5), Err(UpdateError::Deleted(5)));
        assert_eq!(
            engine.update_value(5, 0, Some(1.0)),
            Err(UpdateError::Deleted(5))
        );
        assert!(matches!(
            engine.query(&EngineQuery::new(2).algorithm(Algorithm::Naive)),
            Err(UpdateError::UnsupportedAlgorithm(Algorithm::Naive))
        ));
        assert!(matches!(
            engine.insert(&[None; 4]),
            Err(UpdateError::Model(ModelError::AllMissingRow(_)))
        ));
        assert!(matches!(
            engine.insert(&[Some(1.0)]),
            Err(UpdateError::Model(ModelError::RowArity { .. }))
        ));
    }

    #[test]
    fn compaction_threshold_edges() {
        let rows: Vec<Vec<Option<f64>>> = (0..20).map(|i| vec![Some(i as f64)]).collect();
        let ds = Dataset::from_rows(1, &rows).unwrap();
        let mut engine = DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Fixed(4),
                policy: CompactionPolicy {
                    max_tombstone_fraction: 0.25,
                    min_dead: 4,
                },
            },
        );
        assert_eq!(engine.epoch(), 0);
        // 4 deletes of 20 slots = 20 % ≤ 25 %: no compaction (strict >).
        for id in 0..4 {
            engine.delete(id).unwrap();
        }
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.tombstones(), 4);
        // The 6th delete crosses: 6/20 = 30 % > 25 % (5/20 = 25 % is not >).
        engine.delete(4).unwrap();
        assert_eq!(engine.epoch(), 0, "exactly-at-threshold must not trigger");
        engine.delete(5).unwrap();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.tombstones(), 0);
        assert_eq!(engine.len(), 14);
        // Stable ids survived the slot renumbering.
        assert!(!engine.contains(3));
        assert!(engine.contains(19));
        assert_eq!(engine.value(19, 0).unwrap(), Some(19.0));
        // min_dead gates small stores: fraction alone is not enough.
        let tiny = Dataset::from_rows(1, &(0..6).map(|i| vec![Some(i as f64)]).collect::<Vec<_>>())
            .unwrap();
        let mut tiny_engine = DynamicEngine::with_options(
            tiny,
            DynamicOptions {
                bins: BinChoice::Auto,
                policy: CompactionPolicy {
                    max_tombstone_fraction: 0.25,
                    min_dead: 4,
                },
            },
        );
        tiny_engine.delete(0).unwrap();
        tiny_engine.delete(1).unwrap();
        assert_eq!(tiny_engine.epoch(), 0, "below min_dead");
        assert!(tiny_engine.tombstone_fraction() > 0.25);
    }

    #[test]
    fn compaction_preserves_results_bit_for_bit() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        for id in [0, 3, 7, 11] {
            engine.delete(id).unwrap();
        }
        let before: Vec<_> = dynamic_entries(&mut engine, 5, Algorithm::Big);
        engine.compact_now();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.tombstones(), 0);
        let after: Vec<_> = dynamic_entries(&mut engine, 5, Algorithm::Big);
        assert_eq!(before, after);
        assert_eq!(after, oracle(&engine, 5, Algorithm::Big, 1));
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        for id in engine.live_ids() {
            engine.delete(id).unwrap();
        }
        assert!(engine.is_empty());
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            assert!(engine
                .query(&EngineQuery::new(3).algorithm(alg))
                .unwrap()
                .is_empty());
        }
        let a = engine.insert(&[Some(1.0), None, Some(2.0), None]).unwrap();
        let b = engine
            .insert(&[Some(2.0), Some(1.0), Some(3.0), Some(1.0)])
            .unwrap();
        assert_eq!(a, 20, "ids keep counting monotonically");
        assert_eq!(engine.len(), 2);
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            let got = dynamic_entries(&mut engine, 2, alg);
            assert_eq!(got, oracle(&engine, 2, alg, 1), "{alg:?}");
            assert_eq!(got[0], (a, 1), "{alg:?}: a dominates b (smaller wins)");
        }
        let _ = b;
    }

    #[test]
    fn duplicate_inserts_tie() {
        let ds = Dataset::from_rows(2, &[vec![Some(1.0), Some(2.0)]]).unwrap();
        let mut engine = engine_no_compaction(ds);
        let dup = engine.insert(&[Some(1.0), Some(2.0)]).unwrap();
        let r = engine.query(&EngineQuery::new(2)).unwrap();
        assert_eq!(r.scores(), vec![0, 0], "exact duplicates dominate nobody");
        assert!(r.contains(0) && r.contains(dup));
        assert_eq!(
            dynamic_entries(&mut engine, 2, Algorithm::Ibig),
            oracle(&engine, 2, Algorithm::Ibig, 1)
        );
    }

    #[test]
    fn threads_agree_with_single_thread() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        engine
            .insert(&[Some(5.0), Some(5.0), None, Some(2.0)])
            .unwrap();
        engine.delete(2).unwrap();
        engine.update_value(10, 3, Some(6.0)).unwrap();
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            for k in [1usize, 3, 10, 30] {
                let seq = engine.query(&EngineQuery::new(k).algorithm(alg)).unwrap();
                for threads in [2usize, 4] {
                    let par = engine
                        .query_threads(&EngineQuery::new(k).algorithm(alg), threads)
                        .unwrap();
                    assert_eq!(par.entries(), seq.entries(), "{alg:?} k={k} t={threads}");
                }
            }
        }
    }

    #[test]
    fn tie_break_random_keeps_scores() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        let base = engine.query(&EngineQuery::new(6)).unwrap();
        for seed in 0..3 {
            let r = engine
                .query(&EngineQuery::new(6).tie_break(TieBreak::Random(seed)))
                .unwrap();
            assert_eq!(r.scores(), base.scores(), "seed {seed}");
        }
    }

    #[test]
    fn k_edges_on_dynamic_store() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        engine.delete(1).unwrap();
        let n = engine.len();
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            for k in [0usize, 1, n - 1, n, n + 5] {
                let got = dynamic_entries(&mut engine, k, alg);
                assert_eq!(got, oracle(&engine, k, alg, 1), "{alg:?} k={k}");
            }
        }
    }

    #[test]
    fn store_parts_roundtrip_resumes_bit_identically() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        engine.insert(&[Some(4.0), None, Some(2.0), None]).unwrap();
        engine.delete(3).unwrap();
        engine.update_value(7, 2, None).unwrap();
        let mut resumed = DynamicEngine::from_store_parts(engine.to_store_parts()).unwrap();
        assert_eq!(resumed.epoch(), engine.epoch());
        assert_eq!(resumed.tombstones(), engine.tombstones());
        assert_eq!(resumed.stats(), engine.stats());
        assert_eq!(resumed.live_ids(), engine.live_ids());
        assert_eq!(resumed.maintained_queue(), engine.maintained_queue());
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            for k in [1usize, 2, 5, 30] {
                assert_eq!(
                    dynamic_entries(&mut resumed, k, alg),
                    dynamic_entries(&mut engine, k, alg),
                    "{alg:?} k={k}"
                );
            }
        }
        // The resumed engine keeps mutating correctly — ids continue.
        let (a, b) = (
            resumed.insert(&[Some(1.0); 4]).unwrap(),
            engine.insert(&[Some(1.0); 4]).unwrap(),
        );
        assert_eq!(a, b);
        assert_eq!(
            dynamic_entries(&mut resumed, 3, Algorithm::Big),
            dynamic_entries(&mut engine, 3, Algorithm::Big)
        );
    }

    #[test]
    fn store_parts_reject_corrupted_invariants() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        engine.delete(2).unwrap();
        let parts = engine.to_store_parts();
        assert!(DynamicEngine::from_store_parts(parts.clone()).is_ok());
        // Non-increasing stable ids.
        {
            let mut p = parts.clone();
            p.stable_of.swap(0, 1);
            assert!(DynamicEngine::from_store_parts(p).is_err());
        }
        // next_id not above the largest stable id.
        {
            let mut p = parts.clone();
            p.next_id = 5;
            assert!(DynamicEngine::from_store_parts(p).is_err());
        }
        // Queue MaxScore tampered.
        {
            let mut p = parts.clone();
            let q = p.pre.queue().to_vec();
            let mut q2 = q.clone();
            q2[0].1 += 1;
            p.pre = Preprocessed::from_parts(q2, p.pre.f_sets().clone());
            assert!(DynamicEngine::from_store_parts(p).is_err());
        }
        // Queue order tampered (swap two adjacent distinct-score entries).
        {
            let mut p = parts.clone();
            let mut q = p.pre.queue().to_vec();
            let i = (0..q.len() - 1)
                .find(|&i| q[i].1 != q[i + 1].1)
                .expect("distinct scores exist");
            q.swap(i, i + 1);
            p.pre = Preprocessed::from_parts(q, p.pre.f_sets().clone());
            assert!(DynamicEngine::from_store_parts(p).is_err());
        }
        // t-table observedness flipped on an observed cell of live slot 0.
        {
            let mut p = parts.clone();
            let d =
                p.ds.mask(0)
                    .iter()
                    .next()
                    .expect("slot 0 observes something");
            p.t[d] = T_UNOBSERVED;
            assert!(DynamicEngine::from_store_parts(p).is_err());
        }
        // Missing incomparable set for a live mask.
        {
            let mut p = parts;
            let mut f = p.pre.f_sets().clone();
            f.remove(&p.ds.mask(0).bits());
            p.pre = Preprocessed::from_parts(p.pre.queue().to_vec(), f);
            assert!(DynamicEngine::from_store_parts(p).is_err());
        }
    }

    #[test]
    fn labels_flow_through() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        let id = engine
            .insert_labeled("Z9", &[Some(1.0), None, None, Some(2.0)])
            .unwrap();
        assert_eq!(engine.label(id).unwrap(), Some("Z9"));
        engine.compact_now();
        assert_eq!(engine.label(id).unwrap(), Some("Z9"));
        assert_eq!(engine.label(0).unwrap(), Some("A1"));
    }

    // ----- standing queries -----

    fn standing_oracle(engine: &DynamicEngine, spec: &StandingSpec) -> Vec<ResultEntry> {
        let snap = engine.snapshot();
        let ids = engine.live_ids();
        let entries: Vec<(ObjectId, usize)> = if let Some(dims) = &spec.subspace {
            let q = TkdQuery::new(spec.k).algorithm(spec.algorithm);
            crate::variants::subspace_top_k(&snap, dims, &q)
                .expect("valid subspace")
                .iter()
                .map(|e| (ids[e.id as usize], e.score))
                .collect()
        } else if !spec.constraint.is_empty() {
            let mut c = tkd_skyline::constrained::Constraints::none(snap.dims());
            for &(d, lo, hi) in &spec.constraint {
                c = c.with_range(d, lo, hi);
            }
            let q = TkdQuery::new(spec.k).algorithm(spec.algorithm);
            crate::variants::constrained_top_k(&snap, &c, &q)
                .iter()
                .map(|e| (ids[e.id as usize], e.score))
                .collect()
        } else {
            oracle(engine, spec.k, spec.algorithm, 1)
        };
        entries
            .into_iter()
            .map(|(id, score)| ResultEntry { id, score })
            .collect()
    }

    #[test]
    fn standing_register_validate_unregister() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        // Bad specs are rejected with the typed error.
        for bad in [
            StandingSpec::new(2).algorithm(Algorithm::Naive),
            StandingSpec::new(2).fallback_fraction(1.5),
            StandingSpec::new(2).subspace(vec![0, 9]),
            StandingSpec::new(2)
                .subspace(vec![0])
                .constrain(1, 0.0, 5.0),
        ] {
            assert!(matches!(
                engine.register(bad),
                Err(UpdateError::InvalidStandingQuery(_))
            ));
        }
        // Registration answers immediately, identically to the oracle.
        let spec = StandingSpec::new(2);
        let id = engine.register(spec.clone()).unwrap();
        assert_eq!(
            engine.standing_result(id).unwrap(),
            standing_oracle(&engine, &spec)
        );
        assert_eq!(engine.standing_ids(), vec![id]);
        // Duplicate registration is an independent query with a fresh id.
        let id2 = engine.register(spec).unwrap();
        assert_ne!(id, id2);
        assert!(engine.unregister(id));
        assert!(!engine.unregister(id));
        assert!(engine.unregister(id2));
        assert!(engine.standing_ids().is_empty());
    }

    #[test]
    fn standing_batches_track_oracle_and_count_paths() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        let always_patch = engine
            .register(StandingSpec::new(3).fallback_fraction(1.0))
            .unwrap();
        let always_fall = engine
            .register(
                StandingSpec::new(3)
                    .algorithm(Algorithm::Ibig)
                    .fallback_fraction(0.0),
            )
            .unwrap();
        let batches: Vec<Vec<UpdateOp>> = vec![
            vec![UpdateOp::Insert(vec![
                Some(0.5),
                None,
                Some(1.0),
                Some(2.0),
            ])],
            vec![UpdateOp::Set(0, 1, Some(3.0)), UpdateOp::Delete(3)],
            vec![], // empty batch: both queries may skip, notifications still flow
        ];
        let mut seq = 0;
        for ops in &batches {
            let report = engine.apply_ops(ops);
            assert!(report.error.is_none());
            seq += 1;
            assert_eq!(report.batch_seq, seq);
            assert_eq!(report.notifications.len(), 2);
            for q in [always_patch, always_fall] {
                let spec = StandingSpec::new(3).algorithm(if q == always_fall {
                    Algorithm::Ibig
                } else {
                    Algorithm::Big
                });
                assert_eq!(
                    engine.standing_result(q).unwrap(),
                    standing_oracle(&engine, &spec),
                    "batch {seq} query {q}"
                );
            }
            // Deltas reconstruct the new result from the old one.
            for note in &report.notifications {
                assert_eq!(note.batch_seq, seq);
            }
        }
        let patch_stats = engine.standing_stats(always_patch).unwrap();
        let fall_stats = engine.standing_stats(always_fall).unwrap();
        assert_eq!(patch_stats.batches, 3);
        assert_eq!(patch_stats.fallbacks, 0, "threshold 1.0 never falls back");
        assert!(patch_stats.patched >= 2);
        assert_eq!(fall_stats.patched, 0, "threshold 0.0 always falls back");
        assert!(fall_stats.fallbacks >= 2);
        assert!(patch_stats.skipped >= 1, "empty batch is provably a no-op");
    }

    #[test]
    fn standing_scoped_queries_skip_out_of_scope_batches() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        let spec = StandingSpec::new(2).subspace(vec![0, 1]);
        let id = engine.register(spec.clone()).unwrap();
        // A value touch outside the subspace is provably irrelevant.
        let r = engine.apply_ops(&[UpdateOp::Set(2, 3, Some(9.0))]);
        assert!(r.notifications[0].is_empty());
        assert_eq!(engine.standing_stats(id).unwrap().skipped, 1);
        // A touch inside it re-queries the derived dataset.
        engine.apply_ops(&[UpdateOp::Set(2, 0, Some(0.1))]);
        assert_eq!(
            engine.standing_result(id).unwrap(),
            standing_oracle(&engine, &spec)
        );
        assert_eq!(engine.standing_stats(id).unwrap().fallbacks, 1);
        // Structural churn always re-queries scoped results.
        engine.apply_ops(&[UpdateOp::Delete(0)]);
        assert_eq!(
            engine.standing_result(id).unwrap(),
            standing_oracle(&engine, &spec)
        );

        let cspec = StandingSpec::new(2).constrain(2, 0.0, 100.0);
        let cid = engine.register(cspec.clone()).unwrap();
        engine.apply_ops(&[UpdateOp::Set(4, 2, None)]);
        assert_eq!(
            engine.standing_result(cid).unwrap(),
            standing_oracle(&engine, &cspec)
        );
    }

    #[test]
    fn standing_window_ages_out_oldest_stable_ids() {
        let ds = fixtures::fig3_sample();
        let n = ds.len();
        let mut engine = DynamicEngine::new(ds);
        engine.set_window(Some(n));
        assert_eq!(engine.window(), Some(n));
        let id = engine.register(StandingSpec::new(2)).unwrap();
        // Each insert evicts exactly the oldest surviving object.
        for i in 0..4u32 {
            let report = engine.apply_ops(&[UpdateOp::Insert(vec![
                Some(f64::from(i)),
                Some(1.0),
                None,
                Some(2.0),
            ])]);
            assert!(report.error.is_none());
            assert_eq!(report.aged_out, vec![i]);
            assert_eq!(engine.len(), n);
            assert_eq!(
                engine.standing_result(id).unwrap(),
                standing_oracle(&engine, &StandingSpec::new(2))
            );
        }
        // Shrinking the window evicts down to the new capacity in one batch.
        engine.set_window(Some(2));
        let report = engine.apply_ops(&[]);
        assert_eq!(report.aged_out.len(), n - 2);
        assert_eq!(engine.len(), 2);
        assert_eq!(
            engine.standing_result(id).unwrap(),
            standing_oracle(&engine, &StandingSpec::new(2))
        );
    }

    #[test]
    fn standing_partial_batch_still_maintains() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        let id = engine.register(StandingSpec::new(2)).unwrap();
        let report = engine.apply_ops(&[
            UpdateOp::Delete(0),
            UpdateOp::Delete(999), // unknown id: batch stops here
            UpdateOp::Delete(1),
        ]);
        assert_eq!(report.applied, 1);
        assert!(matches!(
            report.error,
            Some((1, UpdateError::UnknownId(999)))
        ));
        // The one applied op is still reflected in the standing result.
        assert_eq!(
            engine.standing_result(id).unwrap(),
            standing_oracle(&engine, &StandingSpec::new(2))
        );
        assert!(engine.contains(1));
    }

    #[test]
    fn standing_survives_compaction() {
        let ds = fixtures::fig3_sample();
        let mut engine = DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Auto,
                policy: CompactionPolicy {
                    max_tombstone_fraction: 0.0,
                    min_dead: 1,
                },
            },
        );
        let id = engine.register(StandingSpec::new(2)).unwrap();
        // Deletes trigger immediate compaction (slot renumbering + epoch
        // bump); the standing result must stay pinned to the oracle.
        for victim in [2u32, 5, 0] {
            let report = engine.apply_ops(&[UpdateOp::Delete(victim)]);
            assert!(report.error.is_none());
            assert_eq!(
                engine.standing_result(id).unwrap(),
                standing_oracle(&engine, &StandingSpec::new(2)),
                "after deleting {victim}"
            );
        }
    }

    #[test]
    fn standing_k_zero_and_k_past_n() {
        let mut engine = engine_no_compaction(fixtures::fig3_sample());
        let zero = engine.register(StandingSpec::new(0)).unwrap();
        let huge = engine.register(StandingSpec::new(1000)).unwrap();
        assert!(engine.standing_result(zero).unwrap().is_empty());
        assert_eq!(engine.standing_result(huge).unwrap().len(), engine.len());
        let report = engine.apply_ops(&[UpdateOp::Delete(0)]);
        assert!(report.error.is_none());
        assert!(engine.standing_result(zero).unwrap().is_empty());
        assert_eq!(
            engine.standing_result(huge).unwrap(),
            standing_oracle(&engine, &StandingSpec::new(1000))
        );
    }
}
