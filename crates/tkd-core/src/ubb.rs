//! UBB — the Upper Bound Based algorithm (§4.2, Algorithm 2).
//!
//! Objects are visited in descending `MaxScore` order; exact scores are
//! computed by pairwise comparison; once the k-th best exact score `τ`
//! reaches the head's upper bound, no unvisited object can beat the
//! candidates and the query terminates early (**Heuristic 1**).

use crate::maxscore::maxscore_queue;
use crate::result::TkdResult;
use crate::stats::PruneStats;
use crate::topk::TopK;
use tkd_model::{dominance, Dataset, ObjectId};

/// Answer a TKD query with UBB.
pub fn ubb(ds: &Dataset, k: usize) -> TkdResult {
    let queue = maxscore_queue(ds);
    ubb_with_queue(ds, k, &queue)
}

/// UBB over a precomputed priority queue (lets benchmarks account for the
/// preprocessing separately, as the paper's Table 3 does).
pub fn ubb_with_queue(ds: &Dataset, k: usize, queue: &[(ObjectId, usize)]) -> TkdResult {
    if k == 0 {
        // τ can never form with an unfillable candidate set; skip the
        // full-queue scoring pass (uniform k-edge behavior).
        return TkdResult::new(
            Vec::new(),
            PruneStats {
                h1_pruned: queue.len(),
                ..Default::default()
            },
        );
    }
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        // Heuristic 1: everything from here on is bounded by max_score ≤ τ.
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        let score = dominance::score_of(ds, o);
        stats.scored += 1;
        top.offer(o, score);
    }
    TkdResult::new(top.into_entries(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use tkd_model::fixtures;

    #[test]
    fn example2_early_termination() {
        // §4.2 Example 2: after scoring C2 and A2 (τ = 16), the head B2 has
        // MaxScore(B2) = 16 ≤ τ — UBB stops after only two evaluations.
        let ds = fixtures::fig3_sample();
        let r = ubb(&ds, 2);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.stats.scored, 2, "exactly C2 and A2 evaluated");
        assert_eq!(r.stats.h1_pruned, 18, "the other 18 never scored");
    }

    #[test]
    fn agrees_with_naive_on_fixtures() {
        for ds in [
            fixtures::fig2_points(),
            fixtures::fig3_sample(),
            fixtures::fig1_movies(),
        ] {
            for k in [1, 2, 3, 4, 7, 50] {
                let a = ubb(&ds, k);
                let b = naive(&ds, k);
                assert_eq!(a.scores(), b.scores(), "k={k}");
            }
        }
    }

    // k-edge behavior (k = 0, k ≥ n, empty dataset) is covered uniformly
    // for all algorithms by `tests/edge_matrix.rs`.

    #[test]
    fn accounting_is_complete() {
        let ds = fixtures::fig3_sample();
        for k in [1, 2, 8] {
            let r = ubb(&ds, k);
            assert_eq!(r.stats.total(), ds.len(), "k={k}");
        }
    }
}
