//! Standing (continuous) TKD queries — registered top-k result sets that
//! are **patched per op-batch** instead of recomputed, after the
//! answer-maintenance direction of Kosmatopoulos & Tsichlas's *Dynamic
//! Top-k Dominating Queries* applied to the incomplete-data engines of
//! Miao et al. (ICDE 2016).
//!
//! # How a patch stays bit-identical to a re-query
//!
//! The sequential drivers ([`crate::big::big_with_scratch`],
//! [`crate::ibig::ibig_with_scratch`]) walk the maintained
//! `(MaxScore desc, slot asc)` queue offering **exact** scores to a
//! `TopK` (`crate::topk`); Heuristics 1–3 only ever skip objects whose exact score is
//! `≤ τ`, and `TopK::offer` ignores exactly those (strict-`>`
//! displacement). So the final result set is a pure function of the queue
//! order and the exact scores — *which* offers were skipped is invisible.
//! The standing layer exploits that: it keeps a per-slot cache of exact
//! scores, re-walks the queue offering cached scores for clean slots, and
//! re-scores only slots whose cache was invalidated since the last batch.
//! The result is the same TopK state sequence the from-scratch run
//! produces, entry for entry, score for score, tie for tie.
//!
//! # Which slots get invalidated
//!
//! `score(p)` changes only when the dominance relation `p ≺ x` flips for
//! some object `x` touched by an op. Any dominator `p` of `x` satisfies
//! `p[d] ≤ x[d]` on every commonly observed dimension, so `p` is a member
//! of the `live ∧ ¬column` complement scan [`super::dynamic`] already runs
//! per touched dimension to repair the `|Tᵢ|` table — and for
//! missing-value transitions the scan widens to *all* observers of the
//! dimension. The dirty set is therefore collected for free as a
//! by-product of the existing word-parallel delta scans, plus the touched
//! row itself. When the dirty fraction of the live set exceeds the
//! query's [`StandingSpec::fallback_fraction`], patching degenerates and
//! the layer falls back to a plain full re-query (counted in
//! [`StandingStats::fallbacks`] and flagged in
//! [`Notification::via_fallback`]).
//!
//! Subspace and constrained standing queries rank over a *derived*
//! dataset, where per-slot score caching does not apply; they use a
//! scope check instead — a batch that performed no structural change and
//! touched no in-scope dimension provably leaves the result unchanged —
//! and re-query through [`crate::variants`] otherwise.

use crate::big::{self, BigContext};
use crate::ibig::{self, IbigContext, ScoreOutcome};
use crate::preprocess::Preprocessed;
use crate::query::{Algorithm, TkdQuery};
use crate::result::ResultEntry;
use crate::scratch::ScratchSpace;
use crate::topk::TopK;
use crate::variants;
use std::collections::{BTreeMap, HashMap};
use tkd_bitvec::Concise;
use tkd_index::{BinnedBitmapIndex, BitmapIndex};
use tkd_model::{Dataset, ObjectId};
use tkd_skyline::constrained::Constraints;

/// Handle of a registered standing query (unique per engine, never
/// reused — duplicate registrations of the same spec get fresh ids).
pub type StandingId = u64;

/// Cache sentinel: the slot's exact score is unknown (never computed, or
/// invalidated by the current batch's dirty scan).
pub(crate) const SCORE_UNKNOWN: u32 = u32::MAX;

/// What a standing query asks for: the continuous analogue of
/// [`crate::EngineQuery`], plus the patch/fallback tuning knob.
#[derive(Clone, Debug, PartialEq)]
pub struct StandingSpec {
    /// How many dominating objects to maintain.
    pub k: usize,
    /// BIG or IBIG — the engines the dynamic layer serves.
    pub algorithm: Algorithm,
    /// Rank inside this dimension subset (strictly increasing indices);
    /// `None` = the full space. Subspace queries re-rank over a projected
    /// dataset and therefore use scope-checked re-query, not patching.
    pub subspace: Option<Vec<usize>>,
    /// Per-dimension inclusive range constraints `(dim, lo, hi)`; empty =
    /// unconstrained. Constrained queries rank the admitted
    /// sub-population over the full space, so every dimension is in scope.
    pub constraint: Vec<(usize, f64, f64)>,
    /// Fall back to a full re-query when more than this fraction of the
    /// live set was dirtied by the batch (`0.0` = always re-query on any
    /// change, `1.0` = never fall back). Must be finite in `[0, 1]`.
    pub fallback_fraction: f64,
}

impl StandingSpec {
    /// A full-space top-`k` standing query answered by BIG, falling back
    /// to re-query above 25 % churn (the default the benchmarks use).
    pub fn new(k: usize) -> Self {
        StandingSpec {
            k,
            algorithm: Algorithm::Big,
            subspace: None,
            constraint: Vec::new(),
            fallback_fraction: 0.25,
        }
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Rank inside a dimension subset.
    pub fn subspace(mut self, dims: Vec<usize>) -> Self {
        self.subspace = Some(dims);
        self
    }

    /// Constrain `dim` to the inclusive range `[lo, hi]` (last range per
    /// dimension wins, matching [`Constraints::with_range`]).
    pub fn constrain(mut self, dim: usize, lo: f64, hi: f64) -> Self {
        self.constraint.push((dim, lo, hi));
        self
    }

    /// Set the fallback threshold.
    pub fn fallback_fraction(mut self, f: f64) -> Self {
        self.fallback_fraction = f;
        self
    }

    /// Validate against an engine of dimensionality `dims`. Returns a
    /// human-readable description of the first violation.
    pub(crate) fn validate(&self, dims: usize) -> Result<(), String> {
        if !matches!(self.algorithm, Algorithm::Big | Algorithm::Ibig) {
            return Err(format!(
                "standing queries run on BIG/IBIG, not {:?}",
                self.algorithm
            ));
        }
        if !self.fallback_fraction.is_finite() || !(0.0..=1.0).contains(&self.fallback_fraction) {
            return Err(format!(
                "fallback fraction {} is not in [0, 1]",
                self.fallback_fraction
            ));
        }
        if let Some(sub) = &self.subspace {
            if sub.is_empty() {
                return Err("subspace is empty".into());
            }
            if sub.windows(2).any(|w| w[0] >= w[1]) {
                return Err("subspace dimensions must be strictly increasing".into());
            }
            if let Some(&d) = sub.iter().find(|&&d| d >= dims) {
                return Err(format!(
                    "subspace dimension {d} is out of range (dims = {dims})"
                ));
            }
            if !self.constraint.is_empty() {
                return Err("subspace and constraint cannot be combined".into());
            }
        }
        for &(d, lo, hi) in &self.constraint {
            if d >= dims {
                return Err(format!(
                    "constraint dimension {d} is out of range (dims = {dims})"
                ));
            }
            if lo.is_nan() || hi.is_nan() {
                return Err(format!("constraint on dimension {d} has NaN bounds"));
            }
            if lo > hi {
                return Err(format!(
                    "constraint on dimension {d} is the empty range [{lo}, {hi}]"
                ));
            }
        }
        Ok(())
    }

    /// Bitmask of the dimensions whose mutation can change this query's
    /// answer without a structural (insert/delete/compaction) change.
    pub(crate) fn scope_mask(&self) -> u64 {
        match &self.subspace {
            // Constrained (and plain scoped-requery) queries judge
            // dominance over the full space: everything is in scope.
            None => u64::MAX,
            Some(dims) => dims.iter().fold(0u64, |m, &d| m | (1u64 << d)),
        }
    }

    /// Does this spec use the patched full-space path (as opposed to the
    /// scope-checked re-query path)?
    pub(crate) fn is_full_space(&self) -> bool {
        self.subspace.is_none() && self.constraint.is_empty()
    }
}

/// One standing query's result delta after an op batch. Exactly one
/// notification per registered query per batch is emitted — empty deltas
/// included — so subscribers can detect lost or duplicated pushes by
/// sequence continuity alone.
#[derive(Clone, Debug, PartialEq)]
pub struct Notification {
    /// Which standing query.
    pub id: StandingId,
    /// The engine's batch sequence number (monotonic across
    /// [`super::DynamicEngine::apply_ops`] calls).
    pub batch_seq: u64,
    /// Entries that entered the top-k (stable ids, exact scores).
    pub added: Vec<ResultEntry>,
    /// Ids that left the top-k.
    pub removed: Vec<ObjectId>,
    /// Entries that stayed but whose score changed.
    pub rescored: Vec<ResultEntry>,
    /// The k-th (smallest maintained) score after the batch — the
    /// paper's `τ`; `None` while the result holds fewer than 1 entry.
    pub kth_score: Option<usize>,
    /// Did this batch take the full re-query path (fallback threshold
    /// exceeded, or a scoped query whose scope was touched)?
    pub via_fallback: bool,
}

impl Notification {
    /// Is this an empty delta (the result set did not change)?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.rescored.is_empty()
    }
}

/// Lifetime counters of one standing query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StandingStats {
    /// Batches this query was maintained across.
    pub batches: u64,
    /// Batches answered by the patched cache walk.
    pub patched: u64,
    /// Batches answered by a full re-query (threshold exceeded, or a
    /// scoped query whose scope was touched).
    pub fallbacks: u64,
    /// Batches provably unable to change the result (scope untouched, or
    /// nothing effective happened) — no walk, no re-query.
    pub skipped: u64,
}

/// One registered query: its spec, its current result (stable ids,
/// sorted by score desc then id asc), and its counters.
#[derive(Clone, Debug)]
pub(crate) struct StandingQuery {
    pub(crate) spec: StandingSpec,
    pub(crate) result: Vec<ResultEntry>,
    pub(crate) stats: StandingStats,
}

/// The engine-side registry plus the per-batch dirty tracking and the
/// shared exact-score cache. Dormant (empty vectors, no per-op overhead)
/// until the first query registers.
#[derive(Debug, Default)]
pub(crate) struct StandingState {
    pub(crate) queries: BTreeMap<StandingId, StandingQuery>,
    pub(crate) next_id: StandingId,
    pub(crate) batch_seq: u64,
    /// Slot → dirtied this batch (superset of slots whose exact score may
    /// have changed; collected by the `shift_t` delta scans plus the
    /// touched rows themselves).
    pub(crate) dirty: Vec<bool>,
    /// Dirtied slots, unique, in marking order — so invalidation and the
    /// live-dirt count stay O(dirt), not O(n).
    pub(crate) dirty_slots: Vec<usize>,
    /// Compaction renumbered the slots: every cache entry is invalid and
    /// every result may shift (treated as 100 % dirty).
    pub(crate) all_dirty: bool,
    /// Dimensions touched by `Set` ops this batch.
    pub(crate) touched_dims: u64,
    /// Inserts + deletes (age-outs included) + compactions this batch.
    pub(crate) structural: usize,
    /// All effective ops this batch (structural plus value rewrites).
    pub(crate) effective: usize,
    /// Slot → exact score, [`SCORE_UNKNOWN`] where never computed or
    /// invalidated. Shared across queries and algorithms — BIG and IBIG
    /// compute the same dominance score.
    pub(crate) cache: Vec<u32>,
    /// Sliding-window capacity: after each batch the oldest live objects
    /// beyond it are deleted through the normal tombstone path.
    pub(crate) window: Option<usize>,
}

impl StandingState {
    /// Is per-op dirty tracking active (any query registered)?
    #[inline]
    pub(crate) fn tracking(&self) -> bool {
        !self.queries.is_empty()
    }

    /// Mark one slot dirty (idempotent).
    #[inline]
    pub(crate) fn mark(&mut self, slot: usize) {
        if !self.dirty[slot] {
            self.dirty[slot] = true;
            self.dirty_slots.push(slot);
        }
    }

    /// A new slot was appended by an insert: it is dirty by construction.
    pub(crate) fn on_insert_slot(&mut self) {
        let slot = self.dirty.len();
        self.dirty.push(true);
        self.dirty_slots.push(slot);
        self.cache.push(SCORE_UNKNOWN);
        self.structural += 1;
        self.effective += 1;
    }

    /// Compaction renumbered every slot.
    pub(crate) fn on_compact(&mut self, n: usize) {
        self.dirty = vec![false; n];
        self.dirty_slots.clear();
        self.cache = vec![SCORE_UNKNOWN; n];
        self.all_dirty = true;
        self.structural += 1;
        self.effective += 1;
    }

    /// Size the tracking vectors for an engine of `n` slots (first
    /// registration) — everything unknown, nothing dirty.
    pub(crate) fn activate(&mut self, n: usize) {
        self.dirty = vec![false; n];
        self.dirty_slots.clear();
        self.cache = vec![SCORE_UNKNOWN; n];
        self.all_dirty = false;
        self.touched_dims = 0;
        self.structural = 0;
        self.effective = 0;
    }

    /// Drop the tracking vectors (last query unregistered).
    pub(crate) fn deactivate(&mut self) {
        self.dirty = Vec::new();
        self.dirty_slots = Vec::new();
        self.cache = Vec::new();
        self.all_dirty = false;
        self.touched_dims = 0;
        self.structural = 0;
        self.effective = 0;
    }

    /// Clear the per-batch trackers after maintenance consumed them.
    pub(crate) fn reset_batch(&mut self) {
        for &s in &self.dirty_slots {
            self.dirty[s] = false;
        }
        self.dirty_slots.clear();
        self.all_dirty = false;
        self.touched_dims = 0;
        self.structural = 0;
        self.effective = 0;
    }
}

/// The patched walk: re-run the Heuristic-1 queue traversal offering
/// cached exact scores for clean slots and scoring dirty/unknown slots
/// through the unchanged BIG/IBIG scorers (Heuristics 2–3 still active on
/// misses; pruned objects stay uncached — their exact score was never
/// computed). Returns slot-id entries sorted (score desc, slot asc):
/// bit-identical to the corresponding `*_with_scratch` run by the
/// no-op-offer argument in the [module docs](self).
#[allow(clippy::too_many_arguments)] // crate-internal plumbing mirroring the engine's field set
pub(crate) fn patched_top_k(
    ds: &Dataset,
    index: &BitmapIndex,
    binned: &BinnedBitmapIndex,
    pre: &Preprocessed,
    algorithm: Algorithm,
    k: usize,
    cache: &mut [u32],
    scratch: &mut ScratchSpace,
) -> Vec<ResultEntry> {
    if k == 0 {
        return Vec::new();
    }
    let mut top = TopK::new(k);
    match algorithm {
        Algorithm::Big => {
            let ctx = BigContext::from_prebuilt(ds, index, pre);
            for &(o, max_score) in pre.queue() {
                if top.prunes(max_score) {
                    break;
                }
                let c = cache[o as usize];
                if c != SCORE_UNKNOWN {
                    top.offer(o, c as usize);
                } else if let Some(s) = big::big_score(&ctx, o, &top, scratch) {
                    debug_assert!((s as u64) < SCORE_UNKNOWN as u64);
                    cache[o as usize] = s as u32;
                    top.offer(o, s);
                }
            }
        }
        Algorithm::Ibig => {
            let ctx: IbigContext<'_, Concise> = IbigContext::from_prebuilt_dense(ds, binned, pre);
            for &(o, max_score) in pre.queue() {
                if top.prunes(max_score) {
                    break;
                }
                let c = cache[o as usize];
                if c != SCORE_UNKNOWN {
                    top.offer(o, c as usize);
                } else if let ScoreOutcome::Score(s) = ibig::ibig_score(&ctx, o, &top, scratch) {
                    debug_assert!((s as u64) < SCORE_UNKNOWN as u64);
                    cache[o as usize] = s as u32;
                    top.offer(o, s);
                }
            }
        }
        other => unreachable!("standing specs are validated to BIG/IBIG, got {other:?}"),
    }
    sort_entries(top.into_entries())
}

/// Full re-query through the unchanged sequential drivers (the fallback
/// path). Returns slot-id entries; the k result scores are written back
/// into the cache — they are exact by definition.
#[allow(clippy::too_many_arguments)] // crate-internal plumbing mirroring the engine's field set
pub(crate) fn requery_full(
    ds: &Dataset,
    index: &BitmapIndex,
    binned: &BinnedBitmapIndex,
    pre: &Preprocessed,
    algorithm: Algorithm,
    k: usize,
    cache: &mut [u32],
    scratch: &mut ScratchSpace,
) -> Vec<ResultEntry> {
    let result = match algorithm {
        Algorithm::Big => {
            let ctx = BigContext::from_prebuilt(ds, index, pre);
            big::big_with_scratch(&ctx, k, scratch)
        }
        Algorithm::Ibig => {
            let ctx: IbigContext<'_, Concise> = IbigContext::from_prebuilt_dense(ds, binned, pre);
            ibig::ibig_with_scratch(&ctx, k, scratch)
        }
        other => unreachable!("standing specs are validated to BIG/IBIG, got {other:?}"),
    };
    let entries = result.entries().to_vec();
    for e in &entries {
        cache[e.id as usize] = e.score as u32;
    }
    entries
}

/// Scoped (subspace / constrained) re-query over the live snapshot,
/// returning **stable-id** entries: the same [`crate::variants`] calls a
/// from-scratch client would make, with snapshot positions translated
/// through `live_ids` (ascending-position ↔ ascending-stable-id, so the
/// tie order carries over verbatim).
pub(crate) fn scoped_requery(
    snapshot: &Dataset,
    live_ids: &[ObjectId],
    spec: &StandingSpec,
) -> Vec<ResultEntry> {
    let query = TkdQuery::new(spec.k).algorithm(spec.algorithm);
    let result = if let Some(dims) = &spec.subspace {
        variants::subspace_top_k(snapshot, dims, &query)
            .expect("subspace validated at registration")
    } else {
        let mut c = Constraints::none(snapshot.dims());
        for &(d, lo, hi) in &spec.constraint {
            c = c.with_range(d, lo, hi);
        }
        variants::constrained_top_k(snapshot, &c, &query)
    };
    result
        .into_iter()
        .map(|e| ResultEntry {
            id: live_ids[e.id as usize],
            score: e.score,
        })
        .collect()
}

/// Sort entries by (score desc, id asc) — the result-order contract.
pub(crate) fn sort_entries(mut entries: Vec<ResultEntry>) -> Vec<ResultEntry> {
    entries.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    entries
}

/// Diff two result sets into `(added, removed, rescored)`, each in
/// result order (added/rescored follow `new`'s order, removed follows
/// `old`'s).
pub(crate) fn diff(
    old: &[ResultEntry],
    new: &[ResultEntry],
) -> (Vec<ResultEntry>, Vec<ObjectId>, Vec<ResultEntry>) {
    let old_scores: HashMap<ObjectId, usize> = old.iter().map(|e| (e.id, e.score)).collect();
    let new_ids: HashMap<ObjectId, ()> = new.iter().map(|e| (e.id, ())).collect();
    let mut added = Vec::new();
    let mut rescored = Vec::new();
    for e in new {
        match old_scores.get(&e.id) {
            None => added.push(*e),
            Some(&s) if s != e.score => rescored.push(*e),
            Some(_) => {}
        }
    }
    let removed = old
        .iter()
        .filter(|e| !new_ids.contains_key(&e.id))
        .map(|e| e.id)
        .collect();
    (added, removed, rescored)
}

/// Re-apply a notification to a previous result set, returning the new
/// one — the subscriber-side reconstruction the differential harness and
/// the serve stress test use to prove deltas are lossless.
pub fn apply_notification(previous: &[ResultEntry], note: &Notification) -> Vec<ResultEntry> {
    let mut by_id: BTreeMap<ObjectId, usize> = previous.iter().map(|e| (e.id, e.score)).collect();
    for id in &note.removed {
        by_id.remove(id);
    }
    for e in note.added.iter().chain(note.rescored.iter()) {
        by_id.insert(e.id, e.score);
    }
    sort_entries(
        by_id
            .into_iter()
            .map(|(id, score)| ResultEntry { id, score })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: ObjectId, score: usize) -> ResultEntry {
        ResultEntry { id, score }
    }

    #[test]
    fn diff_and_reconstruction_roundtrip() {
        let old = vec![e(1, 9), e(2, 7), e(3, 7)];
        let new = vec![e(4, 8), e(1, 8), e(3, 7)];
        let (added, removed, rescored) = diff(&old, &new);
        assert_eq!(added, vec![e(4, 8)]);
        assert_eq!(removed, vec![2]);
        assert_eq!(rescored, vec![e(1, 8)]);
        let note = Notification {
            id: 0,
            batch_seq: 1,
            added,
            removed,
            rescored,
            kth_score: Some(7),
            via_fallback: false,
        };
        assert_eq!(apply_notification(&old, &note), sort_entries(new));
        assert!(!note.is_empty());
    }

    #[test]
    fn spec_validation() {
        assert!(StandingSpec::new(3).validate(4).is_ok());
        assert!(StandingSpec::new(3)
            .algorithm(Algorithm::Naive)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3)
            .fallback_fraction(f64::NAN)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3)
            .fallback_fraction(1.5)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3).subspace(vec![]).validate(4).is_err());
        assert!(StandingSpec::new(3)
            .subspace(vec![1, 1])
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3).subspace(vec![4]).validate(4).is_err());
        assert!(StandingSpec::new(3)
            .subspace(vec![0, 2])
            .validate(4)
            .is_ok());
        assert!(StandingSpec::new(3)
            .subspace(vec![0])
            .constrain(1, 0.0, 1.0)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3)
            .constrain(4, 0.0, 1.0)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3)
            .constrain(1, 2.0, 1.0)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3)
            .constrain(1, f64::NAN, 1.0)
            .validate(4)
            .is_err());
        assert!(StandingSpec::new(3)
            .constrain(1, 0.0, 1.0)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn scope_masks() {
        assert_eq!(StandingSpec::new(1).scope_mask(), u64::MAX);
        assert_eq!(
            StandingSpec::new(1).subspace(vec![0, 2]).scope_mask(),
            0b101
        );
        assert_eq!(
            StandingSpec::new(1).constrain(1, 0.0, 1.0).scope_mask(),
            u64::MAX
        );
    }
}
