//! BIG — the Bitmap Index Guided algorithm (§4.3, Algorithms 3–4).
//!
//! BIG keeps UBB's descending-`MaxScore` traversal and early termination
//! (Heuristic 1) but replaces pairwise scoring with bit-parallel set
//! algebra on the range-encoded [`BitmapIndex`]:
//!
//! * `Q = ∩[Qᵢ] − {o}` gives `MaxBitScore(o) = |Q|`, an upper bound that is
//!   *tighter* than `MaxScore` (Lemma 3) and prunes via **Heuristic 2**;
//! * `P = ∩[Pᵢ]` splits off `G(o) = P − F(o)`, the objects strictly worse
//!   than `o` wherever comparable (all dominated);
//! * the residue `Q − P` — objects tying `o` in at least one common
//!   dimension — is resolved exactly: a member ties `o` on *every* common
//!   dimension iff it is **not** dominated (`nonD(o)`);
//! * `score(o) = |G(o)| + |L(o)| = |P − F| + |Q − P − nonD|`.
//!
//! The scoring path is **allocation-free** after context build: Heuristic 2
//! is a fused multi-way AND-popcount that materializes nothing
//! ([`BitmapIndex::max_bit_score_counted`]), surviving objects fill the
//! caller's [`ScratchSpace`] in one fused pass
//! ([`BitmapIndex::q_p_into`]), and the `Q − P` residue is enumerated
//! straight off the scratch words. Ties are resolved by integer
//! `value_index` equality — two observed values are equal iff they map to
//! the same slot of the index's sorted distinct-value table — instead of
//! loading `f64`s.

use crate::preprocess::Preprocessed;
use crate::result::TkdResult;
use crate::scratch::ScratchSpace;
use crate::stats::PruneStats;
use crate::topk::TopK;
use std::borrow::Cow;
use tkd_bitvec::BitVec;
use tkd_index::BitmapIndex;
use tkd_model::{Dataset, ObjectId};

/// Precomputed inputs of Algorithm 4: the bitmap index plus the shared
/// [`Preprocessed`] artifacts (`MaxScore` queue `F`, incomparable sets).
pub struct BigContext<'a> {
    ds: &'a Dataset,
    index: Cow<'a, BitmapIndex>,
    pre: Cow<'a, Preprocessed>,
}

impl<'a> BigContext<'a> {
    /// Run all preprocessing for `ds` (the paper's Table 3 "bitmap index"
    /// plus "MaxScore" columns).
    pub fn build(ds: &'a Dataset) -> Self {
        BigContext {
            ds,
            index: Cow::Owned(BitmapIndex::build(ds)),
            pre: Cow::Owned(Preprocessed::build(ds)),
        }
    }

    /// Build borrowing shared [`Preprocessed`] artifacts, so benchmark
    /// comparisons against other contexts over the same dataset don't
    /// double-pay the queue construction.
    pub fn build_with(ds: &'a Dataset, pre: &'a Preprocessed) -> Self {
        BigContext {
            ds,
            index: Cow::Owned(BitmapIndex::build(ds)),
            pre: Cow::Borrowed(pre),
        }
    }

    /// Borrow **prebuilt** artifacts wholesale — nothing is constructed.
    /// This is how the dynamic update layer serves queries through the
    /// unchanged Algorithm 4 scratch path: its incrementally-maintained
    /// index and preprocessing are lent in per query. The index may carry
    /// tombstones; its live-aware fast paths keep the scoring exact.
    pub fn from_prebuilt(ds: &'a Dataset, index: &'a BitmapIndex, pre: &'a Preprocessed) -> Self {
        assert_eq!(index.n(), ds.len(), "index/dataset size mismatch");
        BigContext {
            ds,
            index: Cow::Borrowed(index),
            pre: Cow::Borrowed(pre),
        }
    }

    /// The underlying bitmap index.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }

    /// The dataset this context was built for.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The shared preprocessing artifacts (owned or borrowed).
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.pre
    }

    /// `F(o)` for an object's mask (empty bit vector if every object is
    /// comparable).
    pub fn incomparable(&self, o: ObjectId) -> &BitVec {
        self.pre.f_of(self.ds, o)
    }

    /// A fresh [`ScratchSpace`] sized for this context's dataset.
    pub fn scratch(&self) -> ScratchSpace {
        ScratchSpace::new(self.ds.len())
    }
}

/// Answer a TKD query with BIG (builds the index and queue internally).
pub fn big(ds: &Dataset, k: usize) -> TkdResult {
    let ctx = BigContext::build(ds);
    big_with(&ctx, k)
}

/// Algorithm 4 over a prebuilt [`BigContext`] (allocates one scratch space
/// for the query; reuse [`big_with_scratch`] to avoid even that).
pub fn big_with(ctx: &BigContext<'_>, k: usize) -> TkdResult {
    let mut scratch = ctx.scratch();
    big_with_scratch(ctx, k, &mut scratch)
}

/// Algorithm 4 over a prebuilt context and caller-owned scratch: the
/// steady-state path, performing zero heap allocations per visited object.
///
/// # Panics
/// Panics if `scratch` was sized for a different object count.
pub fn big_with_scratch(ctx: &BigContext<'_>, k: usize, scratch: &mut ScratchSpace) -> TkdResult {
    if k == 0 {
        // τ can never form with an unfillable candidate set; skip the
        // full-queue scoring pass (uniform k-edge behavior).
        return TkdResult::new(
            Vec::new(),
            PruneStats {
                h1_pruned: ctx.pre.queue().len(),
                ..Default::default()
            },
        );
    }
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    let queue = ctx.pre.queue();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        // Heuristic 1 — early termination on the loose bound.
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        match big_score(ctx, o, &top, scratch) {
            None => stats.h2_pruned += 1,
            Some(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

/// BIG-Score (Algorithm 3). Returns `None` when Heuristic 2 discards `o`
/// (its exact score is then never computed). Crate-visible so the standing
/// query layer can score cache misses through the identical path.
pub(crate) fn big_score(
    ctx: &BigContext<'_>,
    o: ObjectId,
    top: &TopK,
    scratch: &mut ScratchSpace,
) -> Option<usize> {
    let ds = ctx.ds;
    // Heuristic 2 — bitmap pruning on the tight bound, as a fused
    // AND-popcount with block-level early exit: the common case (pruned)
    // reads a fraction of one pass and writes nothing. The prune decision
    // is exactly `MaxBitScore(o) ≤ τ` (see `max_bit_score_above`).
    // Survivors re-intersect in `q_p_into` below — redundant, but
    // survivors enter the candidate set by construction, so there are at
    // most ~k of them per τ value and the pruned majority stays write-free.
    match top.tau() {
        Some(tau) => {
            ctx.index.max_bit_score_above(o, tau)?;
        }
        None => {
            // Candidate set not full yet: nothing can be pruned.
        }
    }
    let ScratchSpace { q, p, .. } = scratch;
    ctx.index.q_p_into(o, q, p);
    let f = ctx.incomparable(o);
    // G(o) = P − F(o) = |P ∧ ¬F|: strictly-worse-or-missing everywhere,
    // comparable.
    let g = p.and_not_count(f);
    // Q − P: candidates for nonD(o) — they tie o somewhere. Enumerated
    // fused off the scratch buffers; |Q − P| is counted along the way.
    let o_mask = ds.mask(o);
    let mut non_d = 0usize;
    let mut q_minus_p = 0usize;
    for pid in q.iter_ones_and_not(p) {
        q_minus_p += 1;
        let pid = pid as ObjectId;
        // p ∈ nonD(o) iff p equals o on every commonly observed dimension
        // (tagT = |bp & bo| in the paper's notation). Equality is tested on
        // the integer value indexes: the index maps equal values — and only
        // equal values — to the same slot.
        let common = o_mask.and(ds.mask(pid));
        let all_equal = common
            .iter()
            .all(|d| ctx.index.value_index(o, d) == ctx.index.value_index(pid, d));
        if all_equal {
            non_d += 1;
        }
    }
    Some(g + q_minus_p - non_d)
}

/// The original allocating BIG-Score, kept verbatim as the test oracle for
/// the scratch-based path (`score_parity_with_allocating_oracle`).
#[cfg(test)]
fn big_score_alloc(ctx: &BigContext<'_>, o: ObjectId, top: &TopK) -> Option<usize> {
    let ds = ctx.ds;
    let q = ctx.index.q_vec(o);
    let max_bit_score = q.count_ones();
    if top.prunes(max_bit_score) {
        return None;
    }
    let p = ctx.index.p_vec(o);
    let f = ctx.incomparable(o);
    let g = p.count_ones() - p.and_count(f);
    let qmp = q.and_not(&p);
    let o_mask = ds.mask(o);
    let mut non_d = 0usize;
    for pid in qmp.iter_ones() {
        let pid = pid as ObjectId;
        let common = o_mask.and(ds.mask(pid));
        let all_equal = common
            .iter()
            .all(|d| ds.raw_value(o, d) == ds.raw_value(pid, d));
        if all_equal {
            non_d += 1;
        }
    }
    let l = qmp.count_ones() - non_d;
    Some(g + l)
}

/// Algorithm 4 driven by the allocating oracle scorer (test-only).
#[cfg(test)]
pub(crate) fn big_with_alloc(ctx: &BigContext<'_>, k: usize) -> TkdResult {
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    let queue = ctx.pre.queue();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        match big_score_alloc(ctx, o, &top) {
            None => stats.h2_pruned += 1,
            Some(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

/// `MaxBitScore(o)` of the full (unbinned) index — exposed for analysis and
/// the Fig. 8 reproduction.
pub fn max_bit_scores(ds: &Dataset) -> Vec<usize> {
    let index = BitmapIndex::build(ds);
    ds.ids().map(|o| index.max_bit_score(o)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use proptest::prelude::*;
    use tkd_model::{dominance, fixtures};

    #[test]
    fn example3_worked_c2() {
        // §4.3 Example 3: score(C2) = |G| + |L| = 14 + 2 = 16 with
        // nonD(C2) = {A2, B2, D3}.
        let ds = fixtures::fig3_sample();
        let ctx = BigContext::build(&ds);
        let c2 = ds.id_by_label("C2").unwrap();
        let top = TopK::new(2); // empty: no pruning yet
        let mut scratch = ctx.scratch();
        assert_eq!(big_score(&ctx, c2, &top, &mut scratch), Some(16));
        let p = ctx.index().p_vec(c2);
        assert_eq!(p.count_ones(), 14, "|G(C2)| = |P| = 14 (F empty)");
        let qmp = ctx.index().q_vec(c2).and_not(&p);
        let labels: Vec<&str> = qmp
            .iter_ones()
            .map(|i| ds.label(i as u32).unwrap())
            .collect();
        assert_eq!(labels, vec!["A2", "B2", "C1", "D2", "D3"]);
    }

    #[test]
    fn example3_full_run() {
        // BIG evaluates C2 and A2, then Heuristic 1 stops at B2.
        let ds = fixtures::fig3_sample();
        let r = big(&ds, 2);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.kth_score(), Some(16));
        assert_eq!(r.stats.scored, 2);
        assert_eq!(r.stats.h1_pruned, 18);
    }

    #[test]
    fn fig8_max_bit_scores() {
        let ds = fixtures::fig3_sample();
        let mbs = max_bit_scores(&ds);
        for (label, expected) in fixtures::fig8_maxbitscores() {
            let o = ds.id_by_label(label).unwrap();
            assert_eq!(mbs[o as usize], expected, "{label}");
        }
    }

    #[test]
    fn lemma3_maxbitscore_at_most_maxscore() {
        let ds = fixtures::fig3_sample();
        let mbs = max_bit_scores(&ds);
        let ms = crate::maxscore::max_scores(&ds);
        for o in ds.ids() {
            assert!(mbs[o as usize] <= ms[o as usize], "object {o}");
            assert!(dominance::score_of(&ds, o) <= mbs[o as usize], "object {o}");
        }
    }

    #[test]
    fn agrees_with_naive_on_fixtures() {
        for ds in [
            fixtures::fig2_points(),
            fixtures::fig3_sample(),
            fixtures::fig1_movies(),
        ] {
            for k in [1, 2, 3, 4, 7, 50] {
                let a = big(&ds, k);
                let b = naive(&ds, k);
                assert_eq!(a.scores(), b.scores(), "k={k}");
            }
        }
    }

    #[test]
    fn score_via_bitmaps_equals_bruteforce_for_all_objects() {
        let ds = fixtures::fig3_sample();
        let ctx = BigContext::build(&ds);
        let top = TopK::new(1); // never full with no offers: no pruning
        let mut scratch = ctx.scratch();
        for o in ds.ids() {
            assert_eq!(
                big_score(&ctx, o, &top, &mut scratch),
                Some(dominance::score_of(&ds, o)),
                "{}",
                ds.label(o).unwrap()
            );
        }
    }

    #[test]
    fn incomparable_sets_respected() {
        // Disjoint masks: F(o) must remove the incomparables from G.
        let ds = tkd_model::Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), None], // 0: mask 01
                vec![None, Some(9.0)], // 1: mask 10 — incomparable to 0
                vec![Some(5.0), None], // 2: mask 01 — dominated by 0
            ],
        )
        .unwrap();
        let ctx = BigContext::build(&ds);
        let top = TopK::new(1);
        let mut scratch = ctx.scratch();
        assert_eq!(big_score(&ctx, 0, &top, &mut scratch), Some(1)); // dominates only 2
        assert_eq!(big_score(&ctx, 1, &top, &mut scratch), Some(0));
    }

    #[test]
    fn shared_preprocessing_gives_identical_results() {
        let ds = fixtures::fig3_sample();
        let pre = Preprocessed::build(&ds);
        let shared = BigContext::build_with(&ds, &pre);
        let owned = BigContext::build(&ds);
        for k in [1, 2, 5] {
            let a = big_with(&shared, k);
            let b = big_with(&owned, k);
            assert_eq!(a.scores(), b.scores(), "k={k}");
            assert_eq!(a.stats, b.stats, "k={k}");
        }
    }

    /// Random incomplete dataset with the given missing probability.
    fn dataset_strategy(missing: f64) -> impl Strategy<Value = tkd_model::Dataset> {
        (1usize..=4).prop_flat_map(move |dims| {
            let row = proptest::collection::vec(
                proptest::option::weighted(1.0 - missing, (0u8..6).prop_map(|v| v as f64)),
                dims,
            )
            .prop_filter("at least one observed", |r| r.iter().any(Option::is_some));
            proptest::collection::vec(row, 1..60).prop_map(move |rows| {
                tkd_model::Dataset::from_rows(dims, &rows).expect("valid rows")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        /// The scratch-based scoring path returns identical scores *and*
        /// identical `PruneStats` to the original allocating path, across
        /// low / medium / high missing rates.
        #[test]
        fn score_parity_with_allocating_oracle(
            ds_low in dataset_strategy(0.1),
            ds_mid in dataset_strategy(0.3),
            ds_high in dataset_strategy(0.6),
            k in 1usize..8,
        ) {
            for ds in [&ds_low, &ds_mid, &ds_high] {
                let ctx = BigContext::build(ds);
                let new = big_with(&ctx, k);
                let oracle = big_with_alloc(&ctx, k);
                prop_assert_eq!(new.scores(), oracle.scores());
                prop_assert_eq!(new.entries(), oracle.entries());
                prop_assert_eq!(new.stats, oracle.stats);
            }
        }
    }
}
