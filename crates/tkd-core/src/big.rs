//! BIG — the Bitmap Index Guided algorithm (§4.3, Algorithms 3–4).
//!
//! BIG keeps UBB's descending-`MaxScore` traversal and early termination
//! (Heuristic 1) but replaces pairwise scoring with bit-parallel set
//! algebra on the range-encoded [`BitmapIndex`]:
//!
//! * `Q = ∩[Qᵢ] − {o}` gives `MaxBitScore(o) = |Q|`, an upper bound that is
//!   *tighter* than `MaxScore` (Lemma 3) and prunes via **Heuristic 2**;
//! * `P = ∩[Pᵢ]` splits off `G(o) = P − F(o)`, the objects strictly worse
//!   than `o` wherever comparable (all dominated);
//! * the residue `Q − P` — objects tying `o` in at least one common
//!   dimension — is resolved exactly: a member ties `o` on *every* common
//!   dimension iff it is **not** dominated (`nonD(o)`);
//! * `score(o) = |G(o)| + |L(o)| = |P − F| + |Q − P − nonD|`.

use crate::maxscore::maxscore_queue;
use crate::result::TkdResult;
use crate::stats::PruneStats;
use crate::topk::TopK;
use std::collections::HashMap;
use tkd_bitvec::BitVec;
use tkd_index::BitmapIndex;
use tkd_model::{stats, Dataset, ObjectId};

/// Precomputed inputs of Algorithm 4: the bitmap index, the `MaxScore`
/// queue `F` and the per-mask incomparable sets `F(o)`.
pub struct BigContext<'a> {
    ds: &'a Dataset,
    index: BitmapIndex,
    queue: Vec<(ObjectId, usize)>,
    /// Incomparable set per distinct observation mask, as a bit vector.
    f_sets: HashMap<u64, BitVec>,
}

impl<'a> BigContext<'a> {
    /// Run all preprocessing for `ds` (the paper's Table 3 "bitmap index"
    /// plus "MaxScore" columns).
    pub fn build(ds: &'a Dataset) -> Self {
        let index = BitmapIndex::build(ds);
        let queue = maxscore_queue(ds);
        let f_sets = incomparable_bitvecs(ds);
        BigContext {
            ds,
            index,
            queue,
            f_sets,
        }
    }

    /// The underlying bitmap index.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }

    /// `F(o)` for an object's mask (empty bit vector if every object is
    /// comparable).
    fn f_of(&self, o: ObjectId) -> &BitVec {
        &self.f_sets[&self.ds.mask(o).bits()]
    }
}

/// Per-mask incomparable sets as dense bit vectors.
pub(crate) fn incomparable_bitvecs(ds: &Dataset) -> HashMap<u64, BitVec> {
    stats::incomparable_sets(ds)
        .into_iter()
        .map(|(mask, ids)| {
            (
                mask.bits(),
                BitVec::from_indices(ds.len(), ids.into_iter().map(|i| i as usize)),
            )
        })
        .collect()
}

/// Answer a TKD query with BIG (builds the index and queue internally).
pub fn big(ds: &Dataset, k: usize) -> TkdResult {
    let ctx = BigContext::build(ds);
    big_with(&ctx, k)
}

/// Algorithm 4 over a prebuilt [`BigContext`].
pub fn big_with(ctx: &BigContext<'_>, k: usize) -> TkdResult {
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    for (visited, &(o, max_score)) in ctx.queue.iter().enumerate() {
        // Heuristic 1 — early termination on the loose bound.
        if top.prunes(max_score) {
            stats.h1_pruned = ctx.queue.len() - visited;
            break;
        }
        match big_score(ctx, o, &top) {
            None => stats.h2_pruned += 1,
            Some(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

/// BIG-Score (Algorithm 3). Returns `None` when Heuristic 2 discards `o`
/// (its exact score is then never computed).
fn big_score(ctx: &BigContext<'_>, o: ObjectId, top: &TopK) -> Option<usize> {
    let ds = ctx.ds;
    let q = ctx.index.q_vec(o);
    let max_bit_score = q.count_ones();
    // Heuristic 2 — bitmap pruning on the tight bound.
    if top.prunes(max_bit_score) {
        return None;
    }
    let p = ctx.index.p_vec(o);
    let f = ctx.f_of(o);
    // G(o) = P − F(o): strictly-worse-or-missing everywhere, comparable.
    let g = p.count_ones() - p.and_count(f);
    // Q − P: candidates for nonD(o) — they tie o somewhere.
    let qmp = q.and_not(&p);
    let o_mask = ds.mask(o);
    let mut non_d = 0usize;
    for pid in qmp.iter_ones() {
        let pid = pid as ObjectId;
        // p ∈ nonD(o) iff p equals o on every commonly observed dimension
        // (tagT = |bp & bo| in the paper's notation).
        let common = o_mask.and(ds.mask(pid));
        let all_equal = common
            .iter()
            .all(|d| ds.raw_value(o, d) == ds.raw_value(pid, d));
        if all_equal {
            non_d += 1;
        }
    }
    let l = qmp.count_ones() - non_d;
    Some(g + l)
}

/// `MaxBitScore(o)` of the full (unbinned) index — exposed for analysis and
/// the Fig. 8 reproduction.
pub fn max_bit_scores(ds: &Dataset) -> Vec<usize> {
    let index = BitmapIndex::build(ds);
    ds.ids().map(|o| index.max_bit_score(o)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use tkd_model::{dominance, fixtures};

    #[test]
    fn example3_worked_c2() {
        // §4.3 Example 3: score(C2) = |G| + |L| = 14 + 2 = 16 with
        // nonD(C2) = {A2, B2, D3}.
        let ds = fixtures::fig3_sample();
        let ctx = BigContext::build(&ds);
        let c2 = ds.id_by_label("C2").unwrap();
        let top = TopK::new(2); // empty: no pruning yet
        assert_eq!(big_score(&ctx, c2, &top), Some(16));
        let p = ctx.index().p_vec(c2);
        assert_eq!(p.count_ones(), 14, "|G(C2)| = |P| = 14 (F empty)");
        let qmp = ctx.index().q_vec(c2).and_not(&p);
        let labels: Vec<&str> = qmp
            .iter_ones()
            .map(|i| ds.label(i as u32).unwrap())
            .collect();
        assert_eq!(labels, vec!["A2", "B2", "C1", "D2", "D3"]);
    }

    #[test]
    fn example3_full_run() {
        // BIG evaluates C2 and A2, then Heuristic 1 stops at B2.
        let ds = fixtures::fig3_sample();
        let r = big(&ds, 2);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.kth_score(), Some(16));
        assert_eq!(r.stats.scored, 2);
        assert_eq!(r.stats.h1_pruned, 18);
    }

    #[test]
    fn fig8_max_bit_scores() {
        let ds = fixtures::fig3_sample();
        let mbs = max_bit_scores(&ds);
        for (label, expected) in fixtures::fig8_maxbitscores() {
            let o = ds.id_by_label(label).unwrap();
            assert_eq!(mbs[o as usize], expected, "{label}");
        }
    }

    #[test]
    fn lemma3_maxbitscore_at_most_maxscore() {
        let ds = fixtures::fig3_sample();
        let mbs = max_bit_scores(&ds);
        let ms = crate::maxscore::max_scores(&ds);
        for o in ds.ids() {
            assert!(mbs[o as usize] <= ms[o as usize], "object {o}");
            assert!(dominance::score_of(&ds, o) <= mbs[o as usize], "object {o}");
        }
    }

    #[test]
    fn agrees_with_naive_on_fixtures() {
        for ds in [
            fixtures::fig2_points(),
            fixtures::fig3_sample(),
            fixtures::fig1_movies(),
        ] {
            for k in [1, 2, 3, 4, 7, 50] {
                let a = big(&ds, k);
                let b = naive(&ds, k);
                assert_eq!(a.scores(), b.scores(), "k={k}");
            }
        }
    }

    #[test]
    fn score_via_bitmaps_equals_bruteforce_for_all_objects() {
        let ds = fixtures::fig3_sample();
        let ctx = BigContext::build(&ds);
        let top = TopK::new(1); // never full with no offers: no pruning
        for o in ds.ids() {
            assert_eq!(
                big_score(&ctx, o, &top),
                Some(dominance::score_of(&ds, o)),
                "{}",
                ds.label(o).unwrap()
            );
        }
    }

    #[test]
    fn incomparable_sets_respected() {
        // Disjoint masks: F(o) must remove the incomparables from G.
        let ds = tkd_model::Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), None], // 0: mask 01
                vec![None, Some(9.0)], // 1: mask 10 — incomparable to 0
                vec![Some(5.0), None], // 2: mask 01 — dominated by 0
            ],
        )
        .unwrap();
        let ctx = BigContext::build(&ds);
        let top = TopK::new(1);
        assert_eq!(big_score(&ctx, 0, &top), Some(1)); // dominates only 2
        assert_eq!(big_score(&ctx, 1, &top), Some(0));
    }
}
