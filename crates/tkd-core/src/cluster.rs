//! Cross-process building blocks for the sharded cluster: per-shard
//! scoring against **value-based candidates** and the coordinator's
//! replay-merge.
//!
//! # Why per-shard partials reconstruct the exact answer
//!
//! A dominating score is a sum of pairwise comparisons, so for *any*
//! partition of the live rows into shards, `score(o) = Σⱼ partialⱼ(o)`
//! where `partialⱼ(o)` counts the shard-j rows `o` dominates. The
//! [`parallel`](crate::parallel) module exploits this inside one address
//! space by slicing global bit vectors per shard; this module re-derives
//! every per-shard term from **local state only** — the shard's dense
//! live rows, its own indexes, and incomparable sets computed from local
//! masks — so a shard worker in another process needs nothing global to
//! score a candidate shipped as raw dimension values.
//!
//! The division of labor over the wire:
//!
//! * a **[`ShardScorer`]** answers two questions per candidate, phase by
//!   phase: a cheap `|Q|` bound (BIG: suffix-table upper bound; IBIG:
//!   exact fused count) for the coordinator's cross-shard Heuristic-2
//!   decision, and the exact per-shard partial score;
//! * the **coordinator** owns the candidate queue, sums the per-shard
//!   answers, and drives a **[`ClusterReplay`]** in queue order — the
//!   same bounded top-k / τ discipline as the sequential driver, so
//!   entries, scores, and tie order are bit-identical to the in-process
//!   engines, and Heuristic-1 termination fires at the exact sequential
//!   position.
//!
//! Heuristic 2 across shards uses `Σⱼ boundⱼ ≤ τ + 1` (the raw
//! intersections count a member candidate's own bit exactly once, in its
//! home shard), which is conservative: a bound-pruned candidate's true
//! score is `≤ τ`, so the sequential offer would have been a no-op.
//! Heuristic 3 (partial-score budget) is intentionally **not** applied
//! across shards — it would need mid-scan budget exchange per candidate —
//! so only the `h2/h3/scored` counters may differ from a sequential run,
//! never the entries. `tests/cluster_parity.rs` pins that equivalence
//! over real sockets; the tests here pin it in-process.

use crate::result::TkdResult;
use crate::scratch::ScratchSpace;
use crate::stats::PruneStats;
use crate::topk::TopK;
use std::collections::HashMap;
use tkd_bitvec::BitVec;
use tkd_index::{BinnedBitmapIndex, BitmapIndex};
use tkd_model::{Dataset, DimMask, ObjectId};

pub use crate::parallel::Outcome;

/// One candidate as it crosses the wire: its raw per-dimension values
/// plus, when the candidate lives in the receiving shard, its dense row
/// index there (so its own bit can be excluded from its score).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCandidate {
    /// Per-dimension values, `None` = missing. Length must equal the
    /// shard's dimension count.
    pub values: Vec<Option<f64>>,
    /// Dense local row of this candidate if it is a member of the shard.
    pub member: Option<usize>,
}

/// A shard worker's scoring state: dense live rows with both index
/// flavors, scratch for allocation-free scoring, and a cache of local
/// incomparable windows keyed by candidate mask.
///
/// Built from a [`DynamicEngine`](crate::DynamicEngine) worker's
/// [`snapshot`](crate::DynamicEngine::snapshot) (row `i` ↔
/// `live_ids()[i]`), and rebuilt whenever the shard's contents change —
/// the scorer itself is immutable with respect to the data.
pub struct ShardScorer {
    ds: Dataset,
    index: BitmapIndex,
    binned: BinnedBitmapIndex,
    scratch: ScratchSpace,
    /// Local incomparable window per candidate mask: rows whose mask does
    /// not intersect the candidate's. The per-mask cache mirrors
    /// [`Preprocessed`]'s F-set sharing (distinct masks are few).
    f_cache: HashMap<u64, BitVec>,
}

impl ShardScorer {
    /// Build over the shard's dense live rows with the Eq. 8 optimal bin
    /// count (the same choice the auto-binned contexts make).
    pub fn new(ds: Dataset) -> ShardScorer {
        let bins = tkd_index::cost::optimal_bins(ds.len(), tkd_model::stats::missing_rate(&ds));
        Self::with_bins(ds, bins)
    }

    /// Build with an explicit per-dimension bin count.
    pub fn with_bins(ds: Dataset, bins: usize) -> ShardScorer {
        let n = ds.len();
        let index = BitmapIndex::build_range(&ds, 0, n);
        let binned = BinnedBitmapIndex::build(&ds, &vec![bins.max(1); ds.dims()]);
        ShardScorer {
            index,
            binned,
            scratch: ScratchSpace::new(n),
            f_cache: HashMap::new(),
            ds,
        }
    }

    /// Number of rows this scorer covers.
    pub fn len(&self) -> usize {
        self.ds.len()
    }

    /// Is the shard empty?
    pub fn is_empty(&self) -> bool {
        self.ds.len() == 0
    }

    /// The observed-dimension mask of a candidate's values.
    fn mask_of(values: &[Option<f64>]) -> DimMask {
        DimMask::from_indices(
            values
                .iter()
                .enumerate()
                .filter_map(|(d, v)| v.is_some().then_some(d)),
        )
    }

    /// The local incomparable window for a candidate mask: bit `i` set iff
    /// row `i` observes no dimension in common with the candidate.
    fn f_window(&mut self, mask: DimMask) -> &BitVec {
        let ds = &self.ds;
        self.f_cache.entry(mask.bits()).or_insert_with(|| {
            BitVec::from_indices(
                ds.len(),
                (0..ds.len()).filter(|&i| !ds.mask(i as ObjectId).intersects(mask)),
            )
        })
    }

    /// BIG phase 1: the suffix-table upper bound on this shard's `|Q|`
    /// intersection for the candidate (its own bit included when it is a
    /// member — the cross-shard Heuristic-2 limit is `τ + 1`).
    pub fn big_bound(&self, cand: &ShardCandidate) -> usize {
        let sel = self.index.select_for(|d| cand.values[d]);
        self.index.q_selected_upper_bound(&sel)
    }

    /// IBIG phase 1: the exact fused `|Q|` count off the binned columns
    /// (own bit included when member). The coordinator's `MaxBitScore` is
    /// `Σⱼ counts − 1`.
    pub fn ibig_q_count(&mut self, cand: &ShardCandidate) -> usize {
        let dims = self.ds.dims();
        let sel = self.binned.select_for(|d| cand.values[d]);
        self.binned
            .and_selected_into((0..dims).map(|d| sel.q_pick(d)), &mut self.scratch.q);
        self.scratch.q.count_ones()
    }

    /// BIG phase 2: the exact per-shard partial score — the number of
    /// shard rows the candidate dominates. Mirrors one shard term of
    /// [`parallel`](crate::parallel)'s sharded BIG-Score, with the
    /// incomparable window computed locally instead of sliced globally.
    pub fn big_partial(&mut self, cand: &ShardCandidate) -> usize {
        let mask = Self::mask_of(&cand.values);
        let f = self.f_window(mask).clone();
        let ds = &self.ds;
        let sc = &mut self.scratch;
        let sel = self.index.select_for(|d| cand.values[d]);
        self.index.q_into_selected(&sel, cand.member, &mut sc.q);
        self.index.p_into_selected(&sel, &mut sc.p);
        // G contribution: |P ∧ ¬F| against the local incomparable window.
        let g = sc.p.and_not_count(&f);
        let mut q_minus_p = 0usize;
        let mut non_d = 0usize;
        for lpid in sc.q.iter_ones_and_not(&sc.p) {
            q_minus_p += 1;
            let common = mask.and(ds.mask(lpid as ObjectId));
            // Tie iff equal on every commonly observed dimension.
            let all_equal = common.iter().all(|d| {
                let slot = sel.eq_slot(d);
                slot != 0 && slot == self.index.value_slot(lpid, d)
            });
            if all_equal {
                non_d += 1;
            }
        }
        g + q_minus_p - non_d
    }

    /// IBIG phase 2: the exact per-shard partial score off the binned
    /// index — fused `Q`/`P`, then B+-tree probes resolving the binned
    /// residue, exactly one shard term of the sharded IBIG-Score. No
    /// Heuristic-3 early exit (the budget is global; see module docs).
    pub fn ibig_partial(&mut self, cand: &ShardCandidate) -> usize {
        let mask = Self::mask_of(&cand.values);
        let f = self.f_window(mask).clone();
        let ds = &self.ds;
        let dims = ds.dims();
        let sc = &mut self.scratch;
        let sel = self.binned.select_for(|d| cand.values[d]);
        self.binned
            .and_selected_into((0..dims).map(|d| sel.q_pick(d)), &mut sc.q);
        if let Some(member) = cand.member {
            sc.q.clear(member);
        }
        self.binned
            .and_selected_into((0..dims).map(|d| sel.p_pick(d)), &mut sc.p);
        let g = sc.p.and_not_count(&f);
        let mut non_d = 0usize;
        sc.stamps.next_object();
        // (a) Same-bin rows strictly better than the candidate somewhere
        //     cannot be dominated: value-based B+-tree probes.
        for dim in mask.iter() {
            let v = cand.values[dim].expect("masked dimension is observed");
            for lpid in self.binned.ids_below_in_bin(dim, v, true) {
                let lpid = lpid as usize;
                if sc.q.get(lpid) && !sc.p.get(lpid) && sc.stamps.mark_nond(lpid) {
                    non_d += 1;
                }
            }
        }
        // (b) tagT accumulation: same-value probes per dimension.
        for dim in mask.iter() {
            let v = cand.values[dim].expect("masked dimension is observed");
            for lpid in self.binned.ids_equal(dim, v) {
                let lpid = lpid as usize;
                if Some(lpid) != cand.member && sc.q.get(lpid) && !sc.p.get(lpid) {
                    sc.stamps.bump_tag(lpid);
                }
            }
        }
        // Members of Q − P tying the candidate on all common dimensions.
        let mut q_minus_p = 0usize;
        for lpid in sc.q.iter_ones_and_not(&sc.p) {
            q_minus_p += 1;
            if sc.stamps.is_nond(lpid) {
                continue;
            }
            let common = mask.and(ds.mask(lpid as ObjectId)).count();
            if sc.stamps.tag_of(lpid) == common {
                non_d += 1;
            }
        }
        g + q_minus_p - non_d
    }
}

/// The coordinator's replay-merge: the sequential driver's bounded top-k
/// and τ, consumed in queue order from per-candidate [`Outcome`]s the
/// coordinator assembled out of shard answers.
///
/// The discipline (identical to the in-process merger):
/// 1. at each queue position, check [`h1_prunes`](Self::h1_prunes)
///    against the candidate's `MaxScore` — if it fires, call
///    [`terminate`](Self::terminate) and stop (Heuristic-1 position is
///    exact, because the replayed τ *is* the sequential τ here);
/// 2. otherwise [`absorb`](Self::absorb) the candidate's outcome;
/// 3. [`finish`](Self::finish) yields the final `TkdResult`.
pub struct ClusterReplay {
    top: TopK,
    stats: PruneStats,
}

impl ClusterReplay {
    /// Start a replay for a top-`k` query.
    pub fn new(k: usize) -> ClusterReplay {
        ClusterReplay {
            top: TopK::new(k),
            stats: PruneStats::default(),
        }
    }

    /// The current k-th score lower bound (`None` until the candidate set
    /// is full) — broadcast to workers as the tightening τ.
    pub fn tau(&self) -> Option<usize> {
        self.top.tau()
    }

    /// Heuristic 1: would the sequential driver terminate at a candidate
    /// with this `MaxScore`?
    pub fn h1_prunes(&self, max_score: usize) -> bool {
        self.top.prunes(max_score)
    }

    /// Record Heuristic-1 termination with `remaining` unvisited queue
    /// positions (including the one that fired).
    pub fn terminate(&mut self, remaining: usize) {
        self.stats.h1_pruned = remaining;
    }

    /// Replay one candidate's outcome in queue order.
    pub fn absorb(&mut self, id: ObjectId, outcome: Outcome) {
        match outcome {
            Outcome::PrunedBound | Outcome::PrunedBitmap => self.stats.h2_pruned += 1,
            Outcome::PrunedPartial => self.stats.h3_pruned += 1,
            Outcome::Score(s) => {
                self.stats.scored += 1;
                self.top.offer(id, s);
            }
        }
    }

    /// The final result: entries, scores, and tie order exactly as the
    /// sequential driver would produce them.
    pub fn finish(self) -> TkdResult {
        TkdResult::new(self.top.into_entries(), self.stats)
    }
}

/// The degenerate replays the sequential driver short-circuits: `k = 0`
/// or an empty queue answers empty with every position Heuristic-1
/// pruned. Coordinators must take the same early exit.
pub fn empty_replay(queue_len: usize) -> TkdResult {
    TkdResult::new(
        Vec::new(),
        PruneStats {
            h1_pruned: queue_len,
            ..PruneStats::default()
        },
    )
}

/// Slice a dataset's rows `[lo, hi)` into a dense shard dataset — the
/// reference row partition used when seeding a cluster from one dataset
/// (stable ids `lo..hi` map to local rows `0..hi-lo`).
pub fn shard_rows(ds: &Dataset, lo: usize, hi: usize) -> Dataset {
    let ids: Vec<ObjectId> = (lo..hi).map(|i| i as ObjectId).collect();
    ds.select(&ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ShardPlan;
    use crate::preprocess::Preprocessed;
    use crate::query::{Algorithm, TkdQuery};
    use tkd_model::fixtures;

    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn random_dataset(seed: u64, n: usize, dims: usize, missing_pct: u64) -> Dataset {
        let mut s = seed;
        let mut rows = Vec::with_capacity(n);
        while rows.len() < n {
            let row: Vec<Option<f64>> = (0..dims)
                .map(|_| {
                    if mix(&mut s) % 100 < missing_pct {
                        None
                    } else {
                        Some((mix(&mut s) % 6) as f64)
                    }
                })
                .collect();
            if row.iter().any(Option::is_some) {
                rows.push(row);
            }
        }
        Dataset::from_rows(dims, &rows).expect("valid rows")
    }

    fn scorers_for(ds: &Dataset, shards: usize) -> (ShardPlan, Vec<ShardScorer>) {
        let plan = ShardPlan::new(ds.len(), shards);
        let scorers = (0..plan.count())
            .map(|j| ShardScorer::new(shard_rows(ds, plan.lo(j), plan.hi(j))))
            .collect();
        (plan, scorers)
    }

    fn candidate_for(ds: &Dataset, plan: &ShardPlan, o: usize, j: usize) -> ShardCandidate {
        ShardCandidate {
            values: (0..ds.dims()).map(|d| ds.value(o as ObjectId, d)).collect(),
            member: plan.local_of(j, o),
        }
    }

    /// Σ per-shard partials must equal the exact global score for every
    /// object, both scoring flavors, across shard counts and missing
    /// rates.
    #[test]
    fn partials_sum_to_exact_scores() {
        let mut datasets = vec![fixtures::fig3_sample()];
        for missing in [10u64, 30, 60] {
            datasets.push(random_dataset(1000 + missing, 70, 3, missing));
        }
        for ds in &datasets {
            let n = ds.len();
            // k = n surfaces every object's exact score.
            let all = TkdQuery::new(n).algorithm(Algorithm::Big).run(ds);
            let score_of: std::collections::HashMap<u32, usize> =
                all.iter().map(|e| (e.id, e.score)).collect();
            for shards in [1usize, 2, 3] {
                let (plan, mut scorers) = scorers_for(ds, shards);
                for o in 0..n {
                    let want = score_of[&(o as u32)];
                    let mut big = 0usize;
                    let mut ibig = 0usize;
                    for (j, scorer) in scorers.iter_mut().enumerate() {
                        let cand = candidate_for(ds, &plan, o, j);
                        big += scorer.big_partial(&cand);
                        ibig += scorer.ibig_partial(&cand);
                    }
                    assert_eq!(big, want, "BIG o={o} shards={shards}");
                    assert_eq!(ibig, want, "IBIG o={o} shards={shards}");
                }
            }
        }
    }

    /// The phase-1 answers are sound Heuristic-2 certificates: BIG's
    /// summed bound is an upper bound on `|Q|`; IBIG's summed count makes
    /// `MaxBitScore = Σ − 1 ≥ score`.
    #[test]
    fn phase1_bounds_are_sound() {
        let ds = random_dataset(77, 60, 3, 30);
        let n = ds.len();
        let all = TkdQuery::new(n).algorithm(Algorithm::Big).run(&ds);
        let score_of: std::collections::HashMap<u32, usize> =
            all.iter().map(|e| (e.id, e.score)).collect();
        for shards in [1usize, 2, 3] {
            let (plan, mut scorers) = scorers_for(&ds, shards);
            for o in 0..n {
                let mut big_ub = 0usize;
                let mut ibig_q = 0usize;
                for (j, scorer) in scorers.iter_mut().enumerate() {
                    let cand = candidate_for(&ds, &plan, o, j);
                    big_ub += scorer.big_bound(&cand);
                    ibig_q += scorer.ibig_q_count(&cand);
                }
                let score = score_of[&(o as u32)];
                // Both phase-1 sums count o's own bit once, so the bound
                // on the score is `sum − 1`.
                assert!(big_ub > score, "BIG bound ≥ score (o={o})");
                assert!(ibig_q > score, "MaxBitScore ≥ score (o={o})");
            }
        }
    }

    /// A reference coordinator drive: the full phase-1 → H2 → phase-2 →
    /// replay pipeline in-process. Entries must be bit-identical to the
    /// sequential engines, and the H1 position exact — the same pin
    /// `tests/cluster_parity.rs` applies over sockets.
    fn drive(ds: &Dataset, shards: usize, k: usize, alg: Algorithm) -> TkdResult {
        let pre = Preprocessed::build(ds);
        let queue = pre.queue();
        if k == 0 || queue.is_empty() {
            return empty_replay(queue.len());
        }
        let (plan, mut scorers) = scorers_for(ds, shards);
        let mut replay = ClusterReplay::new(k);
        for (t, &(o, max_score)) in queue.iter().enumerate() {
            if replay.h1_prunes(max_score) {
                replay.terminate(queue.len() - t);
                break;
            }
            let tau = replay.tau();
            let cands: Vec<ShardCandidate> = (0..plan.count())
                .map(|j| candidate_for(ds, &plan, o as usize, j))
                .collect();
            let outcome = match alg {
                Algorithm::Big => {
                    let bound: usize = scorers
                        .iter()
                        .zip(&cands)
                        .map(|(s, c)| s.big_bound(c))
                        .sum();
                    if matches!(tau, Some(t) if bound <= t + 1) {
                        Outcome::PrunedBitmap
                    } else {
                        Outcome::Score(
                            scorers
                                .iter_mut()
                                .zip(&cands)
                                .map(|(s, c)| s.big_partial(c))
                                .sum(),
                        )
                    }
                }
                _ => {
                    let total_q: usize = scorers
                        .iter_mut()
                        .zip(&cands)
                        .map(|(s, c)| s.ibig_q_count(c))
                        .sum();
                    if matches!(tau, Some(t) if total_q - 1 <= t) {
                        Outcome::PrunedBitmap
                    } else {
                        Outcome::Score(
                            scorers
                                .iter_mut()
                                .zip(&cands)
                                .map(|(s, c)| s.ibig_partial(c))
                                .sum(),
                        )
                    }
                }
            };
            replay.absorb(o, outcome);
        }
        replay.finish()
    }

    #[test]
    fn reference_drive_matches_sequential_engines() {
        let mut datasets = vec![fixtures::fig3_sample()];
        for missing in [10u64, 30, 60] {
            datasets.push(random_dataset(4000 + missing, 60, 3, missing));
        }
        for ds in &datasets {
            let n = ds.len();
            for alg in [Algorithm::Big, Algorithm::Ibig] {
                for shards in [1usize, 2, 3] {
                    for k in [0usize, 1, 2, n - 1, n, n + 3] {
                        let got = drive(ds, shards, k, alg);
                        let want = TkdQuery::new(k).algorithm(alg).run(ds);
                        assert_eq!(
                            got.entries(),
                            want.entries(),
                            "{alg:?} shards={shards} k={k}"
                        );
                        assert_eq!(
                            got.stats.h1_pruned, want.stats.h1_pruned,
                            "H1 position is exact ({alg:?} shards={shards} k={k})"
                        );
                    }
                }
            }
        }
    }

    /// Empty shards (every row deleted from one range) score as zero
    /// everywhere and never disturb the sum.
    #[test]
    fn empty_shard_is_inert() {
        let ds = fixtures::fig3_sample();
        let empty = Dataset::from_rows(ds.dims(), &[]).expect("empty dataset");
        let mut scorer = ShardScorer::new(empty);
        let cand = ShardCandidate {
            values: (0..ds.dims()).map(|d| ds.value(0, d)).collect(),
            member: None,
        };
        assert_eq!(scorer.big_bound(&cand), 0);
        assert_eq!(scorer.ibig_q_count(&cand), 0);
        assert_eq!(scorer.big_partial(&cand), 0);
        assert_eq!(scorer.ibig_partial(&cand), 0);
    }
}
