//! Query-independent preprocessing shared by the index-guided algorithms.

use crate::maxscore::maxscore_queue;
use std::collections::HashMap;
use tkd_bitvec::BitVec;
use tkd_model::{stats, Dataset, ObjectId};

/// The shared preprocessing artifacts of the paper's Table 3 "MaxScore"
/// column: the descending-`MaxScore` priority queue `F` (Fig. 5) and the
/// per-mask incomparable sets `F(o)` as dense bit vectors.
///
/// [`BigContext`](crate::big::BigContext) and
/// [`IbigContext`](crate::ibig::IbigContext) both need these; building one
/// `Preprocessed` and lending it to several contexts via their `build_with`
/// constructors avoids double-paying the `O(N·lg N)` queue construction
/// when algorithms are compared on the same dataset (as every benchmark
/// does).
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Crate-visible so the dynamic update layer (`crate::dynamic`) can
    /// repair the queue in place instead of rebuilding it per op.
    pub(crate) queue: Vec<(ObjectId, usize)>,
    /// Keyed by observation-mask bits; crate-visible for the same reason
    /// (inserts push a bit into every set, deletes clear one).
    pub(crate) f_sets: HashMap<u64, BitVec>,
}

impl Preprocessed {
    /// Run the shared preprocessing for `ds`.
    pub fn build(ds: &Dataset) -> Self {
        Preprocessed {
            queue: maxscore_queue(ds),
            f_sets: incomparable_bitvecs(ds),
        }
    }

    /// Reassemble the artifacts from persisted parts (snapshot load).
    /// Invariant validation lives with the caller that knows the dataset
    /// — see `DynamicEngine::from_store_parts`.
    pub fn from_parts(queue: Vec<(ObjectId, usize)>, f_sets: HashMap<u64, BitVec>) -> Self {
        Preprocessed { queue, f_sets }
    }

    /// The priority queue `F`: all objects by descending `MaxScore`.
    pub fn queue(&self) -> &[(ObjectId, usize)] {
        &self.queue
    }

    /// The per-mask incomparable sets, keyed by observation-mask bits —
    /// the raw form the snapshot codec persists (sorted by key there, so
    /// the map's iteration order never leaks into the format).
    pub fn f_sets(&self) -> &HashMap<u64, BitVec> {
        &self.f_sets
    }

    /// `F(o)`: the incomparable set for `o`'s observation mask.
    ///
    /// # Panics
    /// Panics if `o`'s mask was not seen at build time (i.e. `ds` is not
    /// the dataset this was built from).
    pub fn f_of(&self, ds: &Dataset, o: ObjectId) -> &BitVec {
        &self.f_sets[&ds.mask(o).bits()]
    }
}

/// Per-mask incomparable sets as dense bit vectors.
pub(crate) fn incomparable_bitvecs(ds: &Dataset) -> HashMap<u64, BitVec> {
    stats::incomparable_sets(ds)
        .into_iter()
        .map(|(mask, ids)| {
            (
                mask.bits(),
                BitVec::from_indices(ds.len(), ids.into_iter().map(|i| i as usize)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    #[test]
    fn queue_matches_direct_construction() {
        let ds = fixtures::fig3_sample();
        let pre = Preprocessed::build(&ds);
        assert_eq!(pre.queue(), maxscore_queue(&ds).as_slice());
    }

    #[test]
    fn f_sets_cover_every_mask() {
        let ds = fixtures::fig3_sample();
        let pre = Preprocessed::build(&ds);
        for o in ds.ids() {
            // Must not panic, and an object is never incomparable to itself.
            assert!(!pre.f_of(&ds, o).get(o as usize));
        }
    }
}
