//! Top-k dominating (TKD) query algorithms on incomplete data — the
//! primary contribution of *Miao, Gao, Zheng, Chen, Cui, "Top-k Dominating
//! Queries on Incomplete Data", TKDE 2016* (§4).
//!
//! Five algorithms, in the paper's order:
//!
//! | Algorithm | Idea | Paper |
//! |-----------|------|-------|
//! | [`naive`]  | exhaustive pairwise scores | §4.1 |
//! | [`esb`]    | bucket by mask + local k-skyband candidates (Lemma 1) | Alg. 1 |
//! | [`ubb`](mod@ubb) | `MaxScore` upper bound + early termination (Heuristic 1) | Alg. 2 |
//! | [`big`]    | bitmap index, `MaxBitScore` (Heuristic 2), bitwise scoring | Alg. 3–4 |
//! | [`ibig`]   | binned + compressed index, partial-score pruning (Heuristic 3) | Alg. 5 |
//!
//! All algorithms return a [`TkdResult`] with identical score semantics
//! (Definitions 2–3) and a [`PruneStats`] describing how much work each
//! heuristic saved (the paper's Fig. 18).
//!
//! Beyond the paper, the [`parallel`] module shards BIG/IBIG across
//! worker threads with a shared pruning threshold τ (score- and
//! order-identical to the sequential runs), and [`engine`] wraps it in a
//! multi-user [`ParallelEngine`] with a batched `query_many` API.
//!
//! The ergonomic entry point is [`TkdQuery`]:
//!
//! ```
//! use tkd_core::{Algorithm, TkdQuery};
//! use tkd_model::fixtures;
//!
//! let ds = fixtures::fig3_sample();
//! for alg in Algorithm::ALL {
//!     let result = TkdQuery::new(2).algorithm(alg).run(&ds);
//!     // The paper's T2D answer on the running example: {A2, C2}, score 16.
//!     let mut labels: Vec<_> = result.iter().map(|e| ds.label(e.id).unwrap()).collect();
//!     labels.sort_unstable();
//!     assert_eq!(labels, ["A2", "C2"], "{alg:?}");
//!     assert_eq!(result.kth_score(), Some(16));
//! }
//! ```

#![warn(missing_docs)]

pub mod big;
pub mod cluster;
pub mod complete_baseline;
pub mod dynamic;
pub mod engine;
pub mod esb;
pub mod ibig;
pub mod maxscore;
pub mod mfd;
pub mod naive;
pub mod parallel;
pub mod preprocess;
mod query;
mod result;
pub mod scratch;
pub mod standing;
mod stats;
mod topk;
pub mod variants;

pub use cluster::{ClusterReplay, ShardCandidate, ShardScorer};
pub use dynamic::{
    BatchReport, CompactionPolicy, DynamicEngine, DynamicOptions, DynamicParts, DynamicPartsRef,
    StorageReport, UpdateError, UpdateOp, UpdateStats,
};
pub use engine::{EngineQuery, ParallelEngine};
pub use parallel::{parallel_big, parallel_ibig, ShardPlan, ShardedBigContext, ShardedIbigContext};
pub use preprocess::Preprocessed;
pub use query::{Algorithm, BinChoice, TieBreak, TkdQuery};
pub use result::{ResultEntry, TkdResult};
pub use scratch::ScratchSpace;
pub use standing::{apply_notification, Notification, StandingId, StandingSpec, StandingStats};
pub use stats::PruneStats;
pub use ubb::ubb;
pub mod ubb;
