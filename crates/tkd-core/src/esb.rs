//! ESB — the Extended Skyband Based algorithm (§4.1, Algorithm 1).
//!
//! Objects sharing an observation mask form a bucket in which dominance is
//! transitive; Lemma 1 shows an object outside its bucket's local k-skyband
//! is dominated by ≥ k bucket peers whose scores all exceed its own, so it
//! can never be a TKD answer. ESB therefore:
//!
//! 1. partitions `S` into buckets by bit vector;
//! 2. runs a local k-skyband per bucket; the union is the candidate set;
//! 3. computes exact scores for candidates only (pairwise against all of
//!    `S`) and returns the best `k`.

use crate::result::TkdResult;
use crate::stats::PruneStats;
use crate::topk::TopK;
use tkd_model::{dominance, stats, Dataset, ObjectId};
use tkd_skyline::complete;

/// Answer a TKD query with ESB.
pub fn esb(ds: &Dataset, k: usize) -> TkdResult {
    if k == 0 {
        // Uniform k-edge behavior: empty result, no bucket scans.
        return TkdResult::new(
            Vec::new(),
            PruneStats {
                h1_pruned: ds.len(),
                ..Default::default()
            },
        );
    }
    let candidates = esb_candidates(ds, k);
    let mut top = TopK::new(k);
    for &o in &candidates {
        top.offer(o, dominance::score_of(ds, o));
    }
    TkdResult::new(
        top.into_entries(),
        PruneStats {
            h1_pruned: ds.len() - candidates.len(),
            scored: candidates.len(),
            ..Default::default()
        },
    )
}

/// The candidate set `SC` of Algorithm 1 lines 2–5: the union of the local
/// k-skybands of every bucket (ascending id order).
pub fn esb_candidates(ds: &Dataset, k: usize) -> Vec<ObjectId> {
    let mut candidates = Vec::new();
    for (mask, bucket) in stats::group_by_mask(ds) {
        candidates.extend(complete::k_skyband(ds, mask, &bucket, k));
    }
    candidates.sort_unstable();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use tkd_model::fixtures;

    #[test]
    fn fig4_candidate_set() {
        // Example 1: the T2D query's candidate set has exactly 11 objects.
        let ds = fixtures::fig3_sample();
        let got: Vec<&str> = esb_candidates(&ds, 2)
            .into_iter()
            .map(|o| ds.label(o).unwrap())
            .collect();
        assert_eq!(got, fixtures::fig4_esb_candidates());
    }

    #[test]
    fn fig3_t2d_answer() {
        let ds = fixtures::fig3_sample();
        let r = esb(&ds, 2);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.kth_score(), Some(16));
        // 9 of 20 objects were pruned by the local skybands.
        assert_eq!(r.stats.h1_pruned, 9);
        assert_eq!(r.stats.scored, 11);
    }

    #[test]
    fn lemma1_candidates_cover_naive_answers() {
        // Every true top-k object must survive the candidate pruning.
        let ds = fixtures::fig3_sample();
        for k in 1..=5 {
            let candidates = esb_candidates(&ds, k);
            for e in naive(&ds, k).iter() {
                assert!(
                    candidates.contains(&e.id),
                    "k={k}: answer {} missing from ESB candidates",
                    ds.label(e.id).unwrap()
                );
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_fixtures() {
        for ds in [fixtures::fig2_points(), fixtures::fig3_sample()] {
            for k in [1, 2, 3, 5, 100] {
                let a = esb(&ds, k);
                let b = naive(&ds, k);
                assert_eq!(a.scores(), b.scores(), "k={k}");
            }
        }
    }

    // k-edge behavior (k = 0, k ≥ n, empty dataset) is covered uniformly
    // for all algorithms by `tests/edge_matrix.rs`.
}
