//! MFD — the *missing flexible dominance* weighted scoring of §3, the
//! paper's proposed generalization (and stated future work), implemented
//! here as an extension.
//!
//! For `o ≻ o'`, MFD assigns the dominance a weight
//! `W(o, o') = Σ_{i∈D1} wᵢ + λ · Σ_{j∈D2} wⱼ`, where `D1` holds the
//! dimensions observed by both objects, `D2` the dimensions observed by
//! exactly one, and dimensions missing on both sides are ignored. The MFD
//! score of `o` is `Σ_{o' : o ≻ o'} W(o, o')`: a dominance supported by
//! more (or more important) evidence counts for more, which is "flexible,
//! reasonable, and fair" for objects with very different numbers of
//! observed attributes.

use crate::result::TkdResult;
use crate::stats::PruneStats;
use tkd_model::{dominance, Dataset, ObjectId};

/// Weighting configuration for MFD scoring.
#[derive(Clone, Debug)]
pub struct MfdConfig {
    /// Per-dimension weights `w₁..w_d` (must match the dataset arity).
    pub weights: Vec<f64>,
    /// Discount `λ ∈ (0, 1)` applied to half-observed dimensions.
    pub lambda: f64,
}

impl MfdConfig {
    /// Uniform weights `1/d` with the given `λ`.
    pub fn uniform(dims: usize, lambda: f64) -> Self {
        MfdConfig {
            weights: vec![1.0 / dims as f64; dims],
            lambda,
        }
    }

    fn validate(&self, ds: &Dataset) {
        assert_eq!(self.weights.len(), ds.dims(), "one weight per dimension");
        assert!(
            self.lambda > 0.0 && self.lambda < 1.0,
            "lambda must lie strictly between 0 and 1 (paper §3)"
        );
    }
}

/// The MFD weight `W(o, o')` (defined whether or not `o ≻ o'`; callers
/// normally gate on dominance).
pub fn mfd_weight(ds: &Dataset, cfg: &MfdConfig, o: ObjectId, o2: ObjectId) -> f64 {
    let mo = ds.mask(o);
    let mo2 = ds.mask(o2);
    let both = mo.and(mo2);
    let either = mo.or(mo2);
    let mut w = 0.0;
    for d in either.iter() {
        if both.observed(d) {
            w += cfg.weights[d];
        } else {
            w += cfg.lambda * cfg.weights[d];
        }
    }
    w
}

/// The MFD score: `Σ_{o' dominated by o} W(o, o')`.
pub fn mfd_score(ds: &Dataset, cfg: &MfdConfig, o: ObjectId) -> f64 {
    ds.ids()
        .filter(|&p| p != o && dominance::dominates(ds, o, p))
        .map(|p| mfd_weight(ds, cfg, o, p))
        .sum()
}

/// One MFD answer entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MfdEntry {
    /// The object.
    pub id: ObjectId,
    /// Its accumulated MFD score.
    pub score: f64,
}

/// Top-k dominating query under the MFD operator (exhaustive evaluation;
/// the weighted score admits the same pruning ideas, which the paper leaves
/// to future work).
pub fn mfd_top_k(ds: &Dataset, k: usize, cfg: &MfdConfig) -> Vec<MfdEntry> {
    cfg.validate(ds);
    let mut entries: Vec<MfdEntry> = ds
        .ids()
        .map(|o| MfdEntry {
            id: o,
            score: mfd_score(ds, cfg, o),
        })
        .collect();
    entries.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    entries.truncate(k);
    entries
}

/// Convert an MFD answer into a [`TkdResult`]-shaped report for display
/// (scores truncated to integers are meaningless here, so this keeps the
/// ordering only and stores ranks as scores).
pub fn mfd_as_ranks(entries: &[MfdEntry]) -> TkdResult {
    let ranked = entries
        .iter()
        .enumerate()
        .map(|(i, e)| crate::ResultEntry {
            id: e.id,
            score: entries.len() - i,
        })
        .collect();
    TkdResult::new(ranked, PruneStats::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    #[test]
    fn paper_weight_example() {
        // §3: o1 = (-, 3, 2), o2 = (-, 2, -) with o1 ≻ o2 gets
        // W(o1, o2) = w2 + λ·w3 (dimension 1 missing on both is ignored).
        // Translated to smaller-is-better: o1 = (-, 2, 2), o2 = (-, 3, -).
        let ds = Dataset::from_rows(
            3,
            &[
                vec![None, Some(2.0), Some(2.0)],
                vec![None, Some(3.0), None],
            ],
        )
        .unwrap();
        assert!(tkd_model::dominance::dominates(&ds, 0, 1));
        let cfg = MfdConfig {
            weights: vec![0.5, 0.3, 0.2],
            lambda: 0.5,
        };
        let w = mfd_weight(&ds, &cfg, 0, 1);
        assert!((w - (0.3 + 0.5 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn uniform_config() {
        let cfg = MfdConfig::uniform(4, 0.5);
        assert_eq!(cfg.weights, vec![0.25; 4]);
    }

    #[test]
    fn mfd_ranks_fig3() {
        let ds = fixtures::fig3_sample();
        let cfg = MfdConfig::uniform(ds.dims(), 0.5);
        let top = mfd_top_k(&ds, 3, &cfg);
        assert_eq!(top.len(), 3);
        // Scores descend.
        assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
        // Every score is positive for objects that dominate something.
        for e in &top {
            assert!(e.score > 0.0);
        }
        // The unweighted T2D winners A2/C2 remain strong under uniform
        // weights: both must appear in the MFD top-3.
        let labels: Vec<&str> = top.iter().map(|e| ds.label(e.id).unwrap()).collect();
        assert!(labels.contains(&"A2"));
        assert!(labels.contains(&"C2"));
    }

    #[test]
    fn weights_change_the_ranking() {
        // Two objects each dominating one other object, but over different
        // dimensions; skewing the weights flips the winner.
        let ds = Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), None], // 0 dominates 2 via dim 0
                vec![None, Some(1.0)], // 1 dominates 3 via dim 1
                vec![Some(5.0), None],
                vec![None, Some(5.0)],
            ],
        )
        .unwrap();
        let favor0 = MfdConfig {
            weights: vec![0.9, 0.1],
            lambda: 0.5,
        };
        let favor1 = MfdConfig {
            weights: vec![0.1, 0.9],
            lambda: 0.5,
        };
        assert_eq!(mfd_top_k(&ds, 1, &favor0)[0].id, 0);
        assert_eq!(mfd_top_k(&ds, 1, &favor1)[0].id, 1);
    }

    #[test]
    fn lambda_discounts_half_observed_dimensions() {
        let ds =
            Dataset::from_rows(2, &[vec![Some(1.0), Some(1.0)], vec![Some(2.0), None]]).unwrap();
        let cfg_lo = MfdConfig {
            weights: vec![0.5, 0.5],
            lambda: 0.1,
        };
        let cfg_hi = MfdConfig {
            weights: vec![0.5, 0.5],
            lambda: 0.9,
        };
        assert!(mfd_score(&ds, &cfg_lo, 0) < mfd_score(&ds, &cfg_hi, 0));
    }

    #[test]
    #[should_panic(expected = "lambda must lie strictly between")]
    fn rejects_bad_lambda() {
        let ds = fixtures::fig2_points();
        let cfg = MfdConfig {
            weights: vec![0.5, 0.5],
            lambda: 1.0,
        };
        let _ = mfd_top_k(&ds, 1, &cfg);
    }

    #[test]
    fn rank_report_shape() {
        let ds = fixtures::fig3_sample();
        let cfg = MfdConfig::uniform(ds.dims(), 0.5);
        let top = mfd_top_k(&ds, 4, &cfg);
        let report = mfd_as_ranks(&top);
        assert_eq!(report.len(), 4);
        assert_eq!(report.scores(), vec![4, 3, 2, 1]);
    }

    use tkd_model::Dataset;
}
