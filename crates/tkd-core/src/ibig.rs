//! IBIG — the Improved BIG algorithm (§4.4–4.5, Algorithm 5).
//!
//! IBIG trades query time for index space: columns come from the **binned**
//! bitmap index (one bit per value range, Eq. 3–4) and are stored
//! **compressed** (CONCISE by default, WAH optional). Binning coarsens
//! `[Qᵢ]`/`[Pᵢ]`, so `Q − P` now holds *same-bin* objects whose values may
//! even be better than `o`'s; those are resolved through the per-dimension
//! B+-tree probes of §4.5 and counted into `nonD(o)`. While `nonD` grows,
//! **Heuristic 3** (partial score pruning) abandons objects early:
//! `score(o) = |Q| − |F(o)| − |nonD(o)|` can only shrink as `nonD` grows, so
//! once `|nonD| > |Q| − |F| − τ` the object is out.

use crate::big::incomparable_bitvecs;
use crate::maxscore::maxscore_queue;
use crate::result::TkdResult;
use crate::stats::PruneStats;
use crate::topk::TopK;
use std::collections::HashMap;
use tkd_bitvec::{BitVec, CompressedBitmap, Concise};
use tkd_index::{cost, BinnedBitmapIndex, CompressedColumns};
use tkd_model::{stats, Dataset, ObjectId};

/// Precomputed inputs of Algorithm 5: binned index, compressed columns,
/// `MaxScore` queue and incomparable sets.
pub struct IbigContext<'a, C: CompressedBitmap = Concise> {
    ds: &'a Dataset,
    index: BinnedBitmapIndex,
    columns: CompressedColumns<C>,
    queue: Vec<(ObjectId, usize)>,
    f_sets: HashMap<u64, BitVec>,
}

impl<'a, C: CompressedBitmap> IbigContext<'a, C> {
    /// Build with explicit per-dimension bin counts.
    pub fn build(ds: &'a Dataset, bins_per_dim: &[usize]) -> Self {
        let index = BinnedBitmapIndex::build(ds, bins_per_dim);
        let columns = CompressedColumns::from_binned(&index);
        let queue = maxscore_queue(ds);
        let f_sets = incomparable_bitvecs(ds);
        IbigContext {
            ds,
            index,
            columns,
            queue,
            f_sets,
        }
    }

    /// Build with the Eq. 8 optimal bin count on every dimension.
    pub fn build_auto(ds: &'a Dataset) -> Self {
        let x = cost::optimal_bins(ds.len(), stats::missing_rate(ds));
        Self::build(ds, &vec![x; ds.dims()])
    }

    /// The binned index.
    pub fn index(&self) -> &BinnedBitmapIndex {
        &self.index
    }

    /// The compressed column store.
    pub fn columns(&self) -> &CompressedColumns<C> {
        &self.columns
    }

    fn f_of(&self, o: ObjectId) -> &BitVec {
        &self.f_sets[&self.ds.mask(o).bits()]
    }

    /// Column picks for `[Qᵢ]` (same-or-higher bin / missing slot).
    fn q_picks(&self, o: ObjectId) -> Vec<(usize, usize)> {
        (0..self.ds.dims())
            .map(|d| {
                let c = self
                    .index
                    .bin_of(o, d)
                    .map(|b| (b - 1) as usize)
                    .unwrap_or(0);
                (d, c)
            })
            .collect()
    }

    /// Column picks for `[Pᵢ]` (strictly higher bin / missing slot).
    fn p_picks(&self, o: ObjectId) -> Vec<(usize, usize)> {
        (0..self.ds.dims())
            .map(|d| {
                let c = self.index.bin_of(o, d).map(|b| b as usize).unwrap_or(0);
                (d, c)
            })
            .collect()
    }
}

/// Per-query scratch space (epoch-stamped to avoid O(N) clearing per
/// object).
struct Scratch {
    epoch: u32,
    /// nonD membership stamp.
    nond_stamp: Vec<u32>,
    /// Equality counter (the paper's tagT) and its stamp.
    tag: Vec<u32>,
    tag_stamp: Vec<u32>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            epoch: 0,
            nond_stamp: vec![0; n],
            tag: vec![0; n],
            tag_stamp: vec![0; n],
        }
    }

    fn next_object(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn mark_nond(&mut self, id: usize) -> bool {
        if self.nond_stamp[id] == self.epoch {
            false
        } else {
            self.nond_stamp[id] = self.epoch;
            true
        }
    }

    #[inline]
    fn is_nond(&self, id: usize) -> bool {
        self.nond_stamp[id] == self.epoch
    }

    #[inline]
    fn bump_tag(&mut self, id: usize) {
        if self.tag_stamp[id] != self.epoch {
            self.tag_stamp[id] = self.epoch;
            self.tag[id] = 0;
        }
        self.tag[id] += 1;
    }

    #[inline]
    fn tag_of(&self, id: usize) -> u32 {
        if self.tag_stamp[id] == self.epoch {
            self.tag[id]
        } else {
            0
        }
    }
}

/// Answer a TKD query with IBIG using the Eq. 8 automatic bin count and
/// CONCISE compression (the paper's configuration).
pub fn ibig(ds: &Dataset, k: usize) -> TkdResult {
    let ctx: IbigContext<'_, Concise> = IbigContext::build_auto(ds);
    ibig_with(&ctx, k)
}

/// Answer a TKD query with IBIG and explicit bin counts.
pub fn ibig_with_bins(ds: &Dataset, k: usize, bins_per_dim: &[usize]) -> TkdResult {
    let ctx: IbigContext<'_, Concise> = IbigContext::build(ds, bins_per_dim);
    ibig_with(&ctx, k)
}

/// Algorithm 5's driver over a prebuilt context.
pub fn ibig_with<C: CompressedBitmap>(ctx: &IbigContext<'_, C>, k: usize) -> TkdResult {
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    let mut scratch = Scratch::new(ctx.ds.len());
    for (visited, &(o, max_score)) in ctx.queue.iter().enumerate() {
        // Heuristic 1 — early termination on MaxScore.
        if top.prunes(max_score) {
            stats.h1_pruned = ctx.queue.len() - visited;
            break;
        }
        scratch.next_object();
        match ibig_score(ctx, o, &top, &mut scratch) {
            ScoreOutcome::PrunedByBitmap => stats.h2_pruned += 1,
            ScoreOutcome::PrunedByPartialScore => stats.h3_pruned += 1,
            ScoreOutcome::Score(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

enum ScoreOutcome {
    PrunedByBitmap,
    PrunedByPartialScore,
    Score(usize),
}

/// IBIG-Score (Algorithm 5).
fn ibig_score<C: CompressedBitmap>(
    ctx: &IbigContext<'_, C>,
    o: ObjectId,
    top: &TopK,
    scratch: &mut Scratch,
) -> ScoreOutcome {
    let ds = ctx.ds;
    // Q on the compressed form; o itself is always a member of ∩[Qi], so
    // MaxBitScore = |∩Qi| − 1 without decompressing.
    let qc = ctx.columns.and_selected(&ctx.q_picks(o));
    let max_bit_score = qc.count_ones() - 1;
    // Heuristic 2 — bitmap pruning (still sound under binning, §4.4).
    if top.prunes(max_bit_score) {
        return ScoreOutcome::PrunedByBitmap;
    }
    let mut q = qc.decompress();
    q.clear(o as usize);
    let p = ctx.columns.and_selected(&ctx.p_picks(o)).decompress();
    let f = ctx.f_of(o);
    let f_count = f.count_ones();
    let g = p.count_ones() - p.and_count(f);
    let qmp = q.and_not(&p);

    // Budget for Heuristic 3: score(o) = |Q| − |F| − |nonD| can never exceed
    // |Q| − |F| − |nonD so far|.
    let h3_budget = |non_d: usize, tau: Option<usize>| -> bool {
        matches!(tau, Some(t) if non_d > max_bit_score.saturating_sub(f_count).saturating_sub(t))
    };

    let mut non_d = 0usize;
    let o_mask = ds.mask(o);
    // (a) Same-bin objects strictly better than o in some dimension cannot
    //     be dominated: B+-tree probe per observed dimension (§4.5).
    for dim in o_mask.iter() {
        for pid in ctx.index.ids_in_bin_below(ds, o, dim) {
            if qmp.get(pid as usize) && scratch.mark_nond(pid as usize) {
                non_d += 1;
            }
        }
        // Heuristic 3 — partial score pruning after every dimension.
        if h3_budget(non_d, top.tau()) {
            return ScoreOutcome::PrunedByPartialScore;
        }
    }
    // (b) tagT accumulation: same-value probes per observed dimension.
    for dim in o_mask.iter() {
        let v = ds.raw_value(o, dim);
        for pid in ctx.index.ids_equal(dim, v) {
            if pid != o && qmp.get(pid as usize) {
                scratch.bump_tag(pid as usize);
            }
        }
    }
    // Members of Q − P equal to o on *all* commonly observed dimensions are
    // not dominated either.
    for pid in qmp.iter_ones() {
        if scratch.is_nond(pid) {
            continue;
        }
        let common = o_mask.and(ds.mask(pid as ObjectId)).count();
        if scratch.tag_of(pid) == common {
            non_d += 1;
            if h3_budget(non_d, top.tau()) {
                return ScoreOutcome::PrunedByPartialScore;
            }
        }
    }
    let l = qmp.count_ones() - non_d;
    ScoreOutcome::Score(g + l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use tkd_bitvec::Wah;
    use tkd_model::fixtures;

    #[test]
    fn fig3_t2d_answer_with_fig9_bins() {
        let ds = fixtures::fig3_sample();
        let r = ibig_with_bins(&ds, 2, &[2, 2, 3, 3]);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.kth_score(), Some(16));
    }

    #[test]
    fn agrees_with_naive_across_bin_counts() {
        let ds = fixtures::fig3_sample();
        for bins in [1usize, 2, 3, 5, 7, 100] {
            for k in [1, 2, 3, 5] {
                let r = ibig_with_bins(&ds, k, &vec![bins; ds.dims()]);
                let b = naive(&ds, k);
                assert_eq!(r.scores(), b.scores(), "bins={bins} k={k}");
            }
        }
    }

    #[test]
    fn auto_bins_agree_with_naive() {
        for ds in [
            fixtures::fig2_points(),
            fixtures::fig3_sample(),
            fixtures::fig1_movies(),
        ] {
            for k in [1, 2, 3, 50] {
                assert_eq!(ibig(&ds, k).scores(), naive(&ds, k).scores(), "k={k}");
            }
        }
    }

    #[test]
    fn wah_codec_gives_identical_answers() {
        let ds = fixtures::fig3_sample();
        let ctx: IbigContext<'_, Wah> = IbigContext::build(&ds, &[2, 2, 3, 3]);
        let r = ibig_with(&ctx, 2);
        assert_eq!(r.scores(), vec![16, 16]);
    }

    #[test]
    fn exact_scores_for_every_object_with_one_bin() {
        // One bin per dimension is the worst case for binning: Q−P is huge
        // and everything funnels through the probes. Scores must still be
        // exact.
        let ds = fixtures::fig3_sample();
        let ctx: IbigContext<'_> = IbigContext::build(&ds, &[1, 1, 1, 1]);
        let mut scratch = Scratch::new(ds.len());
        let top = TopK::new(1);
        for o in ds.ids() {
            scratch.next_object();
            match ibig_score(&ctx, o, &top, &mut scratch) {
                ScoreOutcome::Score(s) => {
                    assert_eq!(
                        s,
                        tkd_model::dominance::score_of(&ds, o),
                        "{}",
                        ds.label(o).unwrap()
                    )
                }
                _ => panic!("no pruning possible with an empty candidate set"),
            }
        }
    }

    #[test]
    fn stats_account_for_everything() {
        let ds = fixtures::fig3_sample();
        for k in [1, 2, 4] {
            let r = ibig_with_bins(&ds, k, &[2, 2, 3, 3]);
            assert_eq!(r.stats.total(), ds.len(), "k={k}");
        }
    }

    /// Deterministic pseudo-random incomplete dataset (splitmix-style hash;
    /// no RNG dependency needed in tests).
    fn synth(seed: u64, n: usize, d: usize, card: u64, missing_pct: u64) -> tkd_model::Dataset {
        let mut h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58476D1CE4E5B9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94D049BB133111EB);
            h ^= h >> 31;
            h
        };
        let mut rows = Vec::with_capacity(n);
        'outer: while rows.len() < n {
            let mut row = Vec::with_capacity(d);
            for _ in 0..d {
                if next() % 100 < missing_pct {
                    row.push(None);
                } else {
                    row.push(Some((next() % card) as f64));
                }
            }
            if row.iter().all(Option::is_none) {
                continue 'outer;
            }
            rows.push(row);
        }
        tkd_model::Dataset::from_rows(d, &rows).unwrap()
    }

    #[test]
    fn random_datasets_agree_with_naive_and_heuristics_fire() {
        // Mini-fuzz: on a family of random incomplete datasets IBIG must
        // always agree with the Naive oracle, and across the family the
        // bitmap (H2) and partial-score (H3) prunings must each fire at
        // least once (Fig. 18 shows both active on every workload family).
        let mut h2_total = 0;
        let mut h3_total = 0;
        for seed in 0..25u64 {
            let ds = synth(seed, 60, 3, 8, 30);
            for (k, bins) in [(2usize, 1usize), (4, 2), (8, 4)] {
                let r = ibig_with_bins(&ds, k, &vec![bins; ds.dims()]);
                assert_eq!(
                    r.scores(),
                    naive(&ds, k).scores(),
                    "seed={seed} k={k} bins={bins}"
                );
                h2_total += r.stats.h2_pruned;
                h3_total += r.stats.h3_pruned;
            }
        }
        assert!(h2_total > 0, "Heuristic 2 never fired across the family");
        assert!(h3_total > 0, "Heuristic 3 never fired across the family");
    }
}
