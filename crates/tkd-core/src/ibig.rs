//! IBIG — the Improved BIG algorithm (§4.4–4.5, Algorithm 5).
//!
//! IBIG trades query time for index space: columns come from the **binned**
//! bitmap index (one bit per value range, Eq. 3–4) and are stored
//! **compressed** (CONCISE by default, WAH optional). Binning coarsens
//! `[Qᵢ]`/`[Pᵢ]`, so `Q − P` now holds *same-bin* objects whose values may
//! even be better than `o`'s; those are resolved through the per-dimension
//! B+-tree probes of §4.5 and counted into `nonD(o)`. While `nonD` grows,
//! **Heuristic 3** (partial score pruning) abandons objects early:
//! `score(o) = |Q| − |F(o)| − |nonD(o)|` can only shrink as `nonD` grows, so
//! once `|nonD| > |Q| − |F| − τ` the object is out.
//!
//! Like BIG, the scoring path is **allocation-free** after context build:
//! the per-object `Q`/`P` intersections decompress straight into the
//! caller's [`ScratchSpace`] (first column written, the rest ANDed in off
//! their run streams — no compressed intermediates), the `nonD`/`tagT`
//! tables are epoch-stamped in the same scratch, and the B+-tree probes
//! return concrete range cursors instead of boxed iterators.

use crate::preprocess::Preprocessed;
use crate::result::TkdResult;
use crate::scratch::ScratchSpace;
use crate::stats::PruneStats;
use crate::topk::TopK;
use std::borrow::Cow;
use tkd_bitvec::{BitVec, CompressedBitmap, Concise};
use tkd_index::{cost, BinnedBitmapIndex, CompressedColumns};
use tkd_model::{stats, Dataset, ObjectId};

/// Where an [`IbigContext`] reads its `[Qᵢ]`/`[Pᵢ]` columns from.
///
/// Static contexts compress the binned columns (the paper's storage
/// layout). The dynamic update layer keeps them **dense** instead — run
/// encodings cannot absorb in-place bit flips, so compression is traded
/// for `O(1)` tombstone/append maintenance — and scoring ANDs the picked
/// dense columns directly (including column 0, which carries the
/// tombstone mask there).
enum ColumnStore<C> {
    /// WAH/CONCISE-compressed copies of every column.
    Compressed(CompressedColumns<C>),
    /// Read straight from the (possibly dynamic) binned index's columns.
    Dense,
}

/// Precomputed inputs of Algorithm 5: binned index, its column store,
/// plus the shared [`Preprocessed`] artifacts.
pub struct IbigContext<'a, C: CompressedBitmap = Concise> {
    ds: &'a Dataset,
    index: Cow<'a, BinnedBitmapIndex>,
    columns: ColumnStore<C>,
    pre: Cow<'a, Preprocessed>,
}

impl<'a, C: CompressedBitmap> IbigContext<'a, C> {
    /// Build with explicit per-dimension bin counts.
    pub fn build(ds: &'a Dataset, bins_per_dim: &[usize]) -> Self {
        let index = BinnedBitmapIndex::build(ds, bins_per_dim);
        let columns = ColumnStore::Compressed(CompressedColumns::from_binned(&index));
        IbigContext {
            ds,
            index: Cow::Owned(index),
            columns,
            pre: Cow::Owned(Preprocessed::build(ds)),
        }
    }

    /// Build borrowing shared [`Preprocessed`] artifacts (see
    /// [`crate::big::BigContext::build_with`]).
    pub fn build_with(ds: &'a Dataset, bins_per_dim: &[usize], pre: &'a Preprocessed) -> Self {
        let index = BinnedBitmapIndex::build(ds, bins_per_dim);
        let columns = ColumnStore::Compressed(CompressedColumns::from_binned(&index));
        IbigContext {
            ds,
            index: Cow::Owned(index),
            columns,
            pre: Cow::Borrowed(pre),
        }
    }

    /// Borrow **prebuilt** artifacts wholesale, scoring off the index's
    /// dense columns — the dynamic update layer's entry into the unchanged
    /// Algorithm 5 scratch path. Dynamic contexts stay uncompressed
    /// because run encodings cannot absorb in-place bit flips; the store
    /// trades the paper's compression for `O(1)` tombstone/append
    /// maintenance.
    pub fn from_prebuilt_dense(
        ds: &'a Dataset,
        index: &'a BinnedBitmapIndex,
        pre: &'a Preprocessed,
    ) -> Self {
        assert_eq!(index.n(), ds.len(), "index/dataset size mismatch");
        IbigContext {
            ds,
            index: Cow::Borrowed(index),
            columns: ColumnStore::Dense,
            pre: Cow::Borrowed(pre),
        }
    }

    /// AND one picked column per dimension into `dst` from whichever store
    /// this context uses.
    fn and_selected_into(
        &self,
        picks: impl IntoIterator<Item = (usize, usize)>,
        dst: &mut tkd_bitvec::BitVec,
    ) {
        match &self.columns {
            ColumnStore::Compressed(cols) => cols.and_selected_into(picks, dst),
            ColumnStore::Dense => self.index.and_selected_into(picks, dst),
        }
    }

    /// Build with the Eq. 8 optimal bin count on every dimension.
    pub fn build_auto(ds: &'a Dataset) -> Self {
        let x = cost::optimal_bins(ds.len(), stats::missing_rate(ds));
        Self::build(ds, &vec![x; ds.dims()])
    }

    /// The binned index.
    pub fn index(&self) -> &BinnedBitmapIndex {
        &self.index
    }

    /// The compressed column store.
    ///
    /// # Panics
    /// Panics on dense contexts ([`IbigContext::from_prebuilt_dense`]),
    /// which keep no compressed copies.
    pub fn columns(&self) -> &CompressedColumns<C> {
        match &self.columns {
            ColumnStore::Compressed(cols) => cols,
            ColumnStore::Dense => panic!("dense IBIG context has no compressed columns"),
        }
    }

    /// The dataset this context was built for.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The shared preprocessing artifacts (owned or borrowed).
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.pre
    }

    /// A fresh [`ScratchSpace`] sized for this context's dataset.
    pub fn scratch(&self) -> ScratchSpace {
        ScratchSpace::new(self.ds.len())
    }

    fn f_of(&self, o: ObjectId) -> &BitVec {
        self.pre.f_of(self.ds, o)
    }

    /// Column pick for `[Qᵢ]` in dimension `d` (same-or-higher bin /
    /// missing slot).
    #[inline]
    fn q_pick(&self, o: ObjectId, d: usize) -> (usize, usize) {
        let c = self
            .index
            .bin_of(o, d)
            .map(|b| (b - 1) as usize)
            .unwrap_or(0);
        (d, c)
    }

    /// Column pick for `[Pᵢ]` in dimension `d` (strictly higher bin /
    /// missing slot).
    #[inline]
    fn p_pick(&self, o: ObjectId, d: usize) -> (usize, usize) {
        let c = self.index.bin_of(o, d).map(|b| b as usize).unwrap_or(0);
        (d, c)
    }
}

/// Answer a TKD query with IBIG using the Eq. 8 automatic bin count and
/// CONCISE compression (the paper's configuration).
pub fn ibig(ds: &Dataset, k: usize) -> TkdResult {
    let ctx: IbigContext<'_, Concise> = IbigContext::build_auto(ds);
    ibig_with(&ctx, k)
}

/// Answer a TKD query with IBIG and explicit bin counts.
pub fn ibig_with_bins(ds: &Dataset, k: usize, bins_per_dim: &[usize]) -> TkdResult {
    let ctx: IbigContext<'_, Concise> = IbigContext::build(ds, bins_per_dim);
    ibig_with(&ctx, k)
}

/// Algorithm 5's driver over a prebuilt context (allocates one scratch
/// space for the query; reuse [`ibig_with_scratch`] to avoid even that).
pub fn ibig_with<C: CompressedBitmap>(ctx: &IbigContext<'_, C>, k: usize) -> TkdResult {
    let mut scratch = ctx.scratch();
    ibig_with_scratch(ctx, k, &mut scratch)
}

/// Algorithm 5 over a prebuilt context and caller-owned scratch: the
/// steady-state path, performing zero heap allocations per visited object.
///
/// # Panics
/// Panics if `scratch` was sized for a different object count.
pub fn ibig_with_scratch<C: CompressedBitmap>(
    ctx: &IbigContext<'_, C>,
    k: usize,
    scratch: &mut ScratchSpace,
) -> TkdResult {
    if k == 0 {
        // τ can never form with an unfillable candidate set; skip the
        // full-queue scoring pass (uniform k-edge behavior).
        return TkdResult::new(
            Vec::new(),
            PruneStats {
                h1_pruned: ctx.pre.queue().len(),
                ..Default::default()
            },
        );
    }
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    let queue = ctx.pre.queue();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        // Heuristic 1 — early termination on MaxScore.
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        match ibig_score(ctx, o, &top, scratch) {
            ScoreOutcome::PrunedByBitmap => stats.h2_pruned += 1,
            ScoreOutcome::PrunedByPartialScore => stats.h3_pruned += 1,
            ScoreOutcome::Score(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

pub(crate) enum ScoreOutcome {
    PrunedByBitmap,
    PrunedByPartialScore,
    Score(usize),
}

/// IBIG-Score (Algorithm 5). Crate-visible so the standing query layer can
/// score cache misses through the identical path.
pub(crate) fn ibig_score<C: CompressedBitmap>(
    ctx: &IbigContext<'_, C>,
    o: ObjectId,
    top: &TopK,
    scratch: &mut ScratchSpace,
) -> ScoreOutcome {
    let ds = ctx.ds;
    let dims = ds.dims();
    let ScratchSpace { q, p, stamps } = scratch;
    stamps.next_object();
    // Q decompressed straight into scratch; o itself is always a member of
    // ∩[Qi], so MaxBitScore = |∩Qi| − 1 before clearing its bit.
    ctx.and_selected_into((0..dims).map(|d| ctx.q_pick(o, d)), q);
    let max_bit_score = q.count_ones() - 1;
    // Heuristic 2 — bitmap pruning (still sound under binning, §4.4).
    if top.prunes(max_bit_score) {
        return ScoreOutcome::PrunedByBitmap;
    }
    q.clear(o as usize);
    ctx.and_selected_into((0..dims).map(|d| ctx.p_pick(o, d)), p);
    let f = ctx.f_of(o);
    let f_count = f.count_ones();
    // G(o) = P − F(o) = |P ∧ ¬F|, fused.
    let g = p.and_not_count(f);

    // Budget for Heuristic 3: score(o) = |Q| − |F| − |nonD| can never exceed
    // |Q| − |F| − |nonD so far|.
    let h3_budget = |non_d: usize, tau: Option<usize>| -> bool {
        matches!(tau, Some(t) if non_d > max_bit_score.saturating_sub(f_count).saturating_sub(t))
    };
    // Membership in Q − P, straight off the scratch words.
    let in_qmp = |pid: usize| q.get(pid) && !p.get(pid);

    let mut non_d = 0usize;
    let o_mask = ds.mask(o);
    // (a) Same-bin objects strictly better than o in some dimension cannot
    //     be dominated: B+-tree probe per observed dimension (§4.5).
    for dim in o_mask.iter() {
        for pid in ctx.index.ids_in_bin_below(ds, o, dim) {
            if in_qmp(pid as usize) && stamps.mark_nond(pid as usize) {
                non_d += 1;
            }
        }
        // Heuristic 3 — partial score pruning after every dimension.
        if h3_budget(non_d, top.tau()) {
            return ScoreOutcome::PrunedByPartialScore;
        }
    }
    // (b) tagT accumulation: same-value probes per observed dimension.
    for dim in o_mask.iter() {
        let v = ds.raw_value(o, dim);
        for pid in ctx.index.ids_equal(dim, v) {
            if pid != o && in_qmp(pid as usize) {
                stamps.bump_tag(pid as usize);
            }
        }
    }
    // Members of Q − P equal to o on *all* commonly observed dimensions are
    // not dominated either. |Q − P| is counted during the same fused pass.
    let mut q_minus_p = 0usize;
    for pid in q.iter_ones_and_not(p) {
        q_minus_p += 1;
        if stamps.is_nond(pid) {
            continue;
        }
        let common = o_mask.and(ds.mask(pid as ObjectId)).count();
        if stamps.tag_of(pid) == common {
            non_d += 1;
            if h3_budget(non_d, top.tau()) {
                return ScoreOutcome::PrunedByPartialScore;
            }
        }
    }
    ScoreOutcome::Score(g + q_minus_p - non_d)
}

/// The original allocating IBIG-Score, kept as the test oracle for the
/// scratch-based path. Uses hash-based `nonD`/`tagT` tables so it shares
/// no machinery with the path under test.
#[cfg(test)]
fn ibig_score_alloc<C: CompressedBitmap>(
    ctx: &IbigContext<'_, C>,
    o: ObjectId,
    top: &TopK,
) -> ScoreOutcome {
    use std::collections::{HashMap, HashSet};
    let ds = ctx.ds;
    let dims = ds.dims();
    // Oracle-side fill: allocate fresh buffers per call (hash-based
    // tables below keep the oracle machinery-independent of the scratch
    // path; the column store is exercised through the same picks).
    let q_picks: Vec<(usize, usize)> = (0..dims).map(|d| ctx.q_pick(o, d)).collect();
    let mut q = tkd_bitvec::BitVec::zeros(ds.len());
    ctx.and_selected_into(q_picks.iter().copied(), &mut q);
    let max_bit_score = q.count_ones() - 1;
    if top.prunes(max_bit_score) {
        return ScoreOutcome::PrunedByBitmap;
    }
    q.clear(o as usize);
    let p_picks: Vec<(usize, usize)> = (0..dims).map(|d| ctx.p_pick(o, d)).collect();
    let mut p = tkd_bitvec::BitVec::zeros(ds.len());
    ctx.and_selected_into(p_picks.iter().copied(), &mut p);
    let f = ctx.f_of(o);
    let f_count = f.count_ones();
    let g = p.count_ones() - p.and_count(f);
    let qmp = q.and_not(&p);

    let h3_budget = |non_d: usize, tau: Option<usize>| -> bool {
        matches!(tau, Some(t) if non_d > max_bit_score.saturating_sub(f_count).saturating_sub(t))
    };

    let mut non_d_set: HashSet<usize> = HashSet::new();
    let o_mask = ds.mask(o);
    for dim in o_mask.iter() {
        for pid in ctx.index.ids_in_bin_below(ds, o, dim) {
            if qmp.get(pid as usize) {
                non_d_set.insert(pid as usize);
            }
        }
        if h3_budget(non_d_set.len(), top.tau()) {
            return ScoreOutcome::PrunedByPartialScore;
        }
    }
    let mut tags: HashMap<usize, u32> = HashMap::new();
    for dim in o_mask.iter() {
        let v = ds.raw_value(o, dim);
        for pid in ctx.index.ids_equal(dim, v) {
            if pid != o && qmp.get(pid as usize) {
                *tags.entry(pid as usize).or_insert(0) += 1;
            }
        }
    }
    let mut non_d = non_d_set.len();
    for pid in qmp.iter_ones() {
        if non_d_set.contains(&pid) {
            continue;
        }
        let common = o_mask.and(ds.mask(pid as ObjectId)).count();
        if tags.get(&pid).copied().unwrap_or(0) == common {
            non_d += 1;
            if h3_budget(non_d, top.tau()) {
                return ScoreOutcome::PrunedByPartialScore;
            }
        }
    }
    let l = qmp.count_ones() - non_d;
    ScoreOutcome::Score(g + l)
}

/// Algorithm 5 driven by the allocating oracle scorer (test-only).
#[cfg(test)]
pub(crate) fn ibig_with_alloc<C: CompressedBitmap>(
    ctx: &IbigContext<'_, C>,
    k: usize,
) -> TkdResult {
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    let queue = ctx.pre.queue();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        match ibig_score_alloc(ctx, o, &top) {
            ScoreOutcome::PrunedByBitmap => stats.h2_pruned += 1,
            ScoreOutcome::PrunedByPartialScore => stats.h3_pruned += 1,
            ScoreOutcome::Score(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use proptest::prelude::*;
    use tkd_bitvec::Wah;
    use tkd_model::fixtures;

    #[test]
    fn fig3_t2d_answer_with_fig9_bins() {
        let ds = fixtures::fig3_sample();
        let r = ibig_with_bins(&ds, 2, &[2, 2, 3, 3]);
        let mut labels: Vec<_> = r.iter().map(|e| ds.label(e.id).unwrap()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["A2", "C2"]);
        assert_eq!(r.kth_score(), Some(16));
    }

    #[test]
    fn agrees_with_naive_across_bin_counts() {
        let ds = fixtures::fig3_sample();
        for bins in [1usize, 2, 3, 5, 7, 100] {
            for k in [1, 2, 3, 5] {
                let r = ibig_with_bins(&ds, k, &vec![bins; ds.dims()]);
                let b = naive(&ds, k);
                assert_eq!(r.scores(), b.scores(), "bins={bins} k={k}");
            }
        }
    }

    #[test]
    fn auto_bins_agree_with_naive() {
        for ds in [
            fixtures::fig2_points(),
            fixtures::fig3_sample(),
            fixtures::fig1_movies(),
        ] {
            for k in [1, 2, 3, 50] {
                assert_eq!(ibig(&ds, k).scores(), naive(&ds, k).scores(), "k={k}");
            }
        }
    }

    #[test]
    fn wah_codec_gives_identical_answers() {
        let ds = fixtures::fig3_sample();
        let ctx: IbigContext<'_, Wah> = IbigContext::build(&ds, &[2, 2, 3, 3]);
        let r = ibig_with(&ctx, 2);
        assert_eq!(r.scores(), vec![16, 16]);
    }

    #[test]
    fn shared_preprocessing_gives_identical_results() {
        let ds = fixtures::fig3_sample();
        let pre = Preprocessed::build(&ds);
        let shared: IbigContext<'_> = IbigContext::build_with(&ds, &[2, 2, 3, 3], &pre);
        let owned: IbigContext<'_> = IbigContext::build(&ds, &[2, 2, 3, 3]);
        for k in [1, 2, 5] {
            let a = ibig_with(&shared, k);
            let b = ibig_with(&owned, k);
            assert_eq!(a.scores(), b.scores(), "k={k}");
            assert_eq!(a.stats, b.stats, "k={k}");
        }
    }

    #[test]
    fn exact_scores_for_every_object_with_one_bin() {
        // One bin per dimension is the worst case for binning: Q−P is huge
        // and everything funnels through the probes. Scores must still be
        // exact.
        let ds = fixtures::fig3_sample();
        let ctx: IbigContext<'_> = IbigContext::build(&ds, &[1, 1, 1, 1]);
        let mut scratch = ctx.scratch();
        let top = TopK::new(1);
        for o in ds.ids() {
            match ibig_score(&ctx, o, &top, &mut scratch) {
                ScoreOutcome::Score(s) => {
                    assert_eq!(
                        s,
                        tkd_model::dominance::score_of(&ds, o),
                        "{}",
                        ds.label(o).unwrap()
                    )
                }
                _ => panic!("no pruning possible with an empty candidate set"),
            }
        }
    }

    #[test]
    fn stats_account_for_everything() {
        let ds = fixtures::fig3_sample();
        for k in [1, 2, 4] {
            let r = ibig_with_bins(&ds, k, &[2, 2, 3, 3]);
            assert_eq!(r.stats.total(), ds.len(), "k={k}");
        }
    }

    /// Deterministic pseudo-random incomplete dataset (splitmix-style hash;
    /// no RNG dependency needed in tests).
    fn synth(seed: u64, n: usize, d: usize, card: u64, missing_pct: u64) -> tkd_model::Dataset {
        let mut h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58476D1CE4E5B9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94D049BB133111EB);
            h ^= h >> 31;
            h
        };
        let mut rows = Vec::with_capacity(n);
        'outer: while rows.len() < n {
            let mut row = Vec::with_capacity(d);
            for _ in 0..d {
                if next() % 100 < missing_pct {
                    row.push(None);
                } else {
                    row.push(Some((next() % card) as f64));
                }
            }
            if row.iter().all(Option::is_none) {
                continue 'outer;
            }
            rows.push(row);
        }
        tkd_model::Dataset::from_rows(d, &rows).unwrap()
    }

    #[test]
    fn random_datasets_agree_with_naive_and_heuristics_fire() {
        // Mini-fuzz: on a family of random incomplete datasets IBIG must
        // always agree with the Naive oracle, and across the family the
        // bitmap (H2) and partial-score (H3) prunings must each fire at
        // least once (Fig. 18 shows both active on every workload family).
        let mut h2_total = 0;
        let mut h3_total = 0;
        for seed in 0..25u64 {
            let ds = synth(seed, 60, 3, 8, 30);
            for (k, bins) in [(2usize, 1usize), (4, 2), (8, 4)] {
                let r = ibig_with_bins(&ds, k, &vec![bins; ds.dims()]);
                assert_eq!(
                    r.scores(),
                    naive(&ds, k).scores(),
                    "seed={seed} k={k} bins={bins}"
                );
                h2_total += r.stats.h2_pruned;
                h3_total += r.stats.h3_pruned;
            }
        }
        assert!(h2_total > 0, "Heuristic 2 never fired across the family");
        assert!(h3_total > 0, "Heuristic 3 never fired across the family");
    }

    /// Random incomplete dataset with the given missing probability.
    fn dataset_strategy(missing: f64) -> impl Strategy<Value = tkd_model::Dataset> {
        (1usize..=4).prop_flat_map(move |dims| {
            let row = proptest::collection::vec(
                proptest::option::weighted(1.0 - missing, (0u8..6).prop_map(|v| v as f64)),
                dims,
            )
            .prop_filter("at least one observed", |r| r.iter().any(Option::is_some));
            proptest::collection::vec(row, 1..60).prop_map(move |rows| {
                tkd_model::Dataset::from_rows(dims, &rows).expect("valid rows")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The scratch-based scoring path returns identical scores *and*
        /// identical `PruneStats` to the original allocating path, across
        /// low / medium / high missing rates and bin counts.
        #[test]
        fn score_parity_with_allocating_oracle(
            ds_low in dataset_strategy(0.1),
            ds_mid in dataset_strategy(0.3),
            ds_high in dataset_strategy(0.6),
            k in 1usize..8,
            bins in 1usize..6,
        ) {
            for ds in [&ds_low, &ds_mid, &ds_high] {
                let ctx: IbigContext<'_> = IbigContext::build(ds, &vec![bins; ds.dims()]);
                let new = ibig_with(&ctx, k);
                let oracle = ibig_with_alloc(&ctx, k);
                prop_assert_eq!(new.scores(), oracle.scores());
                prop_assert_eq!(new.entries(), oracle.entries());
                prop_assert_eq!(new.stats, oracle.stats);
            }
        }
    }
}
