//! Sharded multi-threaded execution of BIG and IBIG — the repo's first
//! concurrency subsystem.
//!
//! # Design
//!
//! The paper's bitmap machinery is partition-parallel: for any split of
//! the dataset into contiguous shards, the per-shard `Q`/`P` popcounts of
//! a candidate sum to its global counts, so a candidate's exact score can
//! be assembled from independent per-shard scans. This module exploits
//! that in three layers:
//!
//! * **Data layout** — [`ShardPlan`] cuts the object-id space into
//!   word-aligned contiguous ranges. Each shard gets its own
//!   [`BitmapIndex`] / binned index built with `build_range` (stable
//!   global ids: `global = shard base + local bit position`), and global
//!   per-object bit vectors such as the incomparable sets `F(o)` are
//!   viewed per shard through [`tkd_bitvec::BitVec::slice_words`] — no
//!   copying. Candidates are scored against *every* shard, member or not,
//!   via the value-based `select_for` APIs.
//! * **Scheduling** — workers on [`std::thread::scope`] claim chunks of
//!   the shared descending-`MaxScore` queue, score candidates with their
//!   own [`WorkerScratch`] (zero allocations per candidate), and publish
//!   outcomes into per-position atomic slots.
//! * **Bound exchange** — a shared atomic **τ** (the current k-th score
//!   lower bound) tightens Heuristic-2 pruning across shards and workers:
//!   every worker prunes with the freshest published τ, and a replay
//!   merger (below) advances τ exactly as the sequential algorithm would.
//!
//! # Why the result is *identical* to the sequential engines
//!
//! Results are merged by **replaying outcomes in queue order**: a merger
//! (any worker that grabs the merge lock) consumes slot `t` only after
//! slots `0..t`, offering scores to the same bounded top-k candidate set
//! the sequential driver uses and publishing `τ_t` — by induction exactly
//! the sequential
//! τ after prefix `t`. Workers prune with a *published* τ, which is
//! always ≤ the sequential τ at their queue position, so:
//!
//! * a worker-pruned candidate satisfies `score ≤ bound ≤ τ_published ≤
//!   τ_seq(t)` — the sequential offer would have been a no-op;
//! * a worker-scored candidate contributes its exact score, and the
//!   replayed offer behaves identically to the sequential one.
//!
//! Hence the final entry set, scores, and tie order equal the sequential
//! run's, and Heuristic-1 termination fires at the same queue position
//! (`h1_pruned` is exact). Only the `h2/h3/scored` counters may differ —
//! lagging τ lets workers score candidates the sequential run would have
//! pruned. `tests/parallel_parity.rs` and the proptests below pin this
//! equivalence across shard counts, thread counts, missing rates, and
//! `k` edges.

use crate::preprocess::Preprocessed;
use crate::result::TkdResult;
use crate::scratch::ScratchSpace;
use crate::stats::PruneStats;
use crate::topk::TopK;
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use tkd_bitvec::{CompressedBitmap, Concise};
use tkd_index::{BinSelection, BinnedBitmapIndex, BitmapIndex, ColumnSelection, CompressedColumns};
use tkd_model::{Dataset, ObjectId};

/// Queue positions claimed per worker round-trip to the shared cursor.
const CLAIM_CHUNK: usize = 16;

/// A word-aligned partition of the object-id space into contiguous
/// shards. Interior boundaries are multiples of 64, so every shard's view
/// of a global bit vector is a plain word-range slice
/// ([`tkd_bitvec::BitVec::slice_words`]) and per-shard popcounts are
/// exact with no masking.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Shard start offsets in bits; `starts[0] = 0`, `starts[count] = n`.
    starts: Vec<usize>,
}

impl ShardPlan {
    /// Partition `n` objects into (at most) `shards` word-aligned,
    /// balanced, non-empty shards. The effective count is clamped to the
    /// number of 64-bit words, so no shard is empty (an empty dataset
    /// yields one empty shard).
    pub fn new(n: usize, shards: usize) -> Self {
        let words = n.div_ceil(64);
        let count = shards.clamp(1, words.max(1));
        let base = words / count;
        let rem = words % count;
        let mut starts = Vec::with_capacity(count + 1);
        let mut w = 0usize;
        starts.push(0);
        for j in 0..count {
            w += base + usize::from(j < rem);
            starts.push((w * 64).min(n));
        }
        ShardPlan { starts }
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of objects covered.
    pub fn n(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// First global id of shard `j`.
    pub fn lo(&self, j: usize) -> usize {
        self.starts[j]
    }

    /// One-past-last global id of shard `j`.
    pub fn hi(&self, j: usize) -> usize {
        self.starts[j + 1]
    }

    /// Word range `[lo, hi)` of shard `j` within a global bit vector.
    pub fn word_range(&self, j: usize) -> (usize, usize) {
        (self.starts[j] / 64, self.starts[j + 1].div_ceil(64))
    }

    /// `(shard, local id)` of global id `id`.
    ///
    /// # Panics
    /// Panics if `id >= n()`.
    pub fn locate(&self, id: usize) -> (usize, usize) {
        assert!(id < self.n(), "object id {id} out of range");
        let j = self.starts.partition_point(|&s| s <= id) - 1;
        (j, id - self.starts[j])
    }

    /// Local id of global `id` within shard `j`, `None` when outside.
    pub fn local_of(&self, j: usize, id: usize) -> Option<usize> {
        (self.starts[j]..self.starts[j + 1])
            .contains(&id)
            .then(|| id - self.starts[j])
    }
}

/// Per-worker scratch for sharded scoring: one [`ScratchSpace`] per shard
/// (shard-sized `Q`/`P` vectors plus the epoch-stamped IBIG tables) and
/// the per-shard column selections. Sized once per worker; the scoring
/// paths then allocate nothing per candidate.
pub struct WorkerScratch {
    /// Shard-sized scratch spaces, one per shard.
    shards: Vec<ScratchSpace>,
    /// Per-shard resolved unbinned column picks (BIG).
    sels: Vec<ColumnSelection>,
    /// Per-shard resolved binned column picks (IBIG).
    bin_sels: Vec<BinSelection>,
    /// Per-shard cheap `|Q|` upper bounds (Heuristic 2 budgeting).
    ubs: Vec<usize>,
}

impl WorkerScratch {
    /// Scratch sized for `plan`'s shards.
    pub fn new(plan: &ShardPlan) -> Self {
        let count = plan.count();
        WorkerScratch {
            shards: (0..count)
                .map(|j| ScratchSpace::new(plan.hi(j) - plan.lo(j)))
                .collect(),
            sels: vec![ColumnSelection::default(); count],
            bin_sels: vec![BinSelection::default(); count],
            ubs: vec![0; count],
        }
    }

    /// Does this scratch fit `plan` (same shard cuts)?
    pub fn fits(&self, plan: &ShardPlan) -> bool {
        self.shards.len() == plan.count()
            && (0..plan.count()).all(|j| self.shards[j].n() == plan.hi(j) - plan.lo(j))
    }
}

// ---------------------------------------------------------------------------
// Sharded contexts
// ---------------------------------------------------------------------------

/// Build one value per shard on scoped threads (shard builds are
/// independent, so context construction parallelizes too).
fn build_per_shard<T: Send>(count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if count <= 1 {
        return (0..count).map(f).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..count).map(|j| s.spawn(move || f(j))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard build panicked"))
            .collect()
    })
}

/// Sharded counterpart of [`crate::big::BigContext`]: per-shard
/// [`BitmapIndex`]es over a [`ShardPlan`] plus the shared
/// [`Preprocessed`] artifacts (reused via `Cow`, so preprocessing is paid
/// once however many contexts share it).
pub struct ShardedBigContext<'a> {
    ds: &'a Dataset,
    plan: ShardPlan,
    /// Owned for self-built contexts; borrowed when the dynamic update
    /// layer lends its incrementally-maintained whole-range index in as a
    /// single shard.
    shards: Vec<Cow<'a, BitmapIndex>>,
    pre: Cow<'a, Preprocessed>,
}

impl<'a> ShardedBigContext<'a> {
    /// Build with `shards` shards, running all preprocessing internally.
    pub fn build(ds: &'a Dataset, shards: usize) -> Self {
        Self::from_parts(ds, Cow::Owned(Preprocessed::build(ds)), shards)
    }

    /// Build borrowing shared [`Preprocessed`] artifacts.
    pub fn build_with(ds: &'a Dataset, pre: &'a Preprocessed, shards: usize) -> Self {
        Self::from_parts(ds, Cow::Borrowed(pre), shards)
    }

    pub(crate) fn from_parts(ds: &'a Dataset, pre: Cow<'a, Preprocessed>, shards: usize) -> Self {
        let plan = ShardPlan::new(ds.len(), shards);
        let shards = build_per_shard(plan.count(), |j| {
            Cow::Owned(BitmapIndex::build_range(ds, plan.lo(j), plan.hi(j)))
        });
        ShardedBigContext {
            ds,
            plan,
            shards,
            pre,
        }
    }

    /// Borrow a **prebuilt** whole-range index and preprocessing as a
    /// single-shard context — nothing is built or copied. This is how the
    /// dynamic update layer runs multi-threaded BIG: the workers still
    /// parallelize across the candidate queue (scoring is per-candidate),
    /// they just all score against the one borrowed index, whose
    /// live-aware paths keep tombstoned slots out of every count.
    pub fn from_prebuilt(ds: &'a Dataset, index: &'a BitmapIndex, pre: &'a Preprocessed) -> Self {
        assert_eq!(index.base(), 0, "prebuilt shard must cover the id space");
        assert_eq!(index.n(), ds.len(), "index/dataset size mismatch");
        ShardedBigContext {
            ds,
            plan: ShardPlan::new(ds.len(), 1),
            shards: vec![Cow::Borrowed(index)],
            pre: Cow::Borrowed(pre),
        }
    }

    /// The dataset this context was built for.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The per-shard indexes, in shard order.
    pub fn shards(&self) -> impl Iterator<Item = &BitmapIndex> {
        self.shards.iter().map(Cow::as_ref)
    }

    /// The shared preprocessing artifacts.
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.pre
    }

    /// A fresh [`WorkerScratch`] sized for this context's plan.
    pub fn worker_scratch(&self) -> WorkerScratch {
        WorkerScratch::new(&self.plan)
    }
}

/// One IBIG shard: the shard's binned index plus its column store
/// (`None` = score off the index's dense columns — the dynamic layer's
/// layout, whose column 0 carries the tombstone mask).
struct IbigShard<'a, C: CompressedBitmap> {
    index: Cow<'a, BinnedBitmapIndex>,
    columns: Option<CompressedColumns<C>>,
}

impl<C: CompressedBitmap> IbigShard<'_, C> {
    /// AND one picked column per dimension into `dst` from whichever store
    /// this shard uses.
    fn and_selected_into(
        &self,
        picks: impl IntoIterator<Item = (usize, usize)>,
        dst: &mut tkd_bitvec::BitVec,
    ) {
        match &self.columns {
            Some(cols) => cols.and_selected_into(picks, dst),
            None => self.index.and_selected_into(picks, dst),
        }
    }
}

/// Sharded counterpart of [`crate::ibig::IbigContext`]: per-shard binned
/// indexes (bins re-quantiled per shard) with compressed columns, plus the
/// shared [`Preprocessed`] artifacts.
pub struct ShardedIbigContext<'a, C: CompressedBitmap = Concise> {
    ds: &'a Dataset,
    plan: ShardPlan,
    shards: Vec<IbigShard<'a, C>>,
    pre: Cow<'a, Preprocessed>,
}

impl<'a, C: CompressedBitmap + Send> ShardedIbigContext<'a, C> {
    /// Build with explicit per-dimension bin counts and `shards` shards.
    pub fn build(ds: &'a Dataset, bins_per_dim: &[usize], shards: usize) -> Self {
        Self::from_parts(
            ds,
            bins_per_dim,
            Cow::Owned(Preprocessed::build(ds)),
            shards,
        )
    }

    /// Build with the Eq. 8 optimal bin count on every dimension.
    pub fn build_auto(ds: &'a Dataset, shards: usize) -> Self {
        let x = tkd_index::cost::optimal_bins(ds.len(), tkd_model::stats::missing_rate(ds));
        Self::build(ds, &vec![x; ds.dims()], shards)
    }

    /// Build borrowing shared [`Preprocessed`] artifacts.
    pub fn build_with(
        ds: &'a Dataset,
        bins_per_dim: &[usize],
        pre: &'a Preprocessed,
        shards: usize,
    ) -> Self {
        Self::from_parts(ds, bins_per_dim, Cow::Borrowed(pre), shards)
    }

    pub(crate) fn from_parts(
        ds: &'a Dataset,
        bins_per_dim: &[usize],
        pre: Cow<'a, Preprocessed>,
        shards: usize,
    ) -> Self {
        let plan = ShardPlan::new(ds.len(), shards);
        let shards = build_per_shard(plan.count(), |j| {
            let index = BinnedBitmapIndex::build_range(ds, bins_per_dim, plan.lo(j), plan.hi(j));
            let columns = Some(CompressedColumns::from_binned(&index));
            IbigShard {
                index: Cow::Owned(index),
                columns,
            }
        });
        ShardedIbigContext {
            ds,
            plan,
            shards,
            pre,
        }
    }

    /// Borrow a **prebuilt** whole-range binned index and preprocessing as
    /// a single-shard context scoring off its dense columns — the dynamic
    /// update layer's multi-threaded IBIG entry (the IBIG counterpart of
    /// [`ShardedBigContext::from_prebuilt`]).
    pub fn from_prebuilt_dense(
        ds: &'a Dataset,
        index: &'a BinnedBitmapIndex,
        pre: &'a Preprocessed,
    ) -> Self {
        assert_eq!(index.base(), 0, "prebuilt shard must cover the id space");
        assert_eq!(index.n(), ds.len(), "index/dataset size mismatch");
        ShardedIbigContext {
            ds,
            plan: ShardPlan::new(ds.len(), 1),
            shards: vec![IbigShard {
                index: Cow::Borrowed(index),
                columns: None,
            }],
            pre: Cow::Borrowed(pre),
        }
    }

    /// The dataset this context was built for.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shared preprocessing artifacts.
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.pre
    }

    /// A fresh [`WorkerScratch`] sized for this context's plan.
    pub fn worker_scratch(&self) -> WorkerScratch {
        WorkerScratch::new(&self.plan)
    }
}

// ---------------------------------------------------------------------------
// Sharded scoring
// ---------------------------------------------------------------------------

/// Outcome of scoring one candidate — the slot payload of the replay
/// merge, and (via [`crate::cluster`]) the per-candidate verdict a
/// cluster coordinator assembles from shard answers before replaying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Skipped on the `MaxScore` bound against a published τ.
    PrunedBound,
    /// Pruned by Heuristic 2 (`MaxBitScore ≤ τ`).
    PrunedBitmap,
    /// Pruned by Heuristic 3 (partial-score budget exhausted).
    PrunedPartial,
    /// Exact score.
    Score(usize),
}

fn encode(o: Outcome) -> u64 {
    match o {
        Outcome::PrunedBound => 1,
        Outcome::PrunedBitmap => 2,
        Outcome::PrunedPartial => 3,
        Outcome::Score(s) => 4 + s as u64,
    }
}

fn decode(v: u64) -> Outcome {
    match v {
        1 => Outcome::PrunedBound,
        2 => Outcome::PrunedBitmap,
        3 => Outcome::PrunedPartial,
        s => Outcome::Score((s - 4) as usize),
    }
}

/// Sharded BIG-Score: cross-shard Heuristic 2 on the shared τ, then exact
/// per-shard scoring summed into the global score. Allocation-free.
pub(crate) fn big_score_sharded(
    ctx: &ShardedBigContext<'_>,
    o: ObjectId,
    tau: Option<usize>,
    w: &mut WorkerScratch,
) -> Outcome {
    let ds = ctx.ds;
    let WorkerScratch {
        shards: scratch,
        sels,
        ubs,
        ..
    } = w;
    for (sel, shard) in sels.iter_mut().zip(&ctx.shards) {
        *sel = shard.select_for(|d| ds.value(o, d));
    }
    // Heuristic 2, cross-shard: prune iff Σⱼ |Qⱼ| ≤ τ + 1 (the raw
    // intersections count o's own bit once, in its home shard). Shards
    // exchange budget through the running total: cheap per-shard upper
    // bounds skip whole shards, and the blockwise early exit inside
    // `q_count_selected_above` stops a scan as soon as the global decision
    // is certain either way.
    if let Some(tau) = tau {
        let limit = tau + 1;
        let mut ub_rest = 0usize;
        for (ub, (sel, shard)) in ubs.iter_mut().zip(sels.iter().zip(&ctx.shards)) {
            *ub = shard.q_selected_upper_bound(sel);
            ub_rest += *ub;
        }
        let mut acc = 0usize;
        let mut keep = false;
        for (j, (sel, shard)) in sels.iter().zip(&ctx.shards).enumerate() {
            ub_rest -= ubs[j];
            if acc + ubs[j] + ub_rest <= limit {
                return Outcome::PrunedBitmap;
            }
            // Remaining budget for shard j such that `count_j ≤ budget`
            // certifies `Σ counts ≤ limit`. When later shards' upper
            // bounds already exceed `limit − acc` the true budget is
            // negative — no certificate is possible and a `None` from the
            // capped scan merely means this shard counts 0 (pruning on it
            // would be unsound; `acc ≤ limit` here, so `limit − acc` is
            // safe).
            let budget = (limit - acc).checked_sub(ub_rest);
            match shard.q_count_selected_above(sel, budget.unwrap_or(0)) {
                // Shard j provably fits the remaining budget: the global
                // count cannot exceed `limit`.
                None if budget.is_some() => return Outcome::PrunedBitmap,
                // Negative true budget: `None` only says `count_j == 0`.
                None => {}
                Some(c) => {
                    acc += c;
                    if acc > limit {
                        keep = true;
                        break;
                    }
                }
            }
        }
        if !keep && acc <= limit {
            return Outcome::PrunedBitmap;
        }
    }
    // Exact score, shard by shard.
    let f = ctx.pre.f_of(ds, o);
    let o_mask = ds.mask(o);
    let mut score = 0usize;
    for (j, shard) in ctx.shards.iter().enumerate() {
        let sc = &mut scratch[j];
        let member = ctx.plan.local_of(j, o as usize);
        shard.q_into_selected(&sels[j], member, &mut sc.q);
        shard.p_into_selected(&sels[j], &mut sc.p);
        let (w_lo, w_hi) = ctx.plan.word_range(j);
        // G contribution: |Pⱼ ∧ ¬Fⱼ| against the shard view of F(o).
        let g = sc.p.and_not_count_slice(f.slice_words(w_lo, w_hi));
        let base = ctx.plan.lo(j);
        let mut q_minus_p = 0usize;
        let mut non_d = 0usize;
        for lpid in sc.q.iter_ones_and_not(&sc.p) {
            q_minus_p += 1;
            let pid = (base + lpid) as ObjectId;
            let common = o_mask.and(ds.mask(pid));
            // Tie iff equal on every commonly observed dimension: integer
            // slot compares against the shard's distinct-value table.
            let all_equal = common.iter().all(|d| {
                let slot = sels[j].eq_slot(d);
                slot != 0 && slot == shard.value_slot(lpid, d)
            });
            if all_equal {
                non_d += 1;
            }
        }
        score += g + q_minus_p - non_d;
    }
    Outcome::Score(score)
}

/// Sharded IBIG-Score: per-shard compressed `Q`/`P` decompression,
/// cross-shard Heuristics 2 and 3 on the shared τ, per-shard B+-tree
/// probes resolving the binned residue. Allocation-free.
pub(crate) fn ibig_score_sharded<C: CompressedBitmap>(
    ctx: &ShardedIbigContext<'_, C>,
    o: ObjectId,
    tau: Option<usize>,
    w: &mut WorkerScratch,
) -> Outcome {
    let ds = ctx.ds;
    let dims = ds.dims();
    let WorkerScratch {
        shards: scratch,
        bin_sels,
        ..
    } = w;
    for (sel, shard) in bin_sels.iter_mut().zip(&ctx.shards) {
        *sel = shard.index.select_for(|d| ds.value(o, d));
    }
    // Q per shard, fused off the run streams; Σ counts o itself once.
    let mut total_q = 0usize;
    for (j, shard) in ctx.shards.iter().enumerate() {
        shard.and_selected_into((0..dims).map(|d| bin_sels[j].q_pick(d)), &mut scratch[j].q);
        total_q += scratch[j].q.count_ones();
    }
    let max_bit_score = total_q - 1;
    // Heuristic 2 — bitmap pruning (still sound under per-shard binning).
    if matches!(tau, Some(t) if max_bit_score <= t) {
        return Outcome::PrunedBitmap;
    }
    let (home, local) = ctx.plan.locate(o as usize);
    scratch[home].q.clear(local);
    let f = ctx.pre.f_of(ds, o);
    let f_count = f.count_ones();
    let mut g = 0usize;
    for (j, shard) in ctx.shards.iter().enumerate() {
        shard.and_selected_into((0..dims).map(|d| bin_sels[j].p_pick(d)), &mut scratch[j].p);
        let (w_lo, w_hi) = ctx.plan.word_range(j);
        g += scratch[j].p.and_not_count_slice(f.slice_words(w_lo, w_hi));
    }

    // Heuristic 3 budget: score(o) ≤ MaxBitScore − |F| − |nonD so far|.
    let h3_budget = |non_d: usize, tau: Option<usize>| -> bool {
        matches!(tau, Some(t) if non_d > max_bit_score.saturating_sub(f_count).saturating_sub(t))
    };

    let o_mask = ds.mask(o);
    let mut non_d = 0usize;
    // (a) Same-bin objects strictly better than o somewhere cannot be
    //     dominated: per-shard value-based B+-tree probes.
    for (j, shard) in ctx.shards.iter().enumerate() {
        let sc = &mut scratch[j];
        sc.stamps.next_object();
        for dim in o_mask.iter() {
            let v = ds.raw_value(o, dim);
            for lpid in shard.index.ids_below_in_bin(dim, v, true) {
                let lpid = lpid as usize;
                if sc.q.get(lpid) && !sc.p.get(lpid) && sc.stamps.mark_nond(lpid) {
                    non_d += 1;
                }
            }
            // Heuristic 3 — partial score pruning, fed by the shared τ.
            if h3_budget(non_d, tau) {
                return Outcome::PrunedPartial;
            }
        }
    }
    // (b) tagT accumulation: same-value probes per shard and dimension.
    for (j, shard) in ctx.shards.iter().enumerate() {
        let sc = &mut scratch[j];
        let base = ctx.plan.lo(j);
        for dim in o_mask.iter() {
            let v = ds.raw_value(o, dim);
            for lpid in shard.index.ids_equal(dim, v) {
                let lpid = lpid as usize;
                if base + lpid != o as usize && sc.q.get(lpid) && !sc.p.get(lpid) {
                    sc.stamps.bump_tag(lpid);
                }
            }
        }
    }
    // Members of Q − P tying o on all commonly observed dimensions.
    let mut q_minus_p = 0usize;
    for (j, sc) in scratch.iter().enumerate() {
        let base = ctx.plan.lo(j);
        for lpid in sc.q.iter_ones_and_not(&sc.p) {
            q_minus_p += 1;
            if sc.stamps.is_nond(lpid) {
                continue;
            }
            let common = o_mask.and(ds.mask((base + lpid) as ObjectId)).count();
            if sc.stamps.tag_of(lpid) == common {
                non_d += 1;
                if h3_budget(non_d, tau) {
                    return Outcome::PrunedPartial;
                }
            }
        }
    }
    Outcome::Score(g + q_minus_p - non_d)
}

// ---------------------------------------------------------------------------
// Replay-merge driver
// ---------------------------------------------------------------------------

fn encode_tau(tau: Option<usize>) -> usize {
    tau.map_or(0, |t| t + 1)
}

fn decode_tau(v: usize) -> Option<usize> {
    v.checked_sub(1)
}

struct MergeState {
    frontier: usize,
    top: TopK,
    stats: PruneStats,
    done: bool,
}

struct Shared<'q> {
    queue: &'q [(ObjectId, usize)],
    slots: &'q [AtomicU64],
    next: AtomicUsize,
    /// Published τ of the longest merged prefix (`0` = candidate set not
    /// full yet, else `τ + 1`). Monotone non-decreasing.
    tau_plus1: AtomicUsize,
    stop: AtomicBool,
    merge: Mutex<MergeState>,
}

/// Consume completed slots in queue order under the merge lock,
/// replicating the sequential driver's loop: Heuristic-1 check first,
/// then the offer. Publishes τ after every accepted score.
fn merge_locked(sh: &Shared<'_>, m: &mut MergeState) {
    if m.done {
        return;
    }
    let len = sh.queue.len();
    while m.frontier < len {
        let (o, max_score) = sh.queue[m.frontier];
        // Heuristic 1 — exact, because the replayed τ equals the
        // sequential τ at this position.
        if m.top.prunes(max_score) {
            m.stats.h1_pruned = len - m.frontier;
            m.done = true;
            sh.stop.store(true, Ordering::Release);
            return;
        }
        let v = sh.slots[m.frontier].load(Ordering::Acquire);
        if v == 0 {
            return; // frontier position still being scored
        }
        match decode(v) {
            Outcome::PrunedBound | Outcome::PrunedBitmap => m.stats.h2_pruned += 1,
            Outcome::PrunedPartial => m.stats.h3_pruned += 1,
            Outcome::Score(s) => {
                m.stats.scored += 1;
                m.top.offer(o, s);
                sh.tau_plus1
                    .store(encode_tau(m.top.tau()), Ordering::Release);
            }
        }
        m.frontier += 1;
    }
    m.done = true;
}

fn try_merge(sh: &Shared<'_>) {
    if let Ok(mut m) = sh.merge.try_lock() {
        merge_locked(sh, &mut m);
    }
}

fn worker_loop<F>(sh: &Shared<'_>, score: &F, w: &mut WorkerScratch)
where
    F: Fn(ObjectId, Option<usize>, &mut WorkerScratch) -> Outcome,
{
    let len = sh.queue.len();
    'claim: loop {
        if sh.stop.load(Ordering::Acquire) {
            break;
        }
        let start = sh.next.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
        if start >= len {
            break;
        }
        for t in start..(start + CLAIM_CHUNK).min(len) {
            if sh.stop.load(Ordering::Acquire) {
                break 'claim;
            }
            let (o, max_score) = sh.queue[t];
            let tau = decode_tau(sh.tau_plus1.load(Ordering::Acquire));
            // The published τ is a prefix τ ≤ the sequential τ at `t`, so
            // both prunes are conservative w.r.t. the sequential run.
            let out = match tau {
                Some(t0) if max_score <= t0 => Outcome::PrunedBound,
                _ => score(o, tau, w),
            };
            sh.slots[t].store(encode(out), Ordering::Release);
        }
        try_merge(sh);
    }
    try_merge(sh);
}

/// Single-threaded replay: the same scorer driven by the sequential loop
/// (fresh τ every candidate — used by `threads == 1` and the batched
/// engine's per-query workers).
fn run_single<F>(
    queue: &[(ObjectId, usize)],
    k: usize,
    w: &mut WorkerScratch,
    score: F,
) -> TkdResult
where
    F: Fn(ObjectId, Option<usize>, &mut WorkerScratch) -> Outcome,
{
    let mut top = TopK::new(k);
    let mut stats = PruneStats::default();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        match score(o, top.tau(), w) {
            Outcome::PrunedBound | Outcome::PrunedBitmap => stats.h2_pruned += 1,
            Outcome::PrunedPartial => stats.h3_pruned += 1,
            Outcome::Score(s) => {
                stats.scored += 1;
                top.offer(o, s);
            }
        }
    }
    TkdResult::new(top.into_entries(), stats)
}

/// Drive `score` over the queue with `threads` workers and merge by
/// replay. `workers` must hold at least `threads` scratches; `slots` must
/// hold at least `queue.len()` zeroed slots (they are left dirty).
pub(crate) fn run_replay<F>(
    queue: &[(ObjectId, usize)],
    k: usize,
    threads: usize,
    workers: &mut [WorkerScratch],
    slots: &[AtomicU64],
    score: F,
) -> TkdResult
where
    F: Fn(ObjectId, Option<usize>, &mut WorkerScratch) -> Outcome + Sync,
{
    if k == 0 || queue.is_empty() {
        // Nothing can enter the candidate set: every object is skipped.
        let stats = PruneStats {
            h1_pruned: queue.len(),
            ..PruneStats::default()
        };
        return TkdResult::new(Vec::new(), stats);
    }
    let threads = threads.clamp(1, workers.len().max(1));
    if threads == 1 {
        return run_single(queue, k, &mut workers[0], score);
    }
    assert!(slots.len() >= queue.len(), "slot buffer too small");
    let shared = Shared {
        queue,
        slots,
        next: AtomicUsize::new(0),
        tau_plus1: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        merge: Mutex::new(MergeState {
            frontier: 0,
            top: TopK::new(k),
            stats: PruneStats::default(),
            done: false,
        }),
    };
    std::thread::scope(|s| {
        let mut iter = workers[..threads].iter_mut();
        let mine = iter.next().expect("at least one worker");
        for w in iter {
            let shared = &shared;
            let score = &score;
            s.spawn(move || worker_loop(shared, score, w));
        }
        worker_loop(&shared, &score, mine);
    });
    // All workers joined: every claimed slot is written; drain the tail.
    {
        let mut m = shared.merge.lock().expect("merge lock");
        merge_locked(&shared, &mut m);
    }
    let m = shared.merge.into_inner().expect("merge lock");
    TkdResult::new(m.top.into_entries(), m.stats)
}

/// Fresh zeroed slot buffer for a queue of `n` candidates.
pub(crate) fn new_slots(n: usize) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Parallel BIG over a sharded context: score- and order-identical to
/// [`crate::big::big_with_scratch`] for every `k` (see the module docs
/// for the argument). Allocates the per-call workspace; the
/// [`crate::engine::ParallelEngine`] reuses pooled workspaces instead.
pub fn parallel_big(ctx: &ShardedBigContext<'_>, k: usize, threads: usize) -> TkdResult {
    let threads = threads.max(1);
    let mut workers: Vec<WorkerScratch> = (0..threads)
        .map(|_| WorkerScratch::new(&ctx.plan))
        .collect();
    let slots = new_slots(if threads > 1 {
        ctx.pre.queue().len()
    } else {
        0
    });
    run_replay(
        ctx.pre.queue(),
        k,
        threads,
        &mut workers,
        &slots,
        |o, tau, w| big_score_sharded(ctx, o, tau, w),
    )
}

/// Parallel IBIG over a sharded context: score- and order-identical to
/// [`crate::ibig::ibig_with_scratch`] for every `k`.
pub fn parallel_ibig<C: CompressedBitmap + Sync>(
    ctx: &ShardedIbigContext<'_, C>,
    k: usize,
    threads: usize,
) -> TkdResult {
    let threads = threads.max(1);
    let mut workers: Vec<WorkerScratch> = (0..threads)
        .map(|_| WorkerScratch::new(&ctx.plan))
        .collect();
    let slots = new_slots(if threads > 1 {
        ctx.pre.queue().len()
    } else {
        0
    });
    run_replay(
        ctx.pre.queue(),
        k,
        threads,
        &mut workers,
        &slots,
        |o, tau, w| ibig_score_sharded(ctx, o, tau, w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::big::{big_with, big_with_alloc, BigContext};
    use crate::ibig::{ibig_with, ibig_with_alloc, IbigContext};
    use proptest::prelude::*;
    use tkd_model::fixtures;

    #[test]
    fn shard_plan_is_word_aligned_and_covers() {
        for (n, shards) in [
            (0usize, 4usize),
            (1, 1),
            (1, 8),
            (63, 2),
            (64, 2),
            (65, 2),
            (1000, 3),
            (1000, 7),
            (1000, 1),
            (130, 100),
        ] {
            let p = ShardPlan::new(n, shards);
            assert!(p.count() >= 1);
            assert_eq!(p.n(), n, "n={n} shards={shards}");
            assert_eq!(p.lo(0), 0);
            for j in 0..p.count() {
                assert!(p.lo(j) < p.hi(j) || n == 0, "empty shard {j} (n={n})");
                assert_eq!(p.lo(j) % 64, 0, "unaligned shard start");
                if j + 1 < p.count() {
                    assert_eq!(p.hi(j), p.lo(j + 1));
                }
                let (w_lo, w_hi) = p.word_range(j);
                assert_eq!(w_lo, p.lo(j) / 64);
                assert_eq!(w_hi, p.hi(j).div_ceil(64));
            }
            assert_eq!(p.hi(p.count() - 1), n);
            for id in 0..n {
                let (j, local) = p.locate(id);
                assert_eq!(p.lo(j) + local, id);
                assert_eq!(p.local_of(j, id), Some(local));
                if j > 0 {
                    assert_eq!(p.local_of(j - 1, id), None);
                }
            }
        }
    }

    #[test]
    fn fig3_parallel_matches_sequential_all_k() {
        let ds = fixtures::fig3_sample();
        let seq = BigContext::build(&ds);
        for shards in [1usize, 2, 3, 7] {
            let ctx = ShardedBigContext::build(&ds, shards);
            for threads in [1usize, 2, 4] {
                for k in [1usize, 2, 5, 19, 20, 25] {
                    let par = parallel_big(&ctx, k, threads);
                    let reference = big_with(&seq, k);
                    assert_eq!(
                        par.entries(),
                        reference.entries(),
                        "shards={shards} threads={threads} k={k}"
                    );
                    assert_eq!(par.stats.h1_pruned, reference.stats.h1_pruned);
                }
            }
        }
    }

    #[test]
    fn fig3_parallel_ibig_matches_sequential() {
        let ds = fixtures::fig3_sample();
        let seq: IbigContext<'_> = IbigContext::build(&ds, &[2, 2, 3, 3]);
        for shards in [1usize, 2, 3] {
            let ctx: ShardedIbigContext<'_> = ShardedIbigContext::build(&ds, &[2, 2, 3, 3], shards);
            for threads in [1usize, 2, 4] {
                for k in [1usize, 2, 5, 20] {
                    let par = parallel_ibig(&ctx, k, threads);
                    let reference = ibig_with(&seq, k);
                    assert_eq!(
                        par.entries(),
                        reference.entries(),
                        "shards={shards} threads={threads} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn h2_budget_saturation_regression() {
        // Regression: a shard whose Q-intersection is empty combined with
        // a large later-shard upper bound used to saturate the remaining
        // budget to 0, turning the empty shard's capped scan into a bogus
        // global prune certificate — parallel BIG silently dropped the
        // true top-1. Construction: 64 loose-MaxScore decoys (0, 100)
        // fill shard 0 and set τ = 0; the real winner (1, 1) sits in
        // shard 1 with Q empty in shard 0 (ub 0) and |Q| = 63 in shard 1.
        let mut rows = vec![vec![Some(0.0), Some(100.0)]; 64];
        rows.push(vec![Some(1.0), Some(1.0)]);
        rows.extend(std::iter::repeat_n(vec![Some(2.0), Some(2.0)], 63));
        let ds = tkd_model::Dataset::from_rows(2, &rows).unwrap();
        let seq = BigContext::build(&ds);
        let ctx = ShardedBigContext::build(&ds, 2);
        for threads in [1usize, 2, 4] {
            for k in [1usize, 2, 5] {
                let par = parallel_big(&ctx, k, threads);
                let reference = big_with(&seq, k);
                assert_eq!(
                    par.entries(),
                    reference.entries(),
                    "threads={threads} k={k}"
                );
            }
        }
        assert_eq!(parallel_big(&ctx, 1, 1).entries()[0].score, 63);
    }

    #[test]
    fn k_zero_and_empty_dataset() {
        let ds = fixtures::fig3_sample();
        let ctx = ShardedBigContext::build(&ds, 2);
        assert!(parallel_big(&ctx, 0, 2).is_empty());
        let empty = tkd_model::Dataset::from_rows(2, &[]).unwrap();
        let ctx = ShardedBigContext::build(&empty, 3);
        assert!(parallel_big(&ctx, 5, 2).is_empty());
        let ictx: ShardedIbigContext<'_> = ShardedIbigContext::build_auto(&empty, 3);
        assert!(parallel_ibig(&ictx, 5, 2).is_empty());
    }

    /// Random incomplete dataset with the given missing probability.
    fn dataset_strategy(missing: f64) -> impl Strategy<Value = tkd_model::Dataset> {
        (1usize..=4).prop_flat_map(move |dims| {
            let row = proptest::collection::vec(
                proptest::option::weighted(1.0 - missing, (0u8..6).prop_map(|v| v as f64)),
                dims,
            )
            .prop_filter("at least one observed", |r| r.iter().any(Option::is_some));
            proptest::collection::vec(row, 1..80).prop_map(move |rows| {
                tkd_model::Dataset::from_rows(dims, &rows).expect("valid rows")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The sharded parallel BIG returns identical entries to both the
        /// sequential scratch engine and the allocating `#[cfg(test)]`
        /// oracle, across shard counts, thread counts, and missing rates.
        #[test]
        fn parallel_big_parity(
            ds_low in dataset_strategy(0.1),
            ds_mid in dataset_strategy(0.3),
            ds_high in dataset_strategy(0.6),
            k in 1usize..10,
            shards in 1usize..5,
            threads in 1usize..4,
        ) {
            for ds in [&ds_low, &ds_mid, &ds_high] {
                let seq = BigContext::build(ds);
                let reference = big_with(&seq, k);
                let oracle = big_with_alloc(&seq, k);
                prop_assert_eq!(reference.entries(), oracle.entries());
                let ctx = ShardedBigContext::build(ds, shards);
                let par = parallel_big(&ctx, k, threads);
                prop_assert_eq!(par.entries(), reference.entries());
                prop_assert_eq!(par.stats.h1_pruned, reference.stats.h1_pruned);
            }
        }

        /// Same for IBIG, additionally across bin counts.
        #[test]
        fn parallel_ibig_parity(
            ds_low in dataset_strategy(0.1),
            ds_mid in dataset_strategy(0.3),
            ds_high in dataset_strategy(0.6),
            k in 1usize..10,
            shards in 1usize..5,
            threads in 1usize..4,
            bins in 1usize..6,
        ) {
            for ds in [&ds_low, &ds_mid, &ds_high] {
                let bins_per_dim = vec![bins; ds.dims()];
                let seq: IbigContext<'_> = IbigContext::build(ds, &bins_per_dim);
                let reference = ibig_with(&seq, k);
                let oracle = ibig_with_alloc(&seq, k);
                prop_assert_eq!(reference.entries(), oracle.entries());
                let ctx: ShardedIbigContext<'_> =
                    ShardedIbigContext::build(ds, &bins_per_dim, shards);
                let par = parallel_ibig(&ctx, k, threads);
                prop_assert_eq!(par.entries(), reference.entries());
            }
        }
    }
}
