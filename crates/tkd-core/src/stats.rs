//! Pruning statistics (the quantities plotted in the paper's Fig. 18).

/// Work accounting for one query run.
///
/// The paper's convention (§5.3) is followed: an object is attributed to the
/// *first* heuristic that discards it — Heuristic 2 counts exclude objects
/// already gone via Heuristic 1, and Heuristic 3 excludes both.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Objects never evaluated thanks to upper-bound-score early
    /// termination (Heuristic 1) — or, for ESB, objects eliminated by the
    /// local-skyband candidate test (Lemma 1).
    pub h1_pruned: usize,
    /// Objects discarded by bitmap pruning `MaxBitScore ≤ τ` (Heuristic 2).
    pub h2_pruned: usize,
    /// Objects discarded mid-scoring by partial-score pruning
    /// (Heuristic 3, IBIG only).
    pub h3_pruned: usize,
    /// Objects whose exact score was fully computed.
    pub scored: usize,
}

impl PruneStats {
    /// Total objects accounted for.
    pub fn total(&self) -> usize {
        self.h1_pruned + self.h2_pruned + self.h3_pruned + self.scored
    }

    /// Objects removed by any heuristic.
    pub fn pruned(&self) -> usize {
        self.h1_pruned + self.h2_pruned + self.h3_pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = PruneStats {
            h1_pruned: 5,
            h2_pruned: 3,
            h3_pruned: 2,
            scored: 10,
        };
        assert_eq!(s.total(), 20);
        assert_eq!(s.pruned(), 10);
    }
}
