//! The classical **complete-data** TKD baseline: skyline peeling, after
//! Papadias et al. (TODS 2005) and Yiu & Mamoulis (VLDB 2007) — the
//! paper's references \[5\]–\[7\].
//!
//! On complete data dominance is transitive, so `p ≻ o ⟹ score(p) >
//! score(o)`: the best object always lies on the skyline of the remaining
//! candidates. The classical method therefore alternates *skyline
//! extraction* with *score counting* restricted to skyline members, never
//! scoring dominated objects before all their dominators:
//!
//! 1. compute the skyline of the candidate set;
//! 2. count the exact score of each new skyline member (over all of `S`);
//! 3. emit the member with the maximum score and remove it from the
//!    candidates (its removal can only expose objects it dominated);
//! 4. repeat until `k` objects are emitted.
//!
//! **Why it exists here**: §1 of the paper argues that this family of
//! algorithms is *inapplicable* to incomplete data because transitivity
//! fails (and the R-tree/aR-tree indexes cannot even be built). This module
//! makes that argument executable: [`skyline_peel_top_k`] demands complete
//! data and is validated against the incomplete-data algorithms on σ = 0
//! workloads — where both worlds coincide — while
//! the `peeling_is_wrong_on_incomplete_data` test exhibits a concrete
//! incomplete dataset on which the peeling invariant breaks.

use crate::result::{ResultEntry, TkdResult};
use crate::stats::PruneStats;
use tkd_model::{dominance, Dataset, DimMask, ObjectId};
use tkd_skyline::complete;

/// Error raised when the baseline is handed incomplete data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteDataError {
    /// First object with a missing dimension.
    pub object: ObjectId,
}

impl std::fmt::Display for IncompleteDataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "skyline peeling requires complete data (object {} has missing dimensions); \
             use the incomplete-data algorithms instead",
            self.object
        )
    }
}

impl std::error::Error for IncompleteDataError {}

/// Top-k dominating query on **complete** data by skyline peeling.
///
/// # Errors
/// [`IncompleteDataError`] if any object misses a dimension — the
/// correctness argument (score monotonicity along dominance) only holds
/// with transitive dominance.
pub fn skyline_peel_top_k(ds: &Dataset, k: usize) -> Result<TkdResult, IncompleteDataError> {
    let full = DimMask::all(ds.dims());
    if let Some(o) = ds.ids().find(|&o| ds.mask(o) != full) {
        return Err(IncompleteDataError { object: o });
    }
    let mut candidates: Vec<ObjectId> = ds.ids().collect();
    let mut emitted: Vec<ResultEntry> = Vec::new();
    let mut scored = 0usize;
    // Cache scores of already-scored skyline members; they stay valid
    // because emitted objects are skyline points (nothing dominated them,
    // so no other object's dominated-set ever contained them — scores of
    // survivors are unaffected by their removal).
    let mut cache: std::collections::HashMap<ObjectId, usize> = Default::default();
    while emitted.len() < k && !candidates.is_empty() {
        let sky = complete::skyline(ds, full, &candidates);
        let mut best: Option<ResultEntry> = None;
        for o in sky {
            let score = *cache.entry(o).or_insert_with(|| {
                scored += 1;
                dominance::score_of(ds, o)
            });
            let better = match best {
                None => true,
                Some(b) => score > b.score || (score == b.score && o < b.id),
            };
            if better {
                best = Some(ResultEntry { id: o, score });
            }
        }
        let winner = best.expect("non-empty candidate set has a skyline");
        emitted.push(winner);
        candidates.retain(|&o| o != winner.id);
    }
    let h1 = ds.len() - scored;
    Ok(TkdResult::new(
        emitted,
        PruneStats {
            h1_pruned: h1,
            scored,
            ..Default::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use tkd_model::Dataset;

    fn complete_grid() -> Dataset {
        // 5x5 grid of 2-D points (i, j): score((i,j)) = #points strictly
        // dominated considering ties.
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![Some(i as f64), Some(j as f64)]);
            }
        }
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn agrees_with_naive_on_complete_data() {
        let ds = complete_grid();
        for k in [1usize, 3, 8, 25] {
            let peel = skyline_peel_top_k(&ds, k).unwrap();
            let reference = naive(&ds, k);
            assert_eq!(peel.scores(), reference.scores(), "k={k}");
        }
    }

    #[test]
    fn origin_wins_on_the_grid() {
        let ds = complete_grid();
        let r = skyline_peel_top_k(&ds, 1).unwrap();
        assert_eq!(r.ids(), vec![0]); // (0,0)
        assert_eq!(r.scores(), vec![24]);
    }

    #[test]
    fn scores_far_fewer_objects_than_naive() {
        let ds = complete_grid();
        let r = skyline_peel_top_k(&ds, 2).unwrap();
        // Only skyline members across two rounds are ever scored.
        assert!(r.stats.scored < ds.len() / 2, "scored {}", r.stats.scored);
        assert_eq!(r.stats.total(), ds.len());
    }

    #[test]
    fn rejects_incomplete_data() {
        let ds =
            Dataset::from_rows(2, &[vec![Some(1.0), None], vec![Some(2.0), Some(3.0)]]).unwrap();
        let err = skyline_peel_top_k(&ds, 1).unwrap_err();
        assert_eq!(err.object, 0);
        assert!(err.to_string().contains("complete data"));
    }

    #[test]
    fn peeling_is_wrong_on_incomplete_data() {
        // The §1 argument made concrete: on incomplete data the best
        // dominating object need NOT lie on the skyline, so peeling would
        // return the wrong object if it ignored the completeness check.
        let ds = Dataset::from_rows(
            2,
            &[
                // x: dominated by w (dim 0), yet dominates many objects
                //    through dim 1 where w is missing.
                vec![Some(2.0), Some(1.0)], // 0 = x
                vec![Some(1.0), None],      // 1 = w: dominates x, score 1
                vec![None, Some(5.0)],      // 2: dominated by x
                vec![None, Some(6.0)],      // 3: dominated by x
                vec![None, Some(7.0)],      // 4: dominated by x
            ],
        )
        .unwrap();
        use tkd_model::dominance::{dominates, score_of};
        assert!(dominates(&ds, 1, 0), "w dominates x");
        assert_eq!(score_of(&ds, 0), 3, "x dominates the tail");
        assert_eq!(score_of(&ds, 1), 1, "w's score is lower than x's");
        // So the T1D answer x is NOT a skyline object: transitivity-based
        // peeling is unsound here, exactly as §1 claims.
        let sky = tkd_skyline::incomplete::skyline(&ds);
        assert!(!sky.contains(&0));
        let top = naive(&ds, 1);
        assert_eq!(top.ids(), vec![0]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let ds = complete_grid();
        assert!(skyline_peel_top_k(&ds, 0).unwrap().is_empty());
        let r = skyline_peel_top_k(&ds, 100).unwrap();
        assert_eq!(r.len(), ds.len());
    }

    #[test]
    fn duplicates_on_complete_data() {
        let ds =
            Dataset::from_rows(1, &[vec![Some(1.0)], vec![Some(1.0)], vec![Some(2.0)]]).unwrap();
        let r = skyline_peel_top_k(&ds, 2).unwrap();
        assert_eq!(r.scores(), vec![1, 1]);
        assert_eq!(r.ids(), vec![0, 1]);
    }
}
