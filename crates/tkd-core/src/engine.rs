//! [`ParallelEngine`] — a multi-user query-serving facade over the
//! sharded execution layer of [`crate::parallel`].
//!
//! The engine pays preprocessing and (sharded) index construction **once**
//! per dataset and then serves any number of queries against it:
//!
//! * [`ParallelEngine::query`] parallelizes **within** one query: all
//!   worker threads cooperate on the candidate queue, exchanging the
//!   shared pruning threshold τ (see the [`crate::parallel`] docs).
//! * [`ParallelEngine::query_many`] parallelizes **across** a batch of
//!   concurrent queries — the multi-user serving shape: each worker
//!   drains queries from the batch and runs them sequentially against the
//!   shared contexts, so context build is amortized over the whole batch
//!   and per-query overhead is one pooled scratch checkout.
//!
//! Worker scratches and slot buffers are recycled through an internal
//! pool, so after a warm-up query the engine performs a small constant
//! number of allocations per query regardless of dataset size
//! (`crates/tkd-core/tests/zero_alloc.rs` pins this).
//!
//! Every algorithm routes to an implementation that is score- and
//! order-identical to the corresponding single-threaded function: BIG and
//! IBIG through the replay-merged parallel engines, Naive/ESB/UBB through
//! the sequential reference implementations (reusing the engine's
//! `MaxScore` queue where applicable).

use crate::parallel::{
    big_score_sharded, ibig_score_sharded, new_slots, run_replay, ShardedBigContext,
    ShardedIbigContext, WorkerScratch,
};
use crate::preprocess::Preprocessed;
use crate::query::{shuffle_ties, Algorithm, TieBreak};
use crate::result::TkdResult;
use crate::{esb, naive, ubb};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use tkd_model::Dataset;

/// One query of a multi-user batch: `k`, the algorithm to answer it with,
/// and the tie handling among candidates sharing the k-th score.
#[derive(Clone, Debug)]
pub struct EngineQuery {
    /// How many dominating objects to return.
    pub k: usize,
    /// Which algorithm answers the query (all five are score-identical;
    /// BIG/IBIG run on the engine's sharded contexts).
    pub algorithm: Algorithm,
    /// Tie handling (see [`TieBreak`]).
    pub tie: TieBreak,
}

impl EngineQuery {
    /// A top-`k` query answered by BIG (the engine default).
    pub fn new(k: usize) -> Self {
        EngineQuery {
            k,
            algorithm: Algorithm::Big,
            tie: TieBreak::ById,
        }
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Select tie handling.
    pub fn tie_break(mut self, t: TieBreak) -> Self {
        self.tie = t;
        self
    }
}

/// Reusable per-query resources, recycled through [`ParallelEngine`]'s
/// pool.
struct Pool {
    workers: Mutex<Vec<WorkerScratch>>,
    slots: Mutex<Vec<Vec<AtomicU64>>>,
}

impl Pool {
    fn new() -> Self {
        Pool {
            workers: Mutex::new(Vec::new()),
            slots: Mutex::new(Vec::new()),
        }
    }

    fn take_workers(&self, n: usize, make: impl Fn() -> WorkerScratch) -> Vec<WorkerScratch> {
        let mut pool = self.workers.lock().expect("worker pool");
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match pool.pop() {
                Some(w) => out.push(w),
                None => break,
            }
        }
        drop(pool);
        while out.len() < n {
            out.push(make());
        }
        out
    }

    fn put_workers(&self, ws: Vec<WorkerScratch>) {
        self.workers.lock().expect("worker pool").extend(ws);
    }

    fn take_slots(&self, n: usize) -> Vec<AtomicU64> {
        let mut pool = self.slots.lock().expect("slot pool");
        let slots = pool.pop();
        drop(pool);
        let slots = match slots {
            Some(s) if s.len() >= n => s,
            _ => new_slots(n),
        };
        for s in &slots[..n] {
            s.store(0, Ordering::Relaxed);
        }
        slots
    }

    fn put_slots(&self, s: Vec<AtomicU64>) {
        self.slots.lock().expect("slot pool").push(s);
    }
}

/// Configures and builds a [`ParallelEngine`].
pub struct EngineBuilder<'a> {
    ds: &'a Dataset,
    threads: Option<usize>,
    shards: Option<usize>,
    bins: Option<Vec<usize>>,
}

impl<'a> EngineBuilder<'a> {
    /// Worker thread count (default: the machine's available
    /// parallelism). Values are clamped to at least 1.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = Some(t.max(1));
        self
    }

    /// Shard count (default: the thread count). Clamped internally so no
    /// shard is empty.
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = Some(s.max(1));
        self
    }

    /// Per-dimension bin counts for the IBIG context (default: the Eq. 8
    /// optimum on every dimension).
    ///
    /// # Panics
    /// Panics (at [`EngineBuilder::build`]) if the length differs from
    /// the dataset's dimensionality.
    pub fn bins(mut self, bins: Vec<usize>) -> Self {
        self.bins = Some(bins);
        self
    }

    /// Build the engine: one `Preprocessed` pass plus the sharded BIG and
    /// IBIG contexts (shard builds run in parallel).
    pub fn build(self) -> ParallelEngine<'a> {
        let ds = self.ds;
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let shards = self.shards.unwrap_or(threads);
        let bins = self.bins.unwrap_or_else(|| {
            let x = tkd_index::cost::optimal_bins(ds.len(), tkd_model::stats::missing_rate(ds));
            vec![x; ds.dims()]
        });
        assert_eq!(bins.len(), ds.dims(), "one bin count per dimension");
        let pre = Preprocessed::build(ds);
        // Preprocessing is *computed* once; the clone deep-copies the
        // MaxScore queue and per-mask F(o) bit vectors so each context can
        // own a `Cow` — O(n · masks) memory paid once per engine, still
        // far cheaper than recomputing the queue (and the contexts keep
        // their borrow-based `build_with` API for callers that share one
        // `Preprocessed` by reference).
        let ibig = ShardedIbigContext::from_parts(ds, &bins, Cow::Owned(pre.clone()), shards);
        let big = ShardedBigContext::from_parts(ds, Cow::Owned(pre), shards);
        ParallelEngine {
            ds,
            threads,
            big,
            ibig,
            pool: Pool::new(),
        }
    }
}

/// A query-serving engine: sharded contexts built once, queries answered
/// with within-query parallelism ([`ParallelEngine::query`]) or batched
/// across-query parallelism ([`ParallelEngine::query_many`]). See the
/// [module docs](self).
pub struct ParallelEngine<'a> {
    ds: &'a Dataset,
    threads: usize,
    big: ShardedBigContext<'a>,
    ibig: ShardedIbigContext<'a>,
    pool: Pool,
}

impl<'a> ParallelEngine<'a> {
    /// Build with defaults: threads = available parallelism, shards =
    /// threads, Eq. 8 bins.
    pub fn build(ds: &'a Dataset) -> Self {
        Self::builder(ds).build()
    }

    /// Start configuring an engine.
    pub fn builder(ds: &'a Dataset) -> EngineBuilder<'a> {
        EngineBuilder {
            ds,
            threads: None,
            shards: None,
            bins: None,
        }
    }

    /// Borrow a serving engine from prebuilt artifacts — the maintained
    /// state of a [`crate::DynamicEngine`] — without recomputing
    /// preprocessing or index construction. This is the coalescing hook
    /// of the network server: between update batches it lets a batch of
    /// small queries run through [`ParallelEngine::query_many`] against
    /// the live dynamic store.
    ///
    /// The contexts are single-shard borrows (the same shape
    /// [`crate::DynamicEngine::query_threads`] uses), so construction is
    /// O(1) in the dataset size. Entry ids are **slot** ids; callers
    /// serving a dynamic engine must map them through its stable-id
    /// table. When the index carries tombstones, only
    /// [`Algorithm::Big`] and [`Algorithm::Ibig`] see the live mask —
    /// restrict queries to those two (the reference algorithms scan the
    /// raw dataset, dead slots included).
    pub fn from_prebuilt(
        ds: &'a Dataset,
        index: &'a tkd_index::BitmapIndex,
        binned: &'a tkd_index::BinnedBitmapIndex,
        pre: &'a Preprocessed,
        threads: usize,
    ) -> Self {
        ParallelEngine {
            ds,
            threads: threads.max(1),
            big: ShardedBigContext::from_prebuilt(ds, index, pre),
            ibig: ShardedIbigContext::from_prebuilt_dense(ds, binned, pre),
            pool: Pool::new(),
        }
    }

    /// The dataset this engine serves.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.big.plan().count()
    }

    /// Answer one query with all worker threads cooperating on it.
    pub fn query(&self, q: &EngineQuery) -> TkdResult {
        self.run(q, self.threads)
    }

    /// Answer a batch of concurrent queries, worker-per-query: each of
    /// the engine's threads drains queries from the batch and runs them
    /// against the shared contexts with a pooled scratch. Results come
    /// back in batch order and are identical to running each query alone.
    pub fn query_many(&self, queries: &[EngineQuery]) -> Vec<TkdResult> {
        let threads = self.threads.min(queries.len()).max(1);
        if threads == 1 {
            return queries.iter().map(|q| self.run(q, 1)).collect();
        }
        let results: Vec<Mutex<Option<TkdResult>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let r = self.run(&queries[i], 1);
                    *results[i].lock().expect("result slot") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("result slot").expect("query ran"))
            .collect()
    }

    fn run(&self, q: &EngineQuery, threads: usize) -> TkdResult {
        let result = match q.algorithm {
            Algorithm::Big => self.run_replayed(q.k, threads, |o, tau, w| {
                big_score_sharded(&self.big, o, tau, w)
            }),
            Algorithm::Ibig => self.run_replayed(q.k, threads, |o, tau, w| {
                ibig_score_sharded(&self.ibig, o, tau, w)
            }),
            // Reference algorithms for differential serving: sequential,
            // reusing the engine's MaxScore queue where applicable.
            Algorithm::Naive => naive::naive(self.ds, q.k),
            Algorithm::Esb => esb::esb(self.ds, q.k),
            Algorithm::Ubb => ubb::ubb_with_queue(self.ds, q.k, self.big.preprocessed().queue()),
        };
        match q.tie {
            TieBreak::ById => result,
            TieBreak::Random(seed) => shuffle_ties(result, seed),
        }
    }

    fn run_replayed(
        &self,
        k: usize,
        threads: usize,
        score: impl Fn(tkd_model::ObjectId, Option<usize>, &mut WorkerScratch) -> crate::parallel::Outcome
            + Sync,
    ) -> TkdResult {
        let queue = self.big.preprocessed().queue();
        let mut workers = self
            .pool
            .take_workers(threads, || self.big.worker_scratch());
        // Pooled scratches were built for this engine's plan by
        // construction; guard against cross-engine reuse bugs.
        debug_assert!(workers.iter().all(|w| w.fits(self.big.plan())));
        let slots = self
            .pool
            .take_slots(if threads > 1 { queue.len() } else { 0 });
        let result = run_replay(queue, k, threads, &mut workers, &slots, score);
        self.pool.put_slots(slots);
        self.pool.put_workers(workers);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::TkdQuery;
    use tkd_model::fixtures;

    #[test]
    fn engine_matches_tkdquery_for_all_algorithms() {
        let ds = fixtures::fig3_sample();
        let engine = ParallelEngine::builder(&ds).threads(3).shards(2).build();
        for k in [1usize, 2, 5, 20] {
            for alg in Algorithm::ALL {
                let reference = TkdQuery::new(k).algorithm(alg).run(&ds);
                let got = engine.query(&EngineQuery::new(k).algorithm(alg));
                assert_eq!(got.scores(), reference.scores(), "{alg:?} k={k}");
                if matches!(alg, Algorithm::Big | Algorithm::Ibig) {
                    assert_eq!(got.entries(), reference.entries(), "{alg:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn query_many_returns_batch_order_and_exact_results() {
        let ds = fixtures::fig3_sample();
        let engine = ParallelEngine::builder(&ds).threads(4).shards(3).build();
        let batch: Vec<EngineQuery> = (1..=12)
            .map(|k| {
                EngineQuery::new(k).algorithm(if k % 2 == 0 {
                    Algorithm::Big
                } else {
                    Algorithm::Ibig
                })
            })
            .collect();
        let got = engine.query_many(&batch);
        assert_eq!(got.len(), batch.len());
        for (q, r) in batch.iter().zip(&got) {
            let reference = engine.query(q);
            assert_eq!(r.entries(), reference.entries(), "k={}", q.k);
        }
    }

    #[test]
    fn random_tie_break_preserves_score_multiset() {
        let ds = fixtures::fig3_sample();
        let engine = ParallelEngine::builder(&ds).threads(2).build();
        let base = engine.query(&EngineQuery::new(6));
        for seed in 0..4 {
            let q = EngineQuery::new(6).tie_break(TieBreak::Random(seed));
            let r = engine.query(&q);
            assert_eq!(r.scores(), base.scores(), "seed {seed}");
        }
    }

    #[test]
    fn empty_dataset_and_k_edges() {
        let empty = tkd_model::Dataset::from_rows(3, &[]).unwrap();
        let engine = ParallelEngine::builder(&empty).threads(2).build();
        for alg in Algorithm::ALL {
            for k in [0usize, 1, 7] {
                let r = engine.query(&EngineQuery::new(k).algorithm(alg));
                assert!(r.is_empty(), "{alg:?} k={k}");
            }
        }
        let ds = fixtures::fig3_sample();
        let engine = ParallelEngine::builder(&ds).threads(2).build();
        for alg in Algorithm::ALL {
            assert!(engine.query(&EngineQuery::new(0).algorithm(alg)).is_empty());
        }
    }
}
