//! Constrained and group-by skyline / k-skyband variants on incomplete
//! data, after Gao et al. (the paper's reference \[2\]: *"Processing
//! k-skyband, constrained skyline, and group-by skyline queries on
//! incomplete data"*), the substrate work the TKD paper builds ESB upon.
//!
//! * **Constrained** — the query carries per-dimension value ranges; only
//!   objects whose *observed* values all fall inside their ranges qualify,
//!   and dominance is judged among the qualifying objects only.
//! * **Group-by** — objects carry a group key; each group's skyline is
//!   computed independently (e.g. "best laptops per brand").

use crate::incomplete;
use std::collections::BTreeMap;
use tkd_model::{Dataset, ObjectId};

/// Per-dimension inclusive value constraint; `None` leaves a dimension
/// unconstrained. Missing values never violate a constraint (there is
/// nothing to test — consistent with the incomplete-data model's "no
/// assumption about missing values").
#[derive(Clone, Debug, Default)]
pub struct Constraints {
    ranges: Vec<Option<(f64, f64)>>,
}

impl Constraints {
    /// No constraints on a `dims`-dimensional space.
    pub fn none(dims: usize) -> Self {
        Constraints {
            ranges: vec![None; dims],
        }
    }

    /// Constrain `dim` to the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `dim` is out of range or `lo > hi` or either bound is NaN.
    pub fn with_range(mut self, dim: usize, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.ranges[dim] = validate_interval(dim, self.ranges.len(), lo, hi);
        self
    }

    /// Constrain `dim` to the inclusive interval `[lo, hi]`, **allowing**
    /// `lo > hi`: the empty interval, which no observed value satisfies.
    ///
    /// Objects *missing* `dim` are still admitted (there is nothing to
    /// test), so an empty interval reduces the admitted population to the
    /// objects that do not observe `dim` — the exact conjunction semantics
    /// a query planner needs for contradictory predicates like
    /// `d1 > 5 AND d1 < 3`. [`Constraints::with_range`] keeps its
    /// non-empty guarantee for callers that would consider `lo > hi` a
    /// bug.
    ///
    /// # Panics
    /// Panics if `dim` is out of range or either bound is NaN.
    pub fn with_interval(mut self, dim: usize, lo: f64, hi: f64) -> Self {
        self.ranges[dim] = validate_interval(dim, self.ranges.len(), lo, hi);
        self
    }

    /// The interval constraining `dim`, if any (`lo > hi` = empty).
    pub fn interval(&self, dim: usize) -> Option<(f64, f64)> {
        self.ranges.get(dim).copied().flatten()
    }

    /// Does `o` satisfy every constraint on its observed dimensions?
    pub fn admits(&self, ds: &Dataset, o: ObjectId) -> bool {
        self.ranges
            .iter()
            .enumerate()
            .all(|(d, r)| match (r, ds.value(o, d)) {
                (Some((lo, hi)), Some(v)) => *lo <= v && v <= *hi,
                _ => true,
            })
    }

    /// Ids of all admitted objects.
    pub fn admitted(&self, ds: &Dataset) -> Vec<ObjectId> {
        ds.ids().filter(|&o| self.admits(ds, o)).collect()
    }
}

/// Shared bound validation for [`Constraints::with_range`] /
/// [`Constraints::with_interval`].
fn validate_interval(dim: usize, dims: usize, lo: f64, hi: f64) -> Option<(f64, f64)> {
    assert!(dim < dims, "dimension {dim} out of range");
    assert!(!lo.is_nan() && !hi.is_nan(), "NaN bounds are invalid");
    Some((lo, hi))
}

/// Constrained skyline: the skyline of the admitted sub-population.
pub fn constrained_skyline(ds: &Dataset, c: &Constraints) -> Vec<ObjectId> {
    constrained_k_skyband(ds, c, 1)
}

/// Constrained k-skyband: admitted objects dominated by fewer than `k`
/// *admitted* objects.
pub fn constrained_k_skyband(ds: &Dataset, c: &Constraints, k: usize) -> Vec<ObjectId> {
    let admitted = c.admitted(ds);
    if admitted.is_empty() || k == 0 {
        return Vec::new();
    }
    // Restrict to the admitted objects, then map ids back.
    let sub = ds.select(&admitted);
    incomplete::k_skyband(&sub, k)
        .into_iter()
        .map(|local| admitted[local as usize])
        .collect()
}

/// Group-by skyline: one skyline per group key (keys sorted ascending).
///
/// # Panics
/// Panics unless `groups.len() == ds.len()`.
pub fn group_by_skyline(ds: &Dataset, groups: &[u64]) -> Vec<(u64, Vec<ObjectId>)> {
    assert_eq!(groups.len(), ds.len(), "one group key per object");
    let mut buckets: BTreeMap<u64, Vec<ObjectId>> = BTreeMap::new();
    for o in ds.ids() {
        buckets.entry(groups[o as usize]).or_default().push(o);
    }
    buckets
        .into_iter()
        .map(|(key, ids)| {
            let sub = ds.select(&ids);
            let sky = incomplete::skyline(&sub)
                .into_iter()
                .map(|local| ids[local as usize])
                .collect();
            (key, sky)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    #[test]
    fn unconstrained_equals_plain_skyline() {
        let ds = fixtures::fig3_sample();
        let c = Constraints::none(ds.dims());
        assert_eq!(constrained_skyline(&ds, &c), incomplete::skyline(&ds));
        for k in 1..5 {
            assert_eq!(
                constrained_k_skyband(&ds, &c, k),
                incomplete::k_skyband(&ds, k)
            );
        }
    }

    #[test]
    fn constraints_filter_on_observed_values_only() {
        let ds = fixtures::fig2_points();
        // x <= 5: excludes a=(7,7) and d=(9,1); e=(-,4) has no x, admitted.
        let c = Constraints::none(2).with_range(0, 0.0, 5.0);
        let admitted: Vec<&str> = c
            .admitted(&ds)
            .into_iter()
            .map(|o| ds.label(o).unwrap())
            .collect();
        assert_eq!(admitted, vec!["b", "c", "e", "f"]);
    }

    #[test]
    fn constrained_skyline_recomputes_dominance_inside_the_region() {
        let ds = fixtures::fig2_points();
        // Exclude f = (4,2) by requiring x >= 5; within {a, c, d, e}:
        // c=(5,-) dominates a=(7,7) and d=(9,1) via x; e incomparable to c;
        // d ≻ e via y (1 < 4). Skyline = {c}? e is dominated by d. a is
        // dominated by c. d is dominated by c. So skyline = {c}.
        let c = Constraints::none(2).with_range(0, 5.0, 10.0);
        let sky: Vec<&str> = constrained_skyline(&ds, &c)
            .into_iter()
            .map(|o| ds.label(o).unwrap())
            .collect();
        assert_eq!(sky, vec!["c"]);
    }

    #[test]
    fn empty_region_gives_empty_skyline() {
        let ds = fixtures::fig2_points();
        let c = Constraints::none(2)
            .with_range(0, 100.0, 200.0)
            .with_range(1, 100.0, 200.0);
        // Only objects observing neither dim would qualify; none exist with
        // values inside the range.
        assert!(constrained_skyline(&ds, &c)
            .iter()
            .all(|&o| c.admits(&ds, o)));
    }

    #[test]
    fn skyband_membership_oracle_under_constraints() {
        let ds = fixtures::fig3_sample();
        let c = Constraints::none(4).with_range(3, 1.0, 4.0);
        let admitted = c.admitted(&ds);
        for k in 1..4 {
            let band = constrained_k_skyband(&ds, &c, k);
            for &o in &admitted {
                let dominators = admitted
                    .iter()
                    .filter(|&&p| p != o && tkd_model::dominance::dominates(&ds, p, o))
                    .count();
                assert_eq!(band.contains(&o), dominators < k, "k={k} o={o}");
            }
        }
    }

    #[test]
    fn group_by_skyline_partitions() {
        let ds = fixtures::fig3_sample();
        // Group by mask family: A=0, B=1, C=2, D=3 (label prefix).
        let groups: Vec<u64> = ds
            .ids()
            .map(|o| (ds.label(o).unwrap().as_bytes()[0] - b'A') as u64)
            .collect();
        let result = group_by_skyline(&ds, &groups);
        assert_eq!(result.len(), 4);
        for (key, sky) in &result {
            assert!(!sky.is_empty(), "group {key} has a skyline");
            // Every member belongs to its group and is undominated within it.
            for &o in sky {
                assert_eq!(groups[o as usize], *key);
                for p in ds.ids() {
                    if groups[p as usize] == *key {
                        assert!(
                            !tkd_model::dominance::dominates(&ds, p, o),
                            "group {key}: {} dominated by {}",
                            ds.label(o).unwrap(),
                            ds.label(p).unwrap()
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one group key per object")]
    fn group_by_requires_matching_arity() {
        let ds = fixtures::fig2_points();
        let _ = group_by_skyline(&ds, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rejects_inverted_range() {
        let _ = Constraints::none(2).with_range(0, 5.0, 1.0);
    }

    #[test]
    fn empty_interval_admits_only_missing() {
        let ds = fixtures::fig2_points();
        // x in the empty interval: only e = (-,4), which has no x, passes.
        let c = Constraints::none(2).with_interval(0, 5.0, 1.0);
        let admitted: Vec<&str> = c
            .admitted(&ds)
            .into_iter()
            .map(|o| ds.label(o).unwrap())
            .collect();
        assert_eq!(admitted, vec!["e"]);
        assert_eq!(c.interval(0), Some((5.0, 1.0)));
        assert_eq!(c.interval(1), None);
    }

    #[test]
    fn with_interval_matches_with_range_when_nonempty() {
        let ds = fixtures::fig3_sample();
        let a = Constraints::none(4).with_range(3, 1.0, 4.0);
        let b = Constraints::none(4).with_interval(3, 1.0, 4.0);
        assert_eq!(a.admitted(&ds), b.admitted(&ds));
    }

    #[test]
    #[should_panic(expected = "NaN bounds")]
    fn with_interval_rejects_nan() {
        let _ = Constraints::none(2).with_interval(0, f64::NAN, 1.0);
    }
}
