//! Exact skyline and k-skyband over a whole incomplete dataset.
//!
//! Following ISkyline (Khalefa et al., ICDE 2008) and kISB (Gao et al.,
//! 2014), computation is staged: per-bucket local results exploit the
//! within-bucket transitivity (an object dominated by `k` bucket peers is
//! dominated by at least `k` objects globally, so it can be pruned), then
//! survivors are verified against the *other* buckets, where transitivity
//! does not hold and exhaustive comparison is required.

use crate::complete;
use tkd_model::{dominance, stats, Dataset, ObjectId};

/// The skyline of an incomplete dataset: objects not dominated (Def. 1) by
/// any other object.
pub fn skyline(ds: &Dataset) -> Vec<ObjectId> {
    k_skyband(ds, 1)
}

/// The k-skyband of an incomplete dataset: objects dominated by fewer than
/// `k` others. `k = 1` is the skyline.
pub fn k_skyband(ds: &Dataset, k: usize) -> Vec<ObjectId> {
    if k == 0 {
        return Vec::new();
    }
    let groups = stats::group_by_mask(ds);
    let mut result = Vec::new();
    for (mask, bucket) in &groups {
        // Local pruning (sound by within-bucket transitivity, Lemma 1).
        let local = complete::k_skyband(ds, *mask, bucket, k);
        for o in local {
            // Exact dominator count: bucket peers plus every other bucket.
            let mut dominators = complete::dominator_count(ds, *mask, bucket, o);
            if dominators >= k {
                continue;
            }
            'outer: for (other_mask, other_bucket) in &groups {
                if other_mask == mask {
                    continue;
                }
                for &p in other_bucket {
                    if dominance::dominates(ds, p, o) {
                        dominators += 1;
                        if dominators >= k {
                            break 'outer;
                        }
                    }
                }
            }
            if dominators < k {
                result.push(o);
            }
        }
    }
    result.sort_unstable();
    result
}

/// Brute-force oracle: dominator count of `o` over the full dataset.
pub fn dominator_count(ds: &Dataset, o: ObjectId) -> usize {
    ds.ids()
        .filter(|&p| p != o && dominance::dominates(ds, p, o))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::fixtures;

    fn oracle(ds: &Dataset, k: usize) -> Vec<ObjectId> {
        ds.ids().filter(|&o| dominator_count(ds, o) < k).collect()
    }

    #[test]
    fn fig2_skyline_is_f() {
        let ds = fixtures::fig2_points();
        assert_eq!(skyline(&ds), vec![ds.id_by_label("f").unwrap()]);
    }

    #[test]
    fn fig2_skybands_match_oracle() {
        let ds = fixtures::fig2_points();
        for k in 0..=7 {
            assert_eq!(k_skyband(&ds, k), oracle(&ds, k), "k={k}");
        }
    }

    #[test]
    fn fig3_skybands_match_oracle() {
        let ds = fixtures::fig3_sample();
        for k in 0..=21 {
            assert_eq!(k_skyband(&ds, k), oracle(&ds, k), "k={k}");
        }
    }

    #[test]
    fn skyline_objects_have_no_dominators() {
        let ds = fixtures::fig3_sample();
        for o in skyline(&ds) {
            assert_eq!(dominator_count(&ds, o), 0);
        }
    }

    #[test]
    fn incomparable_only_dataset_is_all_skyline() {
        // Two disjoint masks: nobody dominates anybody.
        let ds = Dataset::from_rows(2, &[vec![Some(1.0), None], vec![None, Some(1.0)]]).unwrap();
        assert_eq!(skyline(&ds), vec![0, 1]);
    }

    #[test]
    fn cyclic_dominance_can_empty_the_skyline() {
        // §3: "there may be a cyclic dominance relationship on incomplete
        // data". With a ≻ c, b ≻ a, c ≻ b every object is dominated, so —
        // unlike on complete data — the skyline of a non-empty dataset can
        // be EMPTY, while the TKD query still returns k objects.
        let ds = Dataset::from_rows(
            3,
            &[
                vec![Some(1.0), Some(2.0), None], // a
                vec![None, Some(1.0), Some(2.0)], // b
                vec![Some(2.0), None, Some(1.0)], // c
            ],
        )
        .unwrap();
        use tkd_model::dominance::dominates;
        assert!(dominates(&ds, 1, 0), "b ≻ a");
        assert!(dominates(&ds, 2, 1), "c ≻ b");
        assert!(dominates(&ds, 0, 2), "a ≻ c");
        assert!(skyline(&ds).is_empty());
        assert_eq!(k_skyband(&ds, 2), vec![0, 1, 2]);
    }

    #[test]
    fn cross_bucket_domination_is_caught() {
        // Object 1 survives its singleton bucket trivially, but is dominated
        // by object 0 from another bucket.
        let ds = Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), Some(1.0)], // mask 11
                vec![Some(5.0), None],      // mask 01, dominated by 0
            ],
        )
        .unwrap();
        assert_eq!(skyline(&ds), vec![0]);
    }

    use tkd_model::Dataset;
}
