//! Skyline and k-skyband within one *bucket*: a set of objects sharing the
//! same observation mask, treated as complete data in the observed subspace.
//!
//! Dominance restricted to a bucket is the classical complete-data dominance
//! over the `d' ≤ d` observed dimensions, so it is transitive and admits the
//! sort-filter optimization: sorting by the coordinate sum guarantees every
//! dominator of an object precedes it in the scan (a dominator is no larger
//! in every dimension and strictly smaller in one, hence has a strictly
//! smaller sum).

use tkd_model::{Dataset, DimMask, ObjectId};

/// Does `a` dominate `b` over exactly the dimensions of `mask`? Both objects
/// must observe all dimensions of `mask`.
#[inline]
fn dominates_on(ds: &Dataset, mask: DimMask, a: ObjectId, b: ObjectId) -> bool {
    let mut strict = false;
    for d in mask.iter() {
        let va = ds.raw_value(a, d);
        let vb = ds.raw_value(b, d);
        if va > vb {
            return false;
        }
        if va < vb {
            strict = true;
        }
    }
    strict
}

/// Ids of `bucket` sorted by ascending coordinate sum over `mask` (the
/// sort-filter order), ties by id for determinism.
fn sum_sorted(ds: &Dataset, mask: DimMask, bucket: &[ObjectId]) -> Vec<ObjectId> {
    let mut order: Vec<ObjectId> = bucket.to_vec();
    let sum = |o: ObjectId| -> f64 { mask.iter().map(|d| ds.raw_value(o, d)).sum() };
    order.sort_by(|&a, &b| sum(a).total_cmp(&sum(b)).then(a.cmp(&b)));
    order
}

/// The **k-skyband** of a bucket: members dominated by fewer than `k` other
/// members (within the bucket, over the observed dimensions).
///
/// `k = 1` degenerates to the skyline. `k = 0` returns nothing.
///
/// The scan is O(B²·d') worst case with two standard cuts: the sort-filter
/// order means only earlier objects can dominate, and counting stops at `k`.
pub fn k_skyband(ds: &Dataset, mask: DimMask, bucket: &[ObjectId], k: usize) -> Vec<ObjectId> {
    if k == 0 {
        return Vec::new();
    }
    let order = sum_sorted(ds, mask, bucket);
    let mut result: Vec<ObjectId> = Vec::new();
    for (i, &o) in order.iter().enumerate() {
        let mut dominators = 0usize;
        for &p in &order[..i] {
            if dominates_on(ds, mask, p, o) {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            result.push(o);
        }
    }
    result.sort_unstable();
    result
}

/// The **skyline** of a bucket: members dominated by no other member.
pub fn skyline(ds: &Dataset, mask: DimMask, bucket: &[ObjectId]) -> Vec<ObjectId> {
    k_skyband(ds, mask, bucket, 1)
}

/// Number of bucket members dominating `o` (within the bucket). Reference
/// oracle for tests and for cross-bucket verification.
pub fn dominator_count(ds: &Dataset, mask: DimMask, bucket: &[ObjectId], o: ObjectId) -> usize {
    bucket
        .iter()
        .filter(|&&p| p != o && dominates_on(ds, mask, p, o))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::{fixtures, stats};

    /// Brute-force oracle for the k-skyband.
    fn oracle(ds: &Dataset, mask: DimMask, bucket: &[ObjectId], k: usize) -> Vec<ObjectId> {
        let mut r: Vec<ObjectId> = bucket
            .iter()
            .copied()
            .filter(|&o| dominator_count(ds, mask, bucket, o) < k)
            .collect();
        r.sort_unstable();
        r
    }

    #[test]
    fn fig3_local_2_skybands_match_fig4() {
        // Fig. 4 highlights the local 2-skyband of each bucket; their union
        // is {A1,A2,A3, B1,B2, C1,C2,C3, D1,D2,D3}.
        let ds = fixtures::fig3_sample();
        let mut union: Vec<&str> = Vec::new();
        for (mask, bucket) in stats::group_by_mask(&ds) {
            for o in k_skyband(&ds, mask, &bucket, 2) {
                union.push(ds.label(o).unwrap());
            }
        }
        union.sort_unstable();
        assert_eq!(union, fixtures::fig4_esb_candidates());
    }

    #[test]
    fn skyline_is_one_skyband() {
        let ds = fixtures::fig3_sample();
        for (mask, bucket) in stats::group_by_mask(&ds) {
            assert_eq!(
                skyline(&ds, mask, &bucket),
                k_skyband(&ds, mask, &bucket, 1)
            );
        }
    }

    #[test]
    fn skyband_matches_oracle_on_fig3() {
        let ds = fixtures::fig3_sample();
        for (mask, bucket) in stats::group_by_mask(&ds) {
            for k in 0..=6 {
                assert_eq!(
                    k_skyband(&ds, mask, &bucket, k),
                    oracle(&ds, mask, &bucket, k),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn k_zero_is_empty_and_huge_k_is_everything() {
        let ds = fixtures::fig3_sample();
        for (mask, bucket) in stats::group_by_mask(&ds) {
            assert!(k_skyband(&ds, mask, &bucket, 0).is_empty());
            let all = k_skyband(&ds, mask, &bucket, bucket.len() + 1);
            let mut want = bucket.clone();
            want.sort_unstable();
            assert_eq!(all, want);
        }
    }

    #[test]
    fn skyband_is_monotone_in_k() {
        let ds = fixtures::fig3_sample();
        for (mask, bucket) in stats::group_by_mask(&ds) {
            let mut prev: Vec<ObjectId> = Vec::new();
            for k in 1..=5 {
                let cur = k_skyband(&ds, mask, &bucket, k);
                assert!(
                    prev.iter().all(|o| cur.contains(o)),
                    "k-skyband must grow with k"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn duplicate_points_are_mutually_nondominating() {
        let ds = Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), Some(1.0)],
                vec![Some(1.0), Some(1.0)],
                vec![Some(2.0), Some(2.0)],
            ],
        )
        .unwrap();
        let mask = DimMask::all(2);
        let bucket: Vec<ObjectId> = vec![0, 1, 2];
        // The two duplicates do not dominate each other (no strict dim),
        // and both dominate object 2, which therefore only enters the
        // skyband once k exceeds its dominator count of 2.
        assert_eq!(skyline(&ds, mask, &bucket), vec![0, 1]);
        assert_eq!(k_skyband(&ds, mask, &bucket, 2), vec![0, 1]);
        assert_eq!(k_skyband(&ds, mask, &bucket, 3), vec![0, 1, 2]);
    }

    #[test]
    fn single_object_bucket() {
        let ds = Dataset::from_rows(2, &[vec![Some(1.0), None]]).unwrap();
        let mask = DimMask::from_indices([0]);
        assert_eq!(skyline(&ds, mask, &[0]), vec![0]);
    }

    use tkd_model::Dataset;
}
