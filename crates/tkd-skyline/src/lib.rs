//! Skyline and k-skyband operators, the substrate of the paper's **ESB**
//! algorithm (§4.1).
//!
//! The paper's Lemma 1 rests on the observation that objects sharing the
//! same observation mask form a *bucket* that behaves like complete data in
//! the observed subspace — dominance is transitive there — so a per-bucket
//! **k-skyband** (the objects dominated by fewer than `k` others, Gao et
//! al.'s kISB) yields a sound candidate set for the global TKD query.
//!
//! This crate provides:
//!
//! * [`complete`] — skyline / k-skyband over one bucket (sort-filter scan);
//! * [`incomplete`] — exact skyline / k-skyband over a whole incomplete
//!   dataset (ISkyline / kISB style: local results, then cross-bucket
//!   verification — transitivity does not hold across buckets);
//! * [`constrained`] — the constrained and group-by skyline variants of
//!   the substrate paper (Gao et al., the TKD paper's reference \[2\]).
//!
//! ```
//! use tkd_model::fixtures;
//! use tkd_skyline::incomplete;
//!
//! let ds = fixtures::fig2_points();
//! let sky = incomplete::skyline(&ds);
//! // Only f = (4,2) is dominated by nobody in Fig. 2.
//! assert_eq!(sky, vec![ds.id_by_label("f").unwrap()]);
//! ```

#![warn(missing_docs)]

pub mod complete;
pub mod constrained;
pub mod incomplete;
