//! `repro --exp persist` — the snapshot load-vs-rebuild benchmark
//! (`BENCH_5.json`).
//!
//! For each `(n, dims, missing)` cell the harness:
//!
//! 1. builds a [`DynamicEngine`] from scratch — the cold-start cost every
//!    process pays *without* persistence (index + B+-tree + preprocessing
//!    construction);
//! 2. saves a snapshot to disk and loads it back in full (read + decode +
//!    validation), timing both;
//! 3. asserts the loaded engine's BIG and IBIG top-k equal the fresh
//!    engine's **bit for bit** (entries, scores, tie order), so every
//!    ratio in the artifact is backed by the parity guarantee;
//! 4. reports `rebuild_s / load_s` — how much faster a snapshot-served
//!    cold start is than re-deriving the state.
//!
//! The JSON artifact (`tkd-persist/v1`) records
//! `hardware.available_parallelism` like the other bench artifacts: the
//! numbers are single-threaded and the ratio is the machine-portable
//! quantity.

use crate::table::{secs, Table};
use crate::{time, Scale};
use tkd_core::{Algorithm, DynamicEngine, EngineQuery};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};

/// One grid cell: `(n, dims, missing_rate, k)`.
pub type PersistPoint = (usize, usize, f64, usize);

/// The persistence workload grid. Quick is CI-sized (the acceptance
/// criterion pins the `n ≥ 10_000` cells: load must beat rebuild there);
/// Paper adds the 50K cells.
pub fn persist_grid(scale: Scale) -> Vec<PersistPoint> {
    match scale {
        Scale::Quick => vec![
            (2_000, 6, 0.1, 8),
            (5_000, 6, 0.3, 8),
            (10_000, 8, 0.1, 8),
            (10_000, 8, 0.3, 8),
        ],
        Scale::Paper => vec![
            (10_000, 8, 0.1, 8),
            (20_000, 8, 0.1, 8),
            (50_000, 8, 0.1, 8),
            (50_000, 8, 0.3, 8),
        ],
    }
}

/// Measurements of one cell.
struct PersistCell {
    n: usize,
    dims: usize,
    missing: f64,
    k: usize,
    /// Engine construction from the raw dataset (the replaced cold start).
    rebuild_s: f64,
    /// Snapshot encode + write.
    save_s: f64,
    /// Snapshot read + decode + validation into a serving engine.
    load_s: f64,
    /// Snapshot size on disk.
    bytes: u64,
    /// `rebuild_s / load_s`.
    speedup: f64,
    /// Steady-state BIG query on the loaded engine.
    big_query_s: f64,
}

fn measure_cell(point: PersistPoint, seed: u64) -> PersistCell {
    let (n, dims, missing, k) = point;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 100,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let (mut fresh, rebuild_s) = time(|| DynamicEngine::new(ds));
    // Per-cell + per-process name: the quick grid has two cells sharing
    // (n, dims, seed), and concurrent repro runs must not clobber each
    // other's snapshot mid-measure.
    let path = std::env::temp_dir().join(format!(
        "tkd_persist_{n}_{dims}_{}_{seed}_{}.tkdsnap",
        (missing * 100.0) as u32,
        std::process::id()
    ));
    let (bytes, save_s) = time(|| tkd_store::save_engine(&path, &mut fresh).expect("save"));
    let (loaded, load_s) = time(|| tkd_store::load_engine(&path).expect("load"));
    std::fs::remove_file(&path).ok();
    let mut loaded = loaded;

    // Parity gate: the loaded engine answers bit-identically.
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        let q = EngineQuery::new(k).algorithm(alg);
        let a = fresh.query(&q).expect("BIG/IBIG supported");
        let b = loaded.query(&q).expect("BIG/IBIG supported");
        assert_eq!(
            a.entries(),
            b.entries(),
            "loaded result diverged from fresh build ({alg:?}, n={n}, missing={missing})"
        );
    }
    let (_, big_query_s) = time(|| loaded.query(&EngineQuery::new(k)).expect("BIG supported"));

    // The acceptance bar itself, enforced where the numbers are made:
    // at n ≥ 10K a snapshot load must beat the rebuild it replaces
    // (smaller cells are allowed to be noise-bound on tiny machines).
    if n >= 10_000 {
        assert!(
            rebuild_s > load_s,
            "snapshot load ({load_s:.4}s) did not beat rebuild ({rebuild_s:.4}s) \
             at n={n}, missing={missing} — the load path has regressed"
        );
    }

    PersistCell {
        n,
        dims,
        missing,
        k,
        rebuild_s,
        save_s,
        load_s,
        bytes,
        speedup: rebuild_s / load_s,
        big_query_s,
    }
}

/// Run the grid, returning the printable table and the `BENCH_5.json`
/// document.
pub fn run(scale: Scale, seed: u64) -> (Table, String) {
    let cells: Vec<PersistCell> = persist_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();

    let mut t = Table::new(
        "persistent snapshots — load vs rebuild (IND)",
        &[
            "N",
            "dims",
            "missing",
            "rebuild (s)",
            "save (s)",
            "load (s)",
            "rebuild/load",
            "bytes",
            "BIG q (s)",
        ],
    );
    for c in &cells {
        t.push(vec![
            c.n.to_string(),
            c.dims.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            secs(c.rebuild_s),
            secs(c.save_s),
            secs(c.load_s),
            format!("{:.1}x", c.speedup),
            c.bytes.to_string(),
            secs(c.big_query_s),
        ]);
    }
    (t, to_json(scale, seed, &cells))
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[PersistCell]) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-persist/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp persist\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}}},\n"
    ));
    s.push_str(&format!(
        "  \"format_version\": {},\n",
        tkd_store::FORMAT_VERSION
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": 100, \"k\": {}, \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.k
        ));
        s.push_str(&format!(
            "      \"rebuild_s\": {:.6}, \"save_s\": {:.6}, \"load_s\": {:.6},\n",
            c.rebuild_s, c.save_s, c.load_s
        ));
        s.push_str(&format!(
            "      \"rebuild_over_load\": {:.2}, \"snapshot_bytes\": {}, \
             \"big_query_s\": {:.6}\n",
            c.speedup, c.bytes, c.big_query_s
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_cell_is_parity_checked_and_json_is_sane() {
        // measure_cell asserts loaded == fresh internally.
        let cell = measure_cell((400, 4, 0.2, 8), 11);
        assert!(cell.rebuild_s > 0.0 && cell.load_s > 0.0 && cell.bytes > 0);
        let json = to_json(Scale::Quick, 11, &[cell]);
        for needle in [
            "tkd-persist/v1",
            "available_parallelism",
            "rebuild_over_load",
            "snapshot_bytes",
            "format_version",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn grid_shapes() {
        assert!(persist_grid(Scale::Quick)
            .iter()
            .any(|&(n, ..)| n >= 10_000));
        assert!(persist_grid(Scale::Paper)
            .iter()
            .any(|&(n, ..)| n == 50_000));
    }
}
