//! `repro --exp serve` — the TCP-service load generator (`BENCH_6.json`).
//!
//! For each `(n, dims, missing, k, clients, rps)` cell the harness:
//!
//! 1. builds a [`DynamicEngine`], starts a real [`tkd_serve::Server`] on
//!    a loopback port, and pins one wire query **bit-identical** to the
//!    in-process answer before any load runs (every number in the
//!    artifact is backed by the parity guarantee);
//! 2. drives **open-loop** load: each client thread fires queries on a
//!    fixed arrival schedule, and latency is measured from the
//!    *scheduled* arrival — not the actual send — so a backed-up server
//!    cannot hide queueing delay (no coordinated omission);
//! 3. runs one updater alongside the readers, pacing insert batches
//!    through the single-writer path, so the measured latencies include
//!    write barriers;
//! 4. checks that every issued request was answered exactly once, and
//!    reports p50/p99 latency and completed throughput.
//!
//! The artifact (`tkd-serve/v1`) records
//! `hardware.available_parallelism` like the other bench artifacts. The
//! numbers are **single-core honest**: the dev/CI container has one
//! core, so the harness asserts only structural invariants (parity, no
//! lost responses) and never a latency or scaling threshold — those are
//! machine truths, and the JSON is where they live.

use crate::table::Table;
use crate::Scale;
use std::time::{Duration, Instant};
use tkd_core::{Algorithm, DynamicEngine, EngineQuery, UpdateOp};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_serve::{Client, QuerySpec, ServeConfig, Server};

/// One grid cell: `(n, dims, missing_rate, k, clients, target_rps)`.
pub type ServePoint = (usize, usize, f64, usize, usize, f64);

/// The serving workload grid. Quick is CI-sized (seconds per cell on one
/// core); Paper raises dataset size, client count, and offered load.
pub fn serve_grid(scale: Scale) -> Vec<ServePoint> {
    match scale {
        Scale::Quick => vec![(1_500, 4, 0.2, 8, 2, 40.0), (4_000, 6, 0.3, 8, 4, 30.0)],
        Scale::Paper => vec![(10_000, 6, 0.1, 8, 4, 60.0), (20_000, 8, 0.3, 8, 8, 40.0)],
    }
}

/// Requests each client issues (arrival interval = clients / rps).
const REQS_PER_CLIENT: usize = 40;
/// Insert batches the updater paces through the run.
const UPDATE_BATCHES: usize = 5;

/// Measurements of one cell.
struct ServeCell {
    n: usize,
    dims: usize,
    missing: f64,
    k: usize,
    clients: usize,
    offered_rps: f64,
    issued: usize,
    completed: usize,
    p50_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
    update_p50_ms: f64,
    coalesced_batches: u64,
    overloaded: u64,
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1000.0
}

fn measure_cell(point: ServePoint, seed: u64) -> ServeCell {
    let (n, dims, missing, k, clients, offered_rps) = point;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 100,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let mut oracle_engine = DynamicEngine::new(ds.clone());
    let oracle: Vec<(u64, u64)> = oracle_engine
        .query(&EngineQuery::new(k).algorithm(Algorithm::Big))
        .expect("BIG supported")
        .iter()
        .map(|e| (u64::from(e.id), e.score as u64))
        .collect();

    let server = Server::start(
        DynamicEngine::new(ds),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server binds");
    let addr = server.local_addr();

    // Parity gate before any load: one wire query, bit for bit.
    {
        let mut probe = Client::connect_with(addr, Duration::from_secs(30)).expect("probe");
        let got: Vec<(u64, u64)> = probe
            .query(QuerySpec::new(k))
            .expect("probe query")
            .iter()
            .map(|e| (e.id, e.score))
            .collect();
        assert_eq!(got, oracle, "wire answer diverged from in-process engine");
    }

    // Open-loop readers: fixed arrival schedule per thread; latency is
    // measured from the scheduled arrival, so backlog counts.
    let interval = Duration::from_secs_f64(clients as f64 / offered_rps);
    let run_start = Instant::now();
    let spec = QuerySpec::new(k);
    let reader_handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, Duration::from_secs(60)).expect("reader connects");
                let mut latencies = Vec::with_capacity(REQS_PER_CLIENT);
                // Stagger thread start so arrivals interleave evenly.
                let phase = interval.mul_f64(c as f64 / clients.max(1) as f64);
                for i in 0..REQS_PER_CLIENT {
                    let scheduled = run_start + phase + interval.mul_f64(i as f64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let entries = client.query(spec).expect("query answered");
                    assert!(entries.len() <= k);
                    latencies.push(scheduled.elapsed().as_secs_f64());
                }
                latencies
            })
        })
        .collect();

    // One updater paces insert batches through the same window, so the
    // read latencies include single-writer barriers.
    let update_handle = {
        let span = interval.mul_f64((REQS_PER_CLIENT * clients) as f64 / clients as f64);
        std::thread::spawn(move || {
            let mut client =
                Client::connect_with(addr, Duration::from_secs(60)).expect("updater connects");
            let gap = span.mul_f64(1.0 / (UPDATE_BATCHES as f64 + 1.0));
            let mut latencies = Vec::with_capacity(UPDATE_BATCHES);
            for b in 0..UPDATE_BATCHES {
                let scheduled = run_start + gap.mul_f64(b as f64 + 1.0);
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let ops: Vec<UpdateOp> = (0..4)
                    .map(|i| {
                        UpdateOp::Insert(
                            (0..dims)
                                .map(|d| Some(((b * 7 + i * 3 + d) % 90) as f64))
                                .collect(),
                        )
                    })
                    .collect();
                let ack = client.update(&ops).expect("update acked");
                assert_eq!(ack.applied, ops.len() as u64);
                latencies.push(scheduled.elapsed().as_secs_f64());
            }
            latencies
        })
    };

    let mut latencies: Vec<f64> = Vec::new();
    for h in reader_handles {
        latencies.extend(h.join().expect("reader thread"));
    }
    let update_latencies = update_handle.join().expect("updater thread");
    let wall = run_start.elapsed().as_secs_f64();

    // Server-side counters, then drain.
    let mut stats_client = Client::connect_with(addr, Duration::from_secs(30)).expect("stats");
    let stats = stats_client.stats().expect("stats answer");
    drop(stats_client);
    server.stop().expect("clean drain");

    let issued = REQS_PER_CLIENT * clients;
    let completed = latencies.len();
    assert_eq!(
        completed, issued,
        "every issued query answered exactly once"
    );
    assert_eq!(update_latencies.len(), UPDATE_BATCHES);
    assert_eq!(stats.seq, UPDATE_BATCHES as u64, "every batch serialized");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut upd = update_latencies;
    upd.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ServeCell {
        n,
        dims,
        missing,
        k,
        clients,
        offered_rps,
        issued,
        completed,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        throughput_rps: completed as f64 / wall,
        update_p50_ms: percentile_ms(&upd, 0.50),
        coalesced_batches: stats.coalesced_batches,
        overloaded: stats.overloaded,
    }
}

/// Run the grid, returning the printable table and the `BENCH_6.json`
/// document.
pub fn run(scale: Scale, seed: u64) -> (Table, String) {
    let cells: Vec<ServeCell> = serve_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();

    let mut t = Table::new(
        "TCP service — open-loop latency under mixed load (IND)",
        &[
            "N",
            "dims",
            "missing",
            "clients",
            "offered rps",
            "done/issued",
            "p50 (ms)",
            "p99 (ms)",
            "thr (rps)",
            "upd p50 (ms)",
            "coalesced",
        ],
    );
    for c in &cells {
        t.push(vec![
            c.n.to_string(),
            c.dims.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            c.clients.to_string(),
            format!("{:.0}", c.offered_rps),
            format!("{}/{}", c.completed, c.issued),
            format!("{:.2}", c.p50_ms),
            format!("{:.2}", c.p99_ms),
            format!("{:.1}", c.throughput_rps),
            format!("{:.2}", c.update_p50_ms),
            c.coalesced_batches.to_string(),
        ]);
    }
    (t, to_json(scale, seed, &cells))
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[ServeCell]) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-serve/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp serve\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}}},\n"
    ));
    s.push_str(&format!(
        "  \"protocol_version\": {},\n",
        tkd_serve::protocol::PROTOCOL_VERSION
    ));
    s.push_str("  \"load_model\": \"open-loop, latency from scheduled arrival\",\n");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": 100, \"k\": {}, \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.k
        ));
        s.push_str(&format!(
            "      \"clients\": {}, \"offered_rps\": {:.1}, \"issued\": {}, \
             \"completed\": {},\n",
            c.clients, c.offered_rps, c.issued, c.completed
        ));
        s.push_str(&format!(
            "      \"query_p50_ms\": {:.3}, \"query_p99_ms\": {:.3}, \
             \"throughput_rps\": {:.2},\n",
            c.p50_ms, c.p99_ms, c.throughput_rps
        ));
        s.push_str(&format!(
            "      \"update_p50_ms\": {:.3}, \"coalesced_batches\": {}, \
             \"overloaded\": {}\n",
            c.update_p50_ms, c.coalesced_batches, c.overloaded
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_cell_is_parity_checked_and_json_is_sane() {
        // A tiny fast cell: measure_cell asserts wire parity and
        // exactly-once completion internally.
        let cell = measure_cell((300, 3, 0.2, 5, 2, 80.0), 7);
        assert_eq!(cell.completed, cell.issued);
        assert!(cell.p50_ms >= 0.0 && cell.p99_ms >= cell.p50_ms);
        let json = to_json(Scale::Quick, 7, &[cell]);
        for needle in [
            "tkd-serve/v1",
            "available_parallelism",
            "query_p50_ms",
            "query_p99_ms",
            "throughput_rps",
            "protocol_version",
            "open-loop",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn grid_shapes() {
        assert_eq!(serve_grid(Scale::Quick).len(), 2);
        assert!(serve_grid(Scale::Paper).iter().any(|&(n, ..)| n >= 10_000));
    }
}
