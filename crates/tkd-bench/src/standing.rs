//! `repro --exp standing` — the continuous-query maintenance benchmark
//! (`BENCH_8.json`).
//!
//! For each `(n, dims, missing, k, batch_ops)` cell the harness drives
//! the **same** deterministic op-batch stream through three engines that
//! differ only in how their registered standing queries are maintained:
//!
//! * **patched** — `fallback_fraction = 1.0`: every effective batch is
//!   answered by the cache-walk patch, never a full re-query;
//! * **requery** — `fallback_fraction = 0.0`: every effective batch
//!   falls back to a full re-query (the architecture patching replaces);
//! * **mixed** — the default threshold (0.25): the adaptive policy the
//!   serve layer ships, exercising **both** paths so the artifact proves
//!   the fallback fires and is counted.
//!
//! A fourth engine with no registered queries isolates the base batch
//! cost, so `patch_overhead_s` / `requery_overhead_s` are the standing
//! maintenance alone. After the stream, every engine's standing result
//! is asserted **bit-identical** to re-querying that engine from scratch
//! — each number in the artifact is backed by the same parity guarantee
//! `tests/standing_parity.rs` pins.
//!
//! The JSON artifact (`tkd-standing/v1`) records
//! `hardware.available_parallelism` like the other BENCH files:
//! notification throughput is single-threaded and comparable across
//! machines, absolute times are not.

use crate::table::{secs, Table};
use crate::{time, Scale};
use tkd_core::dynamic::{CompactionPolicy, DynamicOptions};
use tkd_core::{Algorithm, BinChoice, DynamicEngine, EngineQuery, StandingSpec, UpdateOp};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::ObjectId;

/// Batches per measured stream.
const BATCHES: usize = 10;

/// One grid cell: `(n, dims, missing_rate, k, batch_ops)`.
pub type StandingPoint = (usize, usize, f64, usize, usize);

/// The churn grid. Quick is CI-sized; Paper adds the 50K cells. Multiple
/// batch sizes at fixed `n` expose how the patch-vs-requery gap tracks
/// the dirty fraction (bigger batches dirty more of the store, so the
/// adaptive threshold starts preferring the re-query).
pub fn standing_grid(scale: Scale) -> Vec<StandingPoint> {
    match scale {
        Scale::Quick => vec![
            (2_000, 6, 0.2, 8, 16),
            (5_000, 6, 0.2, 8, 16),
            (5_000, 6, 0.2, 8, 64),
            (5_000, 6, 0.4, 8, 16),
        ],
        Scale::Paper => vec![
            (10_000, 8, 0.1, 8, 32),
            (20_000, 8, 0.1, 8, 32),
            (50_000, 8, 0.1, 8, 32),
            (50_000, 8, 0.3, 8, 128),
        ],
    }
}

/// Measurements of one cell.
struct StandingCell {
    n: usize,
    dims: usize,
    missing: f64,
    k: usize,
    batch_ops: usize,
    /// Stream wall-clock with no standing queries registered.
    plain_s: f64,
    /// Stream wall-clock with never-fallback (pure patch) maintenance.
    patched_s: f64,
    /// Stream wall-clock with always-fallback (full re-query) maintenance.
    requery_s: f64,
    /// Stream wall-clock at the default adaptive threshold.
    mixed_s: f64,
    /// Standing maintenance alone (stream minus the plain baseline).
    patch_overhead_s: f64,
    /// Full re-query maintenance alone.
    requery_overhead_s: f64,
    /// `requery_s / patched_s` on raw stream totals.
    speedup: f64,
    /// Notifications emitted per second on the patched stream.
    notifications_per_s: f64,
    notifications: usize,
    /// Mixed-engine counters, summed over its queries: the fallback must
    /// actually fire for the adaptive policy to mean anything.
    mixed_patched: u64,
    mixed_fallbacks: u64,
    mixed_skipped: u64,
}

fn splitmix(h: &mut u64) -> u64 {
    *h = h.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The deterministic op stream for one cell (valid by construction):
/// 50% inserts, 25% deletes, 25% cell updates.
fn op_stream(point: StandingPoint, seed: u64) -> Vec<Vec<UpdateOp>> {
    let (n, dims, missing, _, batch_ops) = point;
    let cardinality = 100u64;
    let mut h = seed ^ 0x57A4_D1E5;
    let mut live: Vec<ObjectId> = (0..n as ObjectId).collect();
    let mut next_id = n as ObjectId;
    (0..BATCHES)
        .map(|_| {
            (0..batch_ops)
                .map(|_| {
                    let roll = splitmix(&mut h) % 100;
                    if roll < 50 || live.len() < 2 {
                        let row: Vec<Option<f64>> = (0..dims)
                            .map(|_| {
                                if splitmix(&mut h) % 100 < (missing * 100.0) as u64 {
                                    None
                                } else {
                                    Some((splitmix(&mut h) % cardinality) as f64)
                                }
                            })
                            .collect();
                        let row = if row.iter().all(Option::is_none) {
                            vec![Some(0.0); dims]
                        } else {
                            row
                        };
                        live.push(next_id);
                        next_id += 1;
                        UpdateOp::Insert(row)
                    } else if roll < 75 {
                        let pick = (splitmix(&mut h) as usize) % live.len();
                        UpdateOp::Delete(live.swap_remove(pick))
                    } else {
                        let id = live[(splitmix(&mut h) as usize) % live.len()];
                        UpdateOp::Set(
                            id,
                            (splitmix(&mut h) as usize) % dims,
                            Some((splitmix(&mut h) % cardinality) as f64),
                        )
                    }
                })
                .collect()
        })
        .collect()
}

fn engine_for(point: StandingPoint, seed: u64) -> DynamicEngine {
    let (n, dims, missing, _, _) = point;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 100,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    DynamicEngine::with_options(
        ds,
        DynamicOptions {
            bins: BinChoice::Auto,
            policy: CompactionPolicy::default(),
        },
    )
}

/// Drive the stream through one engine, returning (wall-clock,
/// notifications emitted). Panics if any op fails — the stream is valid
/// by construction.
fn drive(engine: &mut DynamicEngine, stream: &[Vec<UpdateOp>]) -> (f64, usize) {
    let mut notifications = 0usize;
    let (_, secs) = time(|| {
        for ops in stream {
            let report = engine.apply_ops(ops);
            assert!(report.error.is_none(), "stream is valid");
            notifications += report.notifications.len();
        }
    });
    (secs, notifications)
}

/// Assert each registered query's standing result is **bit-identical**
/// (entries, scores, tie order) to re-querying the engine from scratch
/// — the oracle discipline of `tests/standing_parity.rs`, re-checked
/// inside the harness so the published numbers cannot drift from the
/// guarantee.
fn assert_standing_parity(
    engine: &mut DynamicEngine,
    queries: &[(u64, Algorithm, usize)],
    tag: &str,
) {
    for &(id, alg, k) in queries {
        let got: Vec<(ObjectId, usize)> = engine
            .standing_result(id)
            .expect("registered")
            .iter()
            .map(|e| (e.id, e.score))
            .collect();
        let oracle: Vec<(ObjectId, usize)> = engine
            .query(&EngineQuery::new(k).algorithm(alg))
            .expect("BIG/IBIG supported")
            .iter()
            .map(|e| (e.id, e.score))
            .collect();
        assert_eq!(got, oracle, "{tag}: standing result diverged from re-query");
        let stats = engine.standing_stats(id).expect("registered");
        assert_eq!(
            stats.batches, BATCHES as u64,
            "{tag}: every batch maintained"
        );
    }
}

fn measure_cell(point: StandingPoint, seed: u64) -> StandingCell {
    let (n, dims, missing, k, batch_ops) = point;
    let stream = op_stream(point, seed);
    let register = |engine: &mut DynamicEngine, fallback: f64| -> Vec<(u64, Algorithm, usize)> {
        [Algorithm::Big, Algorithm::Ibig]
            .into_iter()
            .map(|alg| {
                let id = engine
                    .register(
                        StandingSpec::new(k)
                            .algorithm(alg)
                            .fallback_fraction(fallback),
                    )
                    .expect("valid spec");
                (id, alg, k)
            })
            .collect()
    };

    // Base cost: the identical stream with nothing registered.
    let mut plain = engine_for(point, seed);
    let (plain_s, _) = drive(&mut plain, &stream);

    // Pure patch (threshold 1.0 never falls back).
    let mut patched = engine_for(point, seed);
    let patched_q = register(&mut patched, 1.0);
    let (patched_s, notifications) = drive(&mut patched, &stream);

    // Pure re-query (threshold 0.0 always falls back).
    let mut requery = engine_for(point, seed);
    let requery_q = register(&mut requery, 0.0);
    let (requery_s, _) = drive(&mut requery, &stream);

    // The shipped default: adaptive, both paths exercised and counted.
    let mut mixed = engine_for(point, seed);
    let mixed_q = register(&mut mixed, 0.25);
    let (mixed_s, _) = drive(&mut mixed, &stream);

    // Parity: each engine's standing results equal a from-scratch
    // re-query of that same engine, entries/scores/tie order.
    assert_standing_parity(&mut patched, &patched_q, "patched");
    assert_standing_parity(&mut requery, &requery_q, "requery");
    assert_standing_parity(&mut mixed, &mixed_q, "mixed");

    let (mut mixed_patched, mut mixed_fallbacks, mut mixed_skipped) = (0u64, 0u64, 0u64);
    for id in mixed.standing_ids() {
        let s = mixed.standing_stats(id).expect("registered");
        mixed_patched += s.patched;
        mixed_fallbacks += s.fallbacks;
        mixed_skipped += s.skipped;
    }

    StandingCell {
        n,
        dims,
        missing,
        k,
        batch_ops,
        plain_s,
        patched_s,
        requery_s,
        mixed_s,
        patch_overhead_s: (patched_s - plain_s).max(0.0),
        requery_overhead_s: (requery_s - plain_s).max(0.0),
        speedup: requery_s / patched_s,
        notifications_per_s: notifications as f64 / patched_s,
        notifications,
        mixed_patched,
        mixed_fallbacks,
        mixed_skipped,
    }
}

/// Run the grid, returning the printable table and the `BENCH_8.json`
/// document.
pub fn run(scale: Scale, seed: u64) -> (Table, String) {
    let cells: Vec<StandingCell> = standing_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();

    let mut t = Table::new(
        "standing queries — patched maintenance vs full re-query (IND)",
        &[
            "N",
            "dims",
            "missing",
            "batch",
            "patched (s)",
            "requery (s)",
            "speedup",
            "mixed (s)",
            "patch/fallback/skip",
            "notif/s",
        ],
    );
    for c in &cells {
        t.push(vec![
            c.n.to_string(),
            c.dims.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            c.batch_ops.to_string(),
            secs(c.patched_s),
            secs(c.requery_s),
            format!("{:.2}x", c.speedup),
            secs(c.mixed_s),
            format!(
                "{}/{}/{}",
                c.mixed_patched, c.mixed_fallbacks, c.mixed_skipped
            ),
            format!("{:.0}", c.notifications_per_s),
        ]);
    }
    (t, to_json(scale, seed, &cells))
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[StandingCell]) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-standing/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp standing\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}}},\n"
    ));
    s.push_str(&format!("  \"batches\": {BATCHES},\n"));
    s.push_str("  \"op_mix\": {\"insert\": 0.5, \"delete\": 0.25, \"update\": 0.25},\n");
    s.push_str("  \"standing_queries\": [\"big\", \"ibig\"],\n");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": 100, \"k\": {}, \"batch_ops\": {}, \
             \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.k, c.batch_ops
        ));
        s.push_str(&format!(
            "      \"plain_s\": {:.6}, \"patched_s\": {:.6}, \
             \"requery_s\": {:.6}, \"mixed_s\": {:.6},\n",
            c.plain_s, c.patched_s, c.requery_s, c.mixed_s
        ));
        s.push_str(&format!(
            "      \"patch_overhead_s\": {:.6}, \"requery_overhead_s\": {:.6}, \
             \"requery_over_patched\": {:.2},\n",
            c.patch_overhead_s, c.requery_overhead_s, c.speedup
        ));
        s.push_str(&format!(
            "      \"notifications\": {}, \"notifications_per_s\": {:.1},\n",
            c.notifications, c.notifications_per_s
        ));
        s.push_str(&format!(
            "      \"mixed_counters\": {{\"patched\": {}, \"fallbacks\": {}, \
             \"skipped\": {}}}\n",
            c.mixed_patched, c.mixed_fallbacks, c.mixed_skipped
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_cell_is_parity_checked_and_json_is_sane() {
        // measure_cell asserts standing == re-query internally, on all
        // three maintained engines.
        let cell = measure_cell((400, 4, 0.2, 8, 12), 11);
        assert!(cell.patched_s > 0.0 && cell.requery_s > 0.0);
        // Two standing queries × BATCHES batches, one notification each.
        assert_eq!(cell.notifications, 2 * BATCHES);
        let json = to_json(Scale::Quick, 11, &[cell]);
        for needle in [
            "tkd-standing/v1",
            "available_parallelism",
            "requery_over_patched",
            "notifications_per_s",
            "mixed_counters",
            "fallbacks",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fallback_thresholds_split_the_counters() {
        // Pure-patch engine never falls back; pure-requery never patches.
        let point = (400, 4, 0.2, 8, 12);
        let stream = op_stream(point, 23);
        let mut never = engine_for(point, 23);
        let id_n = never
            .register(StandingSpec::new(8).fallback_fraction(1.0))
            .expect("valid");
        let mut always = engine_for(point, 23);
        let id_a = always
            .register(StandingSpec::new(8).fallback_fraction(0.0))
            .expect("valid");
        drive(&mut never, &stream);
        drive(&mut always, &stream);
        let sn = never.standing_stats(id_n).expect("registered");
        let sa = always.standing_stats(id_a).expect("registered");
        assert_eq!(sn.fallbacks, 0, "threshold 1.0 never re-queries");
        assert_eq!(sa.patched, 0, "threshold 0.0 never patches");
        assert!(sa.fallbacks > 0, "the fallback path actually ran");
        assert!(sn.patched > 0, "the patch path actually ran");
    }

    #[test]
    fn grid_shapes() {
        assert!(standing_grid(Scale::Quick)
            .iter()
            .all(|&(n, ..)| n <= 10_000));
        assert!(standing_grid(Scale::Paper)
            .iter()
            .any(|&(n, ..)| n == 50_000));
    }
}
