//! Minimal aligned-text / CSV table rendering for the repro harness.

/// A printable experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title, e.g. `"Fig. 12(b) — TKD cost on NBA vs k"`.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len(), "row arity");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with adaptive precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// Format bytes with a binary unit.
pub fn bytes(b: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = KB * 1024;
    if b >= MB {
        format!("{:.1}MB", b as f64 / MB as f64)
    } else if b >= KB {
        format!("{:.1}KB", b as f64 / KB as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.lines().count() >= 4);
        // All data lines equal width up to trailing spaces.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a"]);
        t.push(vec!["v,1".into()]);
        assert_eq!(t.to_csv(), "a\n\"v,1\"\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.12345), "0.1235");
        assert_eq!(secs(5.5), "5.50");
        assert_eq!(secs(250.0), "250");
        assert_eq!(bytes(100), "100B");
        assert_eq!(bytes(2048), "2.0KB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0MB");
    }
}
