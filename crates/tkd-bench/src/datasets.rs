//! The five evaluation workloads (three real-data simulators, IND, AC) at
//! either scale, with their IBIG bin configurations (§5.1's choices).

use crate::Scale;
use tkd_data::simulators::{movielens_like_with, nba_like_with, zillow_like_with};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::Dataset;

/// A named evaluation workload.
pub struct Workload {
    /// Display name ("MovieLens", "NBA", "Zillow", "IND", "AC").
    pub name: &'static str,
    /// The dataset.
    pub dataset: Dataset,
    /// Per-dimension IBIG bin counts (§5.1: 2 / 64 / 3000 / 32 / 32 at
    /// paper scale, scaled-down equivalents at quick scale).
    pub ibig_bins: Vec<usize>,
}

/// Default seed used by the harness.
pub const SEED: u64 = 42;

/// MovieLens-like workload.
pub fn movielens(scale: Scale, seed: u64) -> Workload {
    let (n, d) = match scale {
        Scale::Quick => (800, 30),
        Scale::Paper => (3_700, 60),
    };
    let dataset = movielens_like_with(n, d, seed);
    // Paper: 2 bins for MovieLens (domain of size 5).
    Workload {
        name: "MovieLens",
        dataset,
        ibig_bins: vec![2; d],
    }
}

/// NBA-like workload.
pub fn nba(scale: Scale, seed: u64) -> Workload {
    let n = match scale {
        Scale::Quick => 3_000,
        Scale::Paper => 16_000,
    };
    let dataset = nba_like_with(n, seed);
    // Paper: 64 bins for NBA.
    let bins = match scale {
        Scale::Quick => 32,
        Scale::Paper => 64,
    };
    Workload {
        name: "NBA",
        dataset,
        ibig_bins: vec![bins; 4],
    }
}

/// Zillow-like workload.
pub fn zillow(scale: Scale, seed: u64) -> Workload {
    let n = match scale {
        Scale::Quick => 8_000,
        Scale::Paper => 200_000,
    };
    let dataset = zillow_like_with(n, seed);
    // Paper: 6/10/35/3000/1000 per-dimension bins (3000 on lot area).
    let lot = match scale {
        Scale::Quick => 300,
        Scale::Paper => 3_000,
    };
    Workload {
        name: "Zillow",
        dataset,
        ibig_bins: tkd_data::simulators::zillow_bins(lot),
    }
}

fn synthetic(name: &'static str, dist: Distribution, scale: Scale, seed: u64) -> Workload {
    let cfg = SyntheticConfig {
        n: match scale {
            Scale::Quick => 8_000,
            Scale::Paper => 100_000,
        },
        dims: 10,
        cardinality: 100,
        missing_rate: 0.10,
        distribution: dist,
        seed,
    };
    let dataset = generate(&cfg);
    // Paper: 32 bins for IND and AC (≈ the Eq. 8 optimum of 29).
    Workload {
        name,
        dataset,
        ibig_bins: vec![32; cfg.dims],
    }
}

/// IND workload at the Table 2 defaults.
pub fn ind(scale: Scale, seed: u64) -> Workload {
    synthetic("IND", Distribution::Independent, scale, seed)
}

/// AC workload at the Table 2 defaults.
pub fn ac(scale: Scale, seed: u64) -> Workload {
    synthetic("AC", Distribution::AntiCorrelated, scale, seed)
}

/// The three real-data simulators.
pub fn real_workloads(scale: Scale, seed: u64) -> Vec<Workload> {
    vec![
        movielens(scale, seed),
        nba(scale, seed),
        zillow(scale, seed),
    ]
}

/// All five workloads in the paper's order.
pub fn all_workloads(scale: Scale, seed: u64) -> Vec<Workload> {
    vec![
        movielens(scale, seed),
        nba(scale, seed),
        zillow(scale, seed),
        ind(scale, seed),
        ac(scale, seed),
    ]
}

/// An IND workload with one overridden parameter (the Table 2 sweeps).
pub fn ind_with(
    scale: Scale,
    seed: u64,
    n: Option<usize>,
    dims: Option<usize>,
    missing: Option<f64>,
    cardinality: Option<usize>,
    dist: Distribution,
) -> Workload {
    let base_n = match scale {
        Scale::Quick => 8_000,
        Scale::Paper => 100_000,
    };
    let cfg = SyntheticConfig {
        n: n.unwrap_or(base_n),
        dims: dims.unwrap_or(10),
        cardinality: cardinality.unwrap_or(100),
        missing_rate: missing.unwrap_or(0.10),
        distribution: dist,
        seed,
    };
    let dims = cfg.dims;
    let dataset = generate(&cfg);
    let name = match dist {
        Distribution::Independent => "IND",
        Distribution::AntiCorrelated => "AC",
        Distribution::Correlated => "CO",
    };
    Workload {
        name,
        dataset,
        ibig_bins: vec![32; dims],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_have_expected_shapes() {
        let ws = all_workloads(Scale::Quick, SEED);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["MovieLens", "NBA", "Zillow", "IND", "AC"]);
        for w in &ws {
            assert_eq!(w.ibig_bins.len(), w.dataset.dims(), "{}", w.name);
            assert!(w.dataset.len() >= 800, "{}", w.name);
        }
    }

    #[test]
    fn sweep_overrides() {
        let w = ind_with(
            Scale::Quick,
            SEED,
            Some(1000),
            Some(5),
            Some(0.3),
            Some(50),
            Distribution::AntiCorrelated,
        );
        assert_eq!(w.dataset.len(), 1000);
        assert_eq!(w.dataset.dims(), 5);
        assert_eq!(w.name, "AC");
    }
}
