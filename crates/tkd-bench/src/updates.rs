//! `repro --exp updates` — the dynamic-update maintenance benchmark
//! (`BENCH_4.json`).
//!
//! For each `(n, dims, missing)` cell the harness:
//!
//! 1. builds a [`DynamicEngine`] over a synthetic catalog;
//! 2. applies a deterministic mixed op batch (60 % inserts, 25 % deletes,
//!    15 % cell updates), measuring the amortized per-op maintenance cost
//!    **including** the deferred queue re-sort the next query pays;
//! 3. rebuilds the engine from the final live snapshot from scratch —
//!    the per-change cost of the architecture the update layer replaces;
//! 4. asserts the dynamic top-k equals the rebuilt top-k bit for bit
//!    (ids translated), so every number in the artifact is backed by the
//!    parity guarantee;
//! 5. reports `rebuild_s / per_op_s` — how many updates one rebuild buys.
//!
//! The JSON artifact (`tkd-updates/v1`) records
//! `hardware.available_parallelism` like `BENCH_3.json`: per-op costs are
//! single-threaded and comparable across machines, absolute times are
//! not.

use crate::table::{secs, Table};
use crate::{time, Scale};
use tkd_core::dynamic::{CompactionPolicy, DynamicOptions};
use tkd_core::{Algorithm, BinChoice, DynamicEngine, EngineQuery, TkdQuery, UpdateOp};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::ObjectId;

/// Ops per measured batch.
const BATCH_OPS: usize = 500;

/// One grid cell: `(n, dims, missing_rate, k)`.
pub type UpdatePoint = (usize, usize, f64, usize);

/// The update workload grid. Quick is CI-sized; Paper adds the 50K cells.
/// Multiple `n` at fixed `(dims, missing)` expose how the
/// per-op-vs-rebuild gap scales with `n` (the rebuild grows strictly
/// faster, so the ratio must widen).
pub fn updates_grid(scale: Scale) -> Vec<UpdatePoint> {
    match scale {
        Scale::Quick => vec![
            (2_000, 6, 0.2, 8),
            (5_000, 6, 0.2, 8),
            (10_000, 6, 0.2, 8),
            (5_000, 6, 0.4, 8),
        ],
        Scale::Paper => vec![
            (10_000, 8, 0.1, 8),
            (20_000, 8, 0.1, 8),
            (50_000, 8, 0.1, 8),
            (50_000, 8, 0.3, 8),
        ],
    }
}

/// Measurements of one cell.
struct UpdateCell {
    n: usize,
    dims: usize,
    missing: f64,
    k: usize,
    /// Initial engine construction (== one rebuild at size n).
    build_s: f64,
    /// Whole-batch apply wall-clock.
    apply_s: f64,
    /// The deferred queue re-sort paid by the first query after a batch.
    refresh_s: f64,
    /// Amortized per-op cost including the batch's share of the refresh.
    per_op_s: f64,
    /// Rebuild-from-scratch over the final live data.
    rebuild_s: f64,
    /// Steady-state BIG query on the maintained store.
    big_query_s: f64,
    /// Steady-state IBIG query on the maintained store.
    ibig_query_s: f64,
    /// `rebuild_s / per_op_s`: updates one rebuild pays for.
    speedup: f64,
    live: usize,
    tombstones: usize,
    compactions: usize,
}

fn splitmix(h: &mut u64) -> u64 {
    *h = h.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn measure_cell(point: UpdatePoint, seed: u64) -> UpdateCell {
    let (n, dims, missing, k) = point;
    let cardinality = 100;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let (mut engine, build_s) = time(|| {
        DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Auto,
                policy: CompactionPolicy::default(),
            },
        )
    });
    // Deterministic op stream (valid by construction).
    let mut h = seed ^ 0xD1E5_CAFE;
    let mut live: Vec<ObjectId> = (0..n as ObjectId).collect();
    let mut next_id = n as ObjectId;
    let mut ops: Vec<UpdateOp> = Vec::with_capacity(BATCH_OPS);
    for _ in 0..BATCH_OPS {
        let roll = splitmix(&mut h) % 100;
        if roll < 60 || live.len() < 2 {
            let row: Vec<Option<f64>> = (0..dims)
                .map(|_| {
                    if splitmix(&mut h) % 100 < (missing * 100.0) as u64 {
                        None
                    } else {
                        Some((splitmix(&mut h) % cardinality as u64) as f64)
                    }
                })
                .collect();
            let row = if row.iter().all(Option::is_none) {
                vec![Some(0.0); dims]
            } else {
                row
            };
            ops.push(UpdateOp::Insert(row));
            live.push(next_id);
            next_id += 1;
        } else if roll < 85 {
            let pick = (splitmix(&mut h) as usize) % live.len();
            ops.push(UpdateOp::Delete(live.swap_remove(pick)));
        } else {
            let id = live[(splitmix(&mut h) as usize) % live.len()];
            ops.push(UpdateOp::Set(
                id,
                (splitmix(&mut h) as usize) % dims,
                Some((splitmix(&mut h) % cardinality as u64) as f64),
            ));
        }
    }

    let (_, apply_s) = time(|| engine.apply_all(&ops).expect("stream is valid"));
    // First query pays the deferred queue re-sort; isolate it by timing
    // the first query against a warm repeat.
    let big_q = EngineQuery::new(k);
    let (first, first_s) = time(|| engine.query(&big_q).expect("BIG supported"));
    let (_, warm_s) = time(|| engine.query(&big_q).expect("BIG supported"));
    let refresh_s = (first_s - warm_s).max(0.0);
    let per_op_s = (apply_s + refresh_s) / BATCH_OPS as f64;
    let big_query_s = warm_s;
    let (_, ibig_query_s) = time(|| {
        engine
            .query(&EngineQuery::new(k).algorithm(Algorithm::Ibig))
            .expect("IBIG supported")
    });

    // The replaced architecture: rebuild every artifact from the live
    // snapshot, then answer. Parity-check the answers while we are here.
    let snapshot = engine.snapshot();
    let ids = engine.live_ids();
    let (reference, rebuild_s) = time(|| TkdQuery::new(k).run(&snapshot));
    let translated: Vec<(ObjectId, usize)> = reference
        .iter()
        .map(|e| (ids[e.id as usize], e.score))
        .collect();
    let dynamic: Vec<(ObjectId, usize)> = first.iter().map(|e| (e.id, e.score)).collect();
    assert_eq!(
        dynamic, translated,
        "dynamic result diverged from rebuild (n={n}, missing={missing})"
    );

    let s = engine.stats();
    UpdateCell {
        n,
        dims,
        missing,
        k,
        build_s,
        apply_s,
        refresh_s,
        per_op_s,
        rebuild_s,
        big_query_s,
        ibig_query_s,
        speedup: rebuild_s / per_op_s,
        live: engine.len(),
        tombstones: engine.tombstones(),
        compactions: s.compactions,
    }
}

/// Run the grid, returning the printable table and the `BENCH_4.json`
/// document.
pub fn run(scale: Scale, seed: u64) -> (Table, String) {
    let cells: Vec<UpdateCell> = updates_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();

    let mut t = Table::new(
        "dynamic updates — amortized maintenance vs rebuild (IND)",
        &[
            "N",
            "dims",
            "missing",
            "ops",
            "build (s)",
            "per-op (s)",
            "rebuild (s)",
            "ops/rebuild",
            "BIG q (s)",
            "IBIG q (s)",
            "compactions",
        ],
    );
    for c in &cells {
        t.push(vec![
            c.n.to_string(),
            c.dims.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            BATCH_OPS.to_string(),
            secs(c.build_s),
            secs(c.per_op_s),
            secs(c.rebuild_s),
            format!("{:.0}x", c.speedup),
            secs(c.big_query_s),
            secs(c.ibig_query_s),
            c.compactions.to_string(),
        ]);
    }
    (t, to_json(scale, seed, &cells))
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[UpdateCell]) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-updates/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp updates\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}}},\n"
    ));
    s.push_str(&format!("  \"batch_ops\": {BATCH_OPS},\n"));
    s.push_str("  \"op_mix\": {\"insert\": 0.6, \"delete\": 0.25, \"update\": 0.15},\n");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": 100, \"k\": {}, \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.k
        ));
        s.push_str(&format!(
            "      \"build_s\": {:.6}, \"apply_s\": {:.6}, \"refresh_s\": {:.6},\n",
            c.build_s, c.apply_s, c.refresh_s
        ));
        s.push_str(&format!(
            "      \"per_op_s\": {:.9}, \"rebuild_s\": {:.6}, \
             \"ops_per_rebuild\": {:.1},\n",
            c.per_op_s, c.rebuild_s, c.speedup
        ));
        s.push_str(&format!(
            "      \"big_query_s\": {:.6}, \"ibig_query_s\": {:.6},\n",
            c.big_query_s, c.ibig_query_s
        ));
        s.push_str(&format!(
            "      \"state\": {{\"live\": {}, \"tombstones\": {}, \"compactions\": {}}}\n",
            c.live, c.tombstones, c.compactions
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_cell_is_parity_checked_and_json_is_sane() {
        // measure_cell asserts dynamic == rebuild internally.
        let cell = measure_cell((400, 4, 0.2, 8), 11);
        assert!(cell.live + cell.tombstones >= 400);
        assert!(cell.per_op_s > 0.0 && cell.rebuild_s > 0.0);
        let json = to_json(Scale::Quick, 11, &[cell]);
        for needle in [
            "tkd-updates/v1",
            "available_parallelism",
            "ops_per_rebuild",
            "\"batch_ops\": 500",
            "op_mix",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn grid_shapes() {
        assert!(updates_grid(Scale::Quick)
            .iter()
            .all(|&(n, ..)| n <= 10_000));
        assert!(updates_grid(Scale::Paper)
            .iter()
            .any(|&(n, ..)| n == 50_000));
    }
}
