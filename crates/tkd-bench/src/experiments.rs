//! One runner per table/figure of the paper's evaluation (§5).
//!
//! Each function regenerates the data behind the corresponding artifact and
//! returns printable [`Table`]s: the same rows/series the paper plots, with
//! our measured values. Absolute times differ from the paper's 2015 Java
//! testbed; the *shape* (who wins, trends, crossovers) is the reproduction
//! target — see EXPERIMENTS.md.

use crate::datasets::{self, Workload};
use crate::table::{bytes, secs, Table};
use crate::{time, Scale};
use tkd_bitvec::{Concise, Wah};
use tkd_core::{big, esb, ibig, maxscore, naive, ubb};
use tkd_data::synthetic::Distribution;
use tkd_impute::{factorize_impute, jaccard_distance, FactorizationConfig};
use tkd_index::{cost, BinnedBitmapIndex, BitmapIndex, CompressedColumns};
use tkd_model::{stats, ObjectId};

/// The k sweep of Figs. 12, 13 and 18 / Table 4.
pub const K_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];
/// Default k for the parameter sweeps (Table 2 default).
pub const K_DEFAULT: usize = 8;

// ---------------------------------------------------------------------------
// E1 — Table 2: parameter ranges and defaults
// ---------------------------------------------------------------------------

/// Reprint the paper's Table 2 parameter grid (defaults in brackets).
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — parameter ranges and default values",
        &["parameter", "range (default)"],
    );
    t.push(vec!["k".into(), "4, [8], 16, 32, 64".into()]);
    t.push(vec!["N".into(), "50K, [100K], 150K, 200K, 250K".into()]);
    t.push(vec!["dim".into(), "5, [10], 15, 20, 25".into()]);
    t.push(vec![
        "missing rate σ".into(),
        "0, 5, [10], 20, 30, 40 (%)".into(),
    ]);
    t.push(vec![
        "dimensional cardinality c".into(),
        "50, [100], 200, 400, 800".into(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// E2 — Fig. 10: WAH vs CONCISE on the real datasets
// ---------------------------------------------------------------------------

/// Fig. 10 — compression CPU time (a) and compression ratio (b) of WAH and
/// CONCISE over the bitmap indexes of the three real-like datasets.
pub fn fig10(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Fig. 10 — WAH vs CONCISE (bitmap compression on real datasets)",
        &["dataset", "codec", "CPU time (s)", "compression ratio"],
    );
    for w in datasets::real_workloads(scale, seed) {
        let index = BitmapIndex::build(&w.dataset);
        let (wah, t_wah) = time(|| CompressedColumns::<Wah>::from_bitmap(&index));
        let (con, t_con) = time(|| CompressedColumns::<Concise>::from_bitmap(&index));
        t.push(vec![
            w.name.into(),
            "WAH".into(),
            secs(t_wah),
            format!("{:.3}", wah.compression_ratio()),
        ]);
        t.push(vec![
            w.name.into(),
            "CONCISE".into(),
            secs(t_con),
            format!("{:.3}", con.compression_ratio()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E3 — Table 3: preprocessing time
// ---------------------------------------------------------------------------

/// Table 3 — preprocessing time of (a) `MaxScore` + incomparable sets,
/// (b) the bitmap index, (c) the binned bitmap index (incl. compression).
pub fn table3(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Table 3 — preprocessing time (seconds)",
        &[
            "dataset",
            "MaxScore+F",
            "bitmap index",
            "binned bitmap index",
        ],
    );
    for w in datasets::all_workloads(scale, seed) {
        let ds = &w.dataset;
        let (_, t_ms) = time(|| {
            let q = maxscore::maxscore_queue(ds);
            let f = stats::incomparable_sets(ds);
            (q, f)
        });
        let (_, t_bm) = time(|| BitmapIndex::build(ds));
        let (_, t_binned) = time(|| {
            let idx = BinnedBitmapIndex::build(ds, &w.ibig_bins);
            CompressedColumns::<Concise>::from_binned(&idx)
        });
        t.push(vec![w.name.into(), secs(t_ms), secs(t_bm), secs(t_binned)]);
    }
    t
}

// ---------------------------------------------------------------------------
// E4 — Fig. 11: BIG vs IBIG across bin counts
// ---------------------------------------------------------------------------

/// Fig. 11 — TKD cost and index sizes vs the number of bins `x`, one table
/// per dataset. The BIG row is the unbinned reference.
pub fn fig11(scale: Scale, seed: u64) -> Vec<Table> {
    let k = K_DEFAULT;
    let sweeps: [(&str, Vec<usize>); 5] = [
        ("MovieLens", vec![1, 2, 3, 4, 5]),
        ("NBA", vec![4, 8, 16, 32, 64, 128]),
        ("Zillow", vec![10, 30, 100, 300, 1000]),
        ("IND", vec![2, 4, 8, 16, 32, 64, 128]),
        ("AC", vec![2, 4, 8, 16, 32, 64, 128]),
    ];
    let mut tables = Vec::new();
    for w in datasets::all_workloads(scale, seed) {
        let xs = &sweeps
            .iter()
            .find(|(n, _)| *n == w.name)
            .expect("sweep defined")
            .1;
        let mut t = Table::new(
            format!(
                "Fig. 11 ({}) — BIG vs IBIG vs number of bins x (k = {k})",
                w.name
            ),
            &["config", "x", "CPU time (s)", "index size"],
        );
        // Unbinned BIG reference.
        let ctx = big::BigContext::build(&w.dataset);
        let (_, t_big) = time(|| big::big_with(&ctx, k));
        t.push(vec![
            "BIG".into(),
            "C (exact)".into(),
            secs(t_big),
            bytes(ctx.index().size_bytes()),
        ]);
        drop(ctx);
        for &x in xs {
            let bins = if w.name == "Zillow" {
                tkd_data::simulators::zillow_bins(x)
            } else {
                vec![x; w.dataset.dims()]
            };
            let ictx: ibig::IbigContext<'_, Concise> = ibig::IbigContext::build(&w.dataset, &bins);
            let (_, t_ibig) = time(|| ibig::ibig_with(&ictx, k));
            t.push(vec![
                "IBIG".into(),
                x.to_string(),
                secs(t_ibig),
                bytes(ictx.columns().size_bytes() as u64),
            ]);
        }
        tables.push(t);
    }
    tables
}

// ---------------------------------------------------------------------------
// E5/E6 — Figs. 12–13: CPU time vs k
// ---------------------------------------------------------------------------

/// Which algorithms a figure includes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AlgoSet {
    /// Naive + the four proposed algorithms (Fig. 12).
    WithNaive,
    /// The four proposed algorithms only (Figs. 13–17).
    Proposed,
}

/// Time the four (or five) algorithms on one workload at one k, with
/// preprocessing excluded (the paper reports it separately in Table 3).
fn run_algorithms(w: &Workload, k: usize, set: AlgoSet) -> Vec<(&'static str, f64)> {
    let ds = &w.dataset;
    let mut out = Vec::new();
    if set == AlgoSet::WithNaive {
        let (_, t) = time(|| naive::naive(ds, k));
        out.push(("Naive", t));
    }
    let (_, t) = time(|| esb::esb(ds, k));
    out.push(("ESB", t));
    let queue = maxscore::maxscore_queue(ds);
    let (_, t) = time(|| ubb::ubb_with_queue(ds, k, &queue));
    out.push(("UBB", t));
    let ctx = big::BigContext::build(ds);
    let (_, t) = time(|| big::big_with(&ctx, k));
    out.push(("BIG", t));
    drop(ctx);
    let ictx: ibig::IbigContext<'_, Concise> = ibig::IbigContext::build(ds, &w.ibig_bins);
    let (_, t) = time(|| ibig::ibig_with(&ictx, k));
    out.push(("IBIG", t));
    out
}

fn cost_vs_k(w: &Workload, set: AlgoSet, fig: &str) -> Table {
    let mut t = Table::new(
        format!("{fig} ({}) — TKD cost vs k", w.name),
        &["k", "Naive", "ESB", "UBB", "BIG", "IBIG"],
    );
    for k in K_SWEEP {
        let times = run_algorithms(w, k, set);
        let cell = |name: &str| {
            times
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| secs(*s))
                .unwrap_or_else(|| "-".into())
        };
        t.push(vec![
            k.to_string(),
            cell("Naive"),
            cell("ESB"),
            cell("UBB"),
            cell("BIG"),
            cell("IBIG"),
        ]);
    }
    t
}

/// Fig. 12 — CPU time vs k on the three real datasets (incl. Naive).
pub fn fig12(scale: Scale, seed: u64) -> Vec<Table> {
    datasets::real_workloads(scale, seed)
        .iter()
        .map(|w| cost_vs_k(w, AlgoSet::WithNaive, "Fig. 12"))
        .collect()
}

/// Fig. 13 — CPU time vs k on IND and AC.
pub fn fig13(scale: Scale, seed: u64) -> Vec<Table> {
    [datasets::ind(scale, seed), datasets::ac(scale, seed)]
        .iter()
        .map(|w| cost_vs_k(w, AlgoSet::Proposed, "Fig. 13"))
        .collect()
}

// ---------------------------------------------------------------------------
// E7 — Table 4: incomplete-TKD vs imputation-based TKD
// ---------------------------------------------------------------------------

/// Table 4 — Jaccard distance between the incomplete-data answer and the
/// answer after matrix-factorization imputation (NBA, the paper's setup:
/// 8 factors, L2 regularization, ≤ 50 iterations).
pub fn table4(scale: Scale, seed: u64) -> Table {
    let w = datasets::nba(scale, seed);
    let imputed = factorize_impute(&w.dataset, &FactorizationConfig::default());
    let mut t = Table::new(
        "Table 4 — Jaccard distance DJ (incomplete answer vs imputed answer, NBA)",
        &["k", "DJ", "shared answers", "majority shared (DJ < 2/3)"],
    );
    for k in K_SWEEP {
        let a: Vec<ObjectId> = ubb::ubb(&w.dataset, k).ids();
        let b: Vec<ObjectId> = ubb::ubb(&imputed, k).ids();
        let dj = jaccard_distance(&a, &b);
        let shared = a.iter().filter(|id| b.contains(id)).count();
        t.push(vec![
            k.to_string(),
            format!("{dj:.3}"),
            format!("{shared}/{k}"),
            if dj < 2.0 / 3.0 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E8–E11 — Figs. 14–17: parameter sweeps on IND and AC
// ---------------------------------------------------------------------------

/// One sweep point: label + overrides for (N, dims, missing rate, c).
type SweepPoint = (
    String,
    Option<usize>,
    Option<usize>,
    Option<f64>,
    Option<usize>,
);

fn sweep_table(
    fig: &str,
    param: &str,
    dist: Distribution,
    scale: Scale,
    seed: u64,
    values: &[SweepPoint],
) -> Table {
    let name = if dist == Distribution::Independent {
        "IND"
    } else {
        "AC"
    };
    let mut t = Table::new(
        format!("{fig} ({name}) — TKD cost vs {param} (k = {K_DEFAULT})"),
        &[param, "ESB", "UBB", "BIG", "IBIG"],
    );
    for (label, n, dims, missing, card) in values {
        let w = datasets::ind_with(scale, seed, *n, *dims, *missing, *card, dist);
        let times = run_algorithms(&w, K_DEFAULT, AlgoSet::Proposed);
        let cell = |x: &str| {
            times
                .iter()
                .find(|(nm, _)| *nm == x)
                .map(|(_, s)| secs(*s))
                .unwrap()
        };
        t.push(vec![
            label.clone(),
            cell("ESB"),
            cell("UBB"),
            cell("BIG"),
            cell("IBIG"),
        ]);
    }
    t
}

/// Fig. 14 — CPU time vs cardinality N.
pub fn fig14(scale: Scale, seed: u64) -> Vec<Table> {
    let ns: Vec<usize> = match scale {
        Scale::Quick => vec![2_000, 4_000, 6_000, 8_000, 10_000],
        Scale::Paper => vec![50_000, 100_000, 150_000, 200_000, 250_000],
    };
    let values: Vec<_> = ns
        .iter()
        .map(|&n| (format!("{}K", n / 1000), Some(n), None, None, None))
        .collect();
    [Distribution::Independent, Distribution::AntiCorrelated]
        .iter()
        .map(|&d| sweep_table("Fig. 14", "N", d, scale, seed, &values))
        .collect()
}

/// Fig. 15 — CPU time vs dimensionality.
pub fn fig15(scale: Scale, seed: u64) -> Vec<Table> {
    let values: Vec<_> = [5usize, 10, 15, 20, 25]
        .iter()
        .map(|&d| (d.to_string(), None, Some(d), None, None))
        .collect();
    [Distribution::Independent, Distribution::AntiCorrelated]
        .iter()
        .map(|&d| sweep_table("Fig. 15", "dim", d, scale, seed, &values))
        .collect()
}

/// Fig. 16 — CPU time vs missing rate σ.
pub fn fig16(scale: Scale, seed: u64) -> Vec<Table> {
    let values: Vec<_> = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40]
        .iter()
        .map(|&m| {
            (
                format!("{}%", (m * 100.0) as usize),
                None,
                None,
                Some(m),
                None,
            )
        })
        .collect();
    [Distribution::Independent, Distribution::AntiCorrelated]
        .iter()
        .map(|&d| sweep_table("Fig. 16", "missing rate", d, scale, seed, &values))
        .collect()
}

/// Fig. 17 — CPU time vs dimensional cardinality c.
pub fn fig17(scale: Scale, seed: u64) -> Vec<Table> {
    let values: Vec<_> = [50usize, 100, 200, 400, 800]
        .iter()
        .map(|&c| (c.to_string(), None, None, None, Some(c)))
        .collect();
    [Distribution::Independent, Distribution::AntiCorrelated]
        .iter()
        .map(|&d| {
            sweep_table(
                "Fig. 17",
                "dimensional cardinality",
                d,
                scale,
                seed,
                &values,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E12 — Fig. 18: pruning heuristic effectiveness
// ---------------------------------------------------------------------------

/// Fig. 18 — number of objects pruned by Heuristics 1/2/3 (IBIG) vs k, one
/// table per dataset. Counts are attributed to the first heuristic that
/// fires, as in the paper.
pub fn fig18(scale: Scale, seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for w in datasets::all_workloads(scale, seed) {
        let ictx: ibig::IbigContext<'_, Concise> =
            ibig::IbigContext::build(&w.dataset, &w.ibig_bins);
        let mut t = Table::new(
            format!("Fig. 18 ({}) — objects pruned per heuristic vs k", w.name),
            &["k", "Heuristic 1", "Heuristic 2", "Heuristic 3", "scored"],
        );
        for k in K_SWEEP {
            let r = ibig::ibig_with(&ictx, k);
            t.push(vec![
                k.to_string(),
                r.stats.h1_pruned.to_string(),
                r.stats.h2_pruned.to_string(),
                r.stats.h3_pruned.to_string(),
                r.stats.scored.to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}

// ---------------------------------------------------------------------------
// E13 — §4.5 optimal bin count
// ---------------------------------------------------------------------------

/// §4.5 — the closed-form optimal bin count x* (Eq. 8) against the
/// empirical argmin of the combined cost (Eq. 7).
pub fn binopt() -> Table {
    let mut t = Table::new(
        "§4.5 — optimal bin count: closed form (Eq. 8) vs empirical argmin (Eq. 7)",
        &["N", "σ", "x* (Eq. 8)", "argmin of Eq. 7"],
    );
    for (n, sigma) in [
        (100_000usize, 0.1),
        (16_000, 0.2),
        (50_000, 0.1),
        (200_000, 0.15),
        (250_000, 0.4),
    ] {
        let xstar = cost::optimal_bins(n, sigma);
        let mut best = (1usize, f64::INFINITY);
        for x in 1..=1000 {
            let c = cost::combined_cost(n, 10, sigma, x);
            if c < best.1 {
                best = (x, c);
            }
        }
        t.push(vec![
            n.to_string(),
            format!("{sigma}"),
            xstar.to_string(),
            best.0.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Ablation (beyond the paper): dense vs compressed IBIG columns
// ---------------------------------------------------------------------------

/// Ablation — IBIG with CONCISE columns vs IBIG reading the same binned
/// index uncompressed (space/time trade-off called out in DESIGN.md).
pub fn ablation_compression(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — IBIG columns: CONCISE vs WAH vs query-equivalent BIG",
        &["dataset", "variant", "CPU time (s)", "column store size"],
    );
    for w in [datasets::nba(scale, seed), datasets::ind(scale, seed)] {
        let con: ibig::IbigContext<'_, Concise> =
            ibig::IbigContext::build(&w.dataset, &w.ibig_bins);
        let (_, t_con) = time(|| ibig::ibig_with(&con, K_DEFAULT));
        t.push(vec![
            w.name.into(),
            "IBIG/CONCISE".into(),
            secs(t_con),
            bytes(con.columns().size_bytes() as u64),
        ]);
        drop(con);
        let wah: ibig::IbigContext<'_, Wah> = ibig::IbigContext::build(&w.dataset, &w.ibig_bins);
        let (_, t_wah) = time(|| ibig::ibig_with(&wah, K_DEFAULT));
        t.push(vec![
            w.name.into(),
            "IBIG/WAH".into(),
            secs(t_wah),
            bytes(wah.columns().size_bytes() as u64),
        ]);
        drop(wah);
        let ctx = big::BigContext::build(&w.dataset);
        let (_, t_big) = time(|| big::big_with(&ctx, K_DEFAULT));
        t.push(vec![
            w.name.into(),
            "BIG/dense".into(),
            secs(t_big),
            bytes(ctx.index().size_bytes()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Ablation (beyond the paper): complete-data skyline peeling vs our
// algorithms at sigma = 0
// ---------------------------------------------------------------------------

/// Ablation — on complete data (σ = 0) the classical skyline-peeling TKD
/// (Papadias et al., refs \[5\]–\[7\]) and the incomplete-data algorithms
/// coincide; this quantifies what the generalization costs where the old
/// method still applies.
pub fn ablation_baseline(scale: Scale, seed: u64) -> Table {
    let w = datasets::ind_with(
        scale,
        seed,
        None,
        None,
        Some(0.0),
        None,
        Distribution::Independent,
    );
    let k = K_DEFAULT;
    let mut t = Table::new(
        "Ablation — complete-data skyline peeling vs incomplete-data algorithms (IND, σ = 0)",
        &["algorithm", "CPU time (s)", "objects scored"],
    );
    let (r, t_peel) = time(|| {
        tkd_core::complete_baseline::skyline_peel_top_k(&w.dataset, k)
            .expect("σ = 0 data is complete")
    });
    t.push(vec![
        "skyline-peel".into(),
        secs(t_peel),
        r.stats.scored.to_string(),
    ]);
    let reference = r.scores();
    let queue = maxscore::maxscore_queue(&w.dataset);
    let (r, t_ubb) = time(|| ubb::ubb_with_queue(&w.dataset, k, &queue));
    assert_eq!(r.scores(), reference, "UBB must agree at σ=0");
    t.push(vec!["UBB".into(), secs(t_ubb), r.stats.scored.to_string()]);
    let ctx = big::BigContext::build(&w.dataset);
    let (r, t_big) = time(|| big::big_with(&ctx, k));
    assert_eq!(r.scores(), reference, "BIG must agree at σ=0");
    t.push(vec!["BIG".into(), secs(t_big), r.stats.scored.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape() {
        let t = table2();
        assert_eq!(t.rows.len(), 5);
        assert!(t.render().contains("[100K]"));
    }

    #[test]
    fn binopt_matches_paper_examples() {
        let t = binopt();
        // First row: N=100K, σ=0.1 → x* = 29.
        assert_eq!(t.rows[0][2], "29");
        // Second row: N=16K, σ=0.2 → x* = 17.
        assert_eq!(t.rows[1][2], "17");
    }

    #[test]
    fn k_sweep_is_the_papers() {
        assert_eq!(K_SWEEP, [4, 8, 16, 32, 64]);
    }
}
