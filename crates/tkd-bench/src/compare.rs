//! `repro --exp compare` — the CI performance-regression gate.
//!
//! Compares a freshly measured `tkd-perf/v1` snapshot against a committed
//! baseline and **fails** when a single-thread BIG or IBIG cell regresses
//! beyond the tolerance. Raw wall-clock is not comparable across machines
//! (the committed baseline and the CI runner differ), so the gate
//! compares **normalized** times: each algorithm's `query_s` divided by
//! the same run's `big_legacy` `query_s` — the allocating replica
//! measured in the same process acts as a per-machine calibration
//! constant. A real regression in the scratch engines moves the
//! normalized ratio regardless of the host; a merely slower runner moves
//! numerator and denominator together.
//!
//! Only workload cells present in *both* files are compared; zero overlap
//! is an error (a vacuous gate must not pass silently).
//!
//! When the *current* artifact carries a `kernels` section (PR-7
//! onward), the gate also checks each wide-lane kernel's speedup over
//! the in-process scalar reference against an absolute floor
//! ([`KERNEL_SPEEDUP_FLOOR`]). The check is self-calibrated on the
//! current run — scalar and wide lanes execute in the same process, so
//! no cross-machine baseline is needed and a merely slower runner moves
//! both sides together. Runs that dispatched the portable tier are
//! skipped (scalar and fallback are the same loop there), and baselines
//! without a kernels section never error — their query cells still gate.

use crate::table::Table;

/// The wide-lane kernels must beat the in-process scalar reference by at
/// least this factor on any non-portable dispatch tier (the PR-7
/// acceptance bar; the slowest tier measured, AVX2 Muła on a contended
/// single-core container, still clears 2.4x).
pub const KERNEL_SPEEDUP_FLOOR: f64 = 1.3;

// ---------------------------------------------------------------------------
// Minimal JSON reader (the workspace is offline — no serde). Supports the
// subset the BENCH artifacts use: objects, arrays, strings without escapes
// beyond \" and \\, numbers, booleans, null.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — fine for the artifacts' magnitudes).
    Num(f64),
    /// String (escapes `\"`, `\\`, `\/`, `\n`, `\t` supported).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// A human-readable message with the byte offset of the problem.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {}", *pos)),
                };
                expect(b, pos, b':')?;
                members.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            // Accumulate raw bytes and decode once at the closing quote,
            // so multi-byte UTF-8 content survives intact.
            let mut out: Vec<u8> = Vec::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return String::from_utf8(out)
                            .map(Json::Str)
                            .map_err(|_| format!("invalid UTF-8 in string ending at {}", *pos));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push(b'"'),
                            Some(b'\\') => out.push(b'\\'),
                            Some(b'/') => out.push(b'/'),
                            Some(b'n') => out.push(b'\n'),
                            Some(b't') => out.push(b'\t'),
                            other => {
                                return Err(format!("unsupported escape {other:?}"));
                            }
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        out.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// One compared cell.
struct Comparison {
    workload: String,
    algorithm: String,
    base_norm: f64,
    cur_norm: f64,
    ratio: f64,
    regressed: bool,
}

fn workload_key(cell: &Json) -> Option<String> {
    let w = cell.get("workload")?;
    Some(format!(
        "n={} dims={} missing={} card={} k={} {}",
        w.get("n")?.as_num()?,
        w.get("dims")?.as_num()?,
        w.get("missing_rate")?.as_num()?,
        w.get("cardinality")?.as_num()?,
        w.get("k")?.as_num()?,
        w.get("distribution")?.as_str()?
    ))
}

fn query_s(cell: &Json, name: &str) -> Option<f64> {
    cell.get("algorithms")?
        .as_arr()?
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some(name))?
        .get("query_s")?
        .as_num()
}

/// Run the regression gate.
///
/// Returns the report table, whether the gate **passed**, and any
/// warnings about a degraded comparison. A shape mismatch between the
/// two artifacts — one side predating the kernels section (the pre-PR-7
/// `tkd-perf/v1` layout), or a portable-tier dispatch — degrades to a
/// time-only comparison with a warning rather than a hard error: old
/// committed baselines must keep gating query times.
///
/// # Errors
/// Unreadable/ill-formed files, wrong schema, or zero overlapping cells.
pub fn run(
    baseline_path: &str,
    current_path: &str,
    tolerance: f64,
) -> Result<(Table, bool, Vec<String>), String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some("tkd-perf/v1") => Ok(doc),
            other => Err(format!(
                "{path}: expected schema tkd-perf/v1, found {other:?}"
            )),
        }
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    // Different seeds generate different datasets: normalized times are
    // not comparable across them, so refuse instead of flagging phantom
    // regressions.
    let seed_of = |doc: &Json| doc.get("seed").and_then(Json::as_num);
    if seed_of(&baseline) != seed_of(&current) {
        return Err(format!(
            "seed mismatch: {baseline_path} has {:?}, {current_path} has {:?} — \
             regenerate the snapshot with the baseline's seed",
            seed_of(&baseline),
            seed_of(&current)
        ));
    }
    let base_cells = baseline
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{baseline_path}: no cells"))?;
    let cur_cells = current
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{current_path}: no cells"))?;

    let mut rows: Vec<Comparison> = Vec::new();
    for cur in cur_cells {
        let Some(key) = workload_key(cur) else {
            continue;
        };
        let Some(base) = base_cells
            .iter()
            .find(|c| workload_key(c).as_deref() == Some(&key))
        else {
            continue;
        };
        for alg in ["big", "ibig"] {
            let (Some(bq), Some(bl), Some(cq), Some(cl)) = (
                query_s(base, alg),
                query_s(base, "big_legacy"),
                query_s(cur, alg),
                query_s(cur, "big_legacy"),
            ) else {
                return Err(format!("cell {key}: missing {alg}/big_legacy timings"));
            };
            if bq <= 0.0 || bl <= 0.0 || cq <= 0.0 || cl <= 0.0 {
                return Err(format!("cell {key}: non-positive timing"));
            }
            let base_norm = bq / bl;
            let cur_norm = cq / cl;
            let ratio = cur_norm / base_norm;
            rows.push(Comparison {
                workload: key.clone(),
                algorithm: alg.into(),
                base_norm,
                cur_norm,
                ratio,
                regressed: ratio > tolerance,
            });
        }
    }
    // The overlap check looks only at query rows: kernel-floor rows are
    // self-calibrated and would otherwise make a zero-overlap comparison
    // (e.g. quick snapshot vs paper baseline) pass vacuously.
    if rows.is_empty() {
        return Err(format!(
            "no overlapping workload cells between {baseline_path} and {current_path} — \
             the gate would be vacuous (check --scale)"
        ));
    }
    // Kernel-speedup gate: rides along when the *current* artifact
    // carries a kernels section. Self-calibrated on the current run —
    // scalar reference and dispatched kernel execute in the same
    // process, so the speedup must clear an absolute floor regardless
    // of how fast the runner is. The portable tier is exempt (scalar
    // and fallback are the same loop there, so the speedup is ~1 by
    // construction, not by regression). Baselines without a kernels
    // section never error: this check doesn't read the baseline.
    let mut warnings: Vec<String> = Vec::new();
    if let Some(ck) = current.get("kernels") {
        let dispatch = ck
            .get("dispatch")
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        let wide_tier = !dispatch.starts_with("portable");
        if baseline.get("kernels").is_none() {
            warnings.push(format!(
                "{baseline_path} has no kernels section (pre-kernels tkd-perf/v1 shape): \
                 query cells gate time-only against it; kernel speedups gate against \
                 the absolute {KERNEL_SPEEDUP_FLOOR}x floor instead"
            ));
        }
        if !wide_tier {
            warnings.push(format!(
                "kernel rows skipped: dispatch tier {dispatch:?} has no wide lanes to gate"
            ));
        }
        let cops = ck.get("ops").and_then(Json::as_arr).unwrap_or(&[]);
        for cur in wide_tier.then_some(cops).into_iter().flatten() {
            let Some(name) = cur.get("name").and_then(Json::as_str) else {
                continue;
            };
            let Some(cs) = cur.get("speedup").and_then(Json::as_num) else {
                continue;
            };
            if cs <= 0.0 {
                return Err(format!("kernel {name}: non-positive speedup"));
            }
            rows.push(Comparison {
                workload: format!("kernels ({dispatch}, floor {KERNEL_SPEEDUP_FLOOR}x)"),
                algorithm: name.to_owned(),
                base_norm: KERNEL_SPEEDUP_FLOOR,
                cur_norm: cs,
                // Same verdict convention as the query rows: ratio above
                // 1 means "worse than required", beyond it = regressed.
                ratio: KERNEL_SPEEDUP_FLOOR / cs,
                regressed: cs < KERNEL_SPEEDUP_FLOOR,
            });
        }
    } else if baseline.get("kernels").is_some() {
        warnings.push(format!(
            "{current_path} has no kernels section while {baseline_path} does: \
             comparison degrades to query times only"
        ));
    }
    let mut t = Table::new(
        format!(
            "perf regression gate — normalized query time vs baseline (tolerance {tolerance}x)"
        ),
        &[
            "workload",
            "algorithm",
            "baseline (norm)",
            "current (norm)",
            "ratio",
            "verdict",
        ],
    );
    let mut ok = true;
    for r in &rows {
        ok &= !r.regressed;
        t.push(vec![
            r.workload.clone(),
            r.algorithm.clone(),
            format!("{:.4}", r.base_norm),
            format!("{:.4}", r.cur_norm),
            format!("{:.2}x", r.ratio),
            if r.regressed { "REGRESSED" } else { "ok" }.into(),
        ]);
    }
    Ok((t, ok, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(big: f64, ibig: f64, legacy: f64) -> String {
        format!(
            r#"{{
  "schema": "tkd-perf/v1",
  "cells": [
    {{
      "workload": {{"n": 1000, "dims": 4, "missing_rate": 0.2, "cardinality": 100, "k": 8, "distribution": "IND"}},
      "algorithms": [
        {{"name": "ubb", "query_s": 1.0}},
        {{"name": "big", "query_s": {big}}},
        {{"name": "big_legacy", "query_s": {legacy}}},
        {{"name": "ibig", "query_s": {ibig}}}
      ]
    }}
  ]
}}"#
        )
    }

    fn write(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn parser_roundtrips_bench_shapes() {
        let j = parse_json(&doc(0.5, 1.5, 1.0)).unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some("tkd-perf/v1"));
        let cells = j.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(query_s(&cells[0], "big"), Some(0.5));
        assert!(parse_json("{\"a\": [1, 2.5, -3e-2], \"b\": null}").is_ok());
        assert!(parse_json("{oops}").is_err());
        assert!(parse_json("{} trailing").is_err());
        // Multi-byte UTF-8 survives decoding intact.
        let j = parse_json("{\"host\": \"Kārlis-runner — ✓\"}").unwrap();
        assert_eq!(j.get("host").unwrap().as_str(), Some("Kārlis-runner — ✓"));
    }

    #[test]
    fn gate_passes_when_normalized_times_hold() {
        // Current machine is 4x slower overall — normalized ratios equal.
        let b = write("cmp_base_ok.json", &doc(0.5, 1.5, 1.0));
        let c = write("cmp_cur_ok.json", &doc(2.0, 6.0, 4.0));
        let (_, ok, warnings) = run(&b, &c, 1.3).unwrap();
        assert!(ok);
        assert!(
            warnings.is_empty(),
            "same-shape artifacts warn: {warnings:?}"
        );
    }

    #[test]
    fn gate_fails_on_regression_beyond_tolerance() {
        let b = write("cmp_base_reg.json", &doc(0.5, 1.5, 1.0));
        // BIG got 1.5x slower relative to the calibration replica.
        let c = write("cmp_cur_reg.json", &doc(0.75, 1.5, 1.0));
        let (t, ok, _) = run(&b, &c, 1.3).unwrap();
        assert!(!ok);
        assert!(t.render().contains("REGRESSED"));
        // …but a looser tolerance admits it.
        let (_, ok, _) = run(&b, &c, 1.6).unwrap();
        assert!(ok);
    }

    fn with_kernels(doc: &str, popcount_speedup: f64, dispatch: &str) -> String {
        doc.trim_end().trim_end_matches('}').to_owned()
            + &format!(
                ", \"kernels\": {{\"dispatch\": \"{dispatch}\", \"words\": 4096, \"ops\": [\
                 {{\"name\": \"popcount\", \"scalar_s\": 1e-6, \"wide_s\": {:.9}, \
                 \"speedup\": {popcount_speedup}}}]}}}}",
                1e-6 / popcount_speedup
            )
    }

    #[test]
    fn kernel_speedup_below_the_floor_fails_the_gate() {
        let b = write("cmp_kern_base.json", &doc(0.5, 1.5, 1.0));
        // Wide lanes barely above parity on a wide tier: regressed.
        let c = write(
            "cmp_kern_cur.json",
            &with_kernels(&doc(0.5, 1.5, 1.0), 1.1, "avx512-vpopcntdq"),
        );
        let (t, ok, _) = run(&b, &c, 1.3).unwrap();
        assert!(!ok);
        assert!(t.render().contains("popcount"));
        // A healthy speedup passes — even against a baseline that
        // predates the kernels section (the check is self-calibrated).
        let c2 = write(
            "cmp_kern_cur_ok.json",
            &with_kernels(&doc(0.5, 1.5, 1.0), 4.8, "avx512-vpopcntdq"),
        );
        assert!(run(&b, &c2, 1.3).unwrap().1);
    }

    #[test]
    fn shape_mismatch_degrades_to_time_only_with_a_warning() {
        // Pre-kernels baseline (the pre-PR-7 BENCH_2.quick.json layout)
        // vs a kernels-bearing current: passes, with a warning naming the
        // degraded comparison — never a hard error.
        let old = write("cmp_shape_old.json", &doc(0.5, 1.5, 1.0));
        let new = write(
            "cmp_shape_new.json",
            &with_kernels(&doc(2.0, 6.0, 4.0), 4.8, "avx512-vpopcntdq"),
        );
        let (t, ok, warnings) = run(&old, &new, 1.3).unwrap();
        assert!(ok, "healthy run against an old baseline passes");
        assert!(
            warnings.iter().any(|w| w.contains("no kernels section")),
            "the degrade is announced: {warnings:?}"
        );
        assert!(
            t.render().contains("popcount"),
            "kernel rows still gate against the absolute floor"
        );
        // The degrade does not weaken the floor: a slow kernel still
        // fails even though the baseline predates the section.
        let slow = write(
            "cmp_shape_new_slow.json",
            &with_kernels(&doc(2.0, 6.0, 4.0), 1.1, "avx512-vpopcntdq"),
        );
        assert!(!run(&old, &slow, 1.3).unwrap().1);
        // The mirror-image mismatch (current lost the section) also
        // degrades to query times with a warning.
        let (_, ok, warnings) = run(&new, &old, 1.3).unwrap();
        assert!(ok, "time-only comparison still gates queries");
        assert!(
            warnings.iter().any(|w| w.contains("query times only")),
            "the lost coverage is announced: {warnings:?}"
        );
    }

    #[test]
    fn portable_dispatch_and_missing_sections_are_skipped_not_errors() {
        // Neither side has a kernels section: query cells still gate.
        let b = write("cmp_kern_none.json", &doc(0.5, 1.5, 1.0));
        assert!(run(&b, &b, 1.3).unwrap().1, "kernel-free artifacts gate");
        // Portable tier: scalar and fallback are the same loop, so a
        // ~1x speedup is structural — the kernel rows are skipped.
        let c = write(
            "cmp_kern_portable.json",
            &with_kernels(&doc(0.5, 1.5, 1.0), 1.0, "portable-autovec"),
        );
        let (t, ok, warnings) = run(&b, &c, 1.3).unwrap();
        assert!(ok, "portable-tier speedups must not be gated");
        assert!(
            warnings.iter().any(|w| w.contains("no wide lanes")),
            "portable skip is announced: {warnings:?}"
        );
        assert!(!t.render().contains("popcount"));
    }

    #[test]
    fn zero_overlap_is_an_error() {
        let b = write("cmp_base_disjoint.json", &doc(0.5, 1.5, 1.0));
        let other = doc(0.5, 1.5, 1.0).replace("\"n\": 1000", "\"n\": 2000");
        let c = write("cmp_cur_disjoint.json", &other);
        let err = run(&b, &c, 1.3).unwrap_err();
        assert!(err.contains("no overlapping"), "{err}");
        // Kernel-floor rows never substitute for query overlap: a current
        // artifact carrying a healthy kernels section must still error when
        // no workload cell matches the baseline.
        let ck = write(
            "cmp_cur_disjoint_kernels.json",
            &with_kernels(&other, 4.8, "avx512-vpopcntdq"),
        );
        let err = run(&b, &ck, 1.3).unwrap_err();
        assert!(err.contains("no overlapping"), "{err}");
    }

    #[test]
    fn seed_mismatch_is_an_error() {
        let with_seed = |seed: u64| {
            doc(0.5, 1.5, 1.0).replace(
                "\"schema\": \"tkd-perf/v1\",",
                &format!("\"schema\": \"tkd-perf/v1\",\n  \"seed\": {seed},"),
            )
        };
        let b = write("cmp_seed_a.json", &with_seed(42));
        let c = write("cmp_seed_b.json", &with_seed(43));
        assert!(run(&b, &c, 1.3).unwrap_err().contains("seed mismatch"));
        let c2 = write("cmp_seed_c.json", &with_seed(42));
        assert!(run(&b, &c2, 1.3).unwrap().1);
    }

    #[test]
    fn wrong_schema_is_an_error() {
        let b = write(
            "cmp_schema.json",
            "{\"schema\": \"tkd-updates/v1\", \"cells\": []}",
        );
        assert!(run(&b, &b, 1.3).unwrap_err().contains("tkd-perf/v1"));
    }
}
