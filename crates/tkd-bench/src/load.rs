//! `repro --exp load` — the zero-copy snapshot-load benchmark
//! (`BENCH_7.json`).
//!
//! Two measurements back the PR-7 performance claims:
//!
//! 1. **Load paths.** For each `(n, dims, missing)` cell the harness
//!    builds a [`DynamicEngine`] from scratch (the rebuild every process
//!    pays without persistence), saves a snapshot, then loads it back
//!    two ways: the *copying* decode (read the file, copy every word
//!    slab into owned storage) and the *zero-copy* decode
//!    ([`SnapshotBuf`] + [`decode_engine_shared`]: one aligned read,
//!    columns and dataset slabs borrow the buffer). Loads are min-of-N;
//!    the zero-copy path must beat the copying path on **every** cell,
//!    and the loaded engine's BIG/IBIG answers are pinned bit-for-bit
//!    to the fresh build before any ratio is reported.
//!
//! 2. **Kernels.** The wide-lane popcount kernels
//!    ([`tkd_bitvec::kernels`]) vs the naive [`kernels::scalar`]
//!    reference loops, min-of-N over fixed word arrays, annotated with
//!    the runtime-detected dispatch tier. The same measurement feeds the
//!    `tkd-perf/v1` artifact so `--exp compare` can gate kernel-speedup
//!    regressions; it is *self-calibrated* — scalar and wide lanes run
//!    in the same process, so the ratio is machine-portable.
//!
//! The JSON artifact (`tkd-load/v1`) records
//! `hardware.available_parallelism` and the kernel dispatch tier: the
//! ratios are the machine-portable quantities.

use crate::table::{secs, Table};
use crate::{time, Scale};
use tkd_bitvec::kernels;
use tkd_core::{Algorithm, DynamicEngine, EngineQuery};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_store::{decode_engine, decode_engine_shared, SnapshotBuf};

/// One grid cell: `(n, dims, missing_rate, k)`.
pub type LoadPoint = (usize, usize, f64, usize);

/// Load repetitions per path; the minimum is reported (cold-cache
/// effects are not the claim — decode cost is).
const LOAD_REPS: usize = 7;

/// The load workload grid — the persist quick grid, so `BENCH_5` and
/// `BENCH_7` cells are directly comparable.
pub fn load_grid(scale: Scale) -> Vec<LoadPoint> {
    crate::persist::persist_grid(scale)
}

/// Minimum-of-N timing.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = time(&mut f);
    for _ in 1..reps {
        let (o, t) = time(&mut f);
        if t < best {
            best = t;
            out = o;
        }
    }
    (out, best)
}

/// Measurements of one cell.
struct LoadCell {
    n: usize,
    dims: usize,
    missing: f64,
    k: usize,
    /// Engine construction from the raw dataset.
    rebuild_s: f64,
    /// File read + copying decode (every slab copied into owned Vecs).
    copy_load_s: f64,
    /// Aligned read + borrowing decode (slabs view the file buffer).
    zero_copy_load_s: f64,
    /// Snapshot size on disk.
    bytes: u64,
    /// Borrowed/total column counts of the zero-copy engine.
    borrowed_columns: usize,
    total_columns: usize,
    dataset_borrowed: bool,
    /// Steady-state BIG query on the zero-copy (borrowed) engine.
    big_query_s: f64,
}

fn measure_cell(point: LoadPoint, seed: u64) -> LoadCell {
    let (n, dims, missing, k) = point;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 100,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let (mut fresh, rebuild_s) = time(|| DynamicEngine::new(ds));
    let path = std::env::temp_dir().join(format!(
        "tkd_load_{n}_{dims}_{}_{seed}_{}.tkdsnap",
        (missing * 100.0) as u32,
        std::process::id()
    ));
    let bytes = tkd_store::save_engine(&path, &mut fresh).expect("save");

    // Time both load paths interleaved, keeping the min over reps. On the
    // smallest cells the copy being avoided is ~10us against a ~2ms decode,
    // which is below scheduler jitter on a busy machine — so when the
    // zero-copy path does not win outright, re-measure a couple of times
    // (keeping the overall mins) before judging.
    let mut copied = None;
    let mut loaded = None;
    let mut copy_load_s = f64::INFINITY;
    let mut zero_copy_load_s = f64::INFINITY;
    for _ in 0..3 {
        let (c, cs) = time_best(LOAD_REPS, || {
            let raw = std::fs::read(&path).expect("read");
            decode_engine(&raw).expect("copying decode")
        });
        let (l, ls) = time_best(LOAD_REPS, || {
            let buf = SnapshotBuf::open(&path).expect("open");
            decode_engine_shared(&buf).expect("borrowing decode")
        });
        copied = Some(c);
        loaded = Some(l);
        copy_load_s = copy_load_s.min(cs);
        zero_copy_load_s = zero_copy_load_s.min(ls);
        if zero_copy_load_s < copy_load_s {
            break;
        }
    }
    let (copied, loaded) = (copied.expect("measured"), loaded.expect("measured"));
    let (mut copied, mut loaded) = (copied, loaded);

    let report = loaded.storage_report();
    // Parity gate: both load paths answer bit-identically to the fresh
    // build, so every ratio below is backed by the guarantee.
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        let q = EngineQuery::new(k).algorithm(alg);
        let a = fresh.query(&q).expect("BIG/IBIG supported");
        let b = loaded.query(&q).expect("BIG/IBIG supported");
        let c = copied.query(&q).expect("BIG/IBIG supported");
        assert_eq!(
            a.entries(),
            b.entries(),
            "zero-copy load diverged from fresh build ({alg:?}, n={n}, missing={missing})"
        );
        assert_eq!(
            a.entries(),
            c.entries(),
            "copying load diverged from fresh build ({alg:?}, n={n}, missing={missing})"
        );
    }
    let (_, big_query_s) = time(|| loaded.query(&EngineQuery::new(k)).expect("BIG supported"));

    // The acceptance bar, enforced where the numbers are made: the
    // zero-copy path does strictly less work than the copying path and
    // must win on every cell. Allow 5% of slack beyond the retries above
    // so sub-jitter margins on tiny snapshots can't fail a run; a real
    // regression (the borrow path silently copying) blows far past it
    // on the large cells.
    assert!(
        zero_copy_load_s < copy_load_s * 1.05,
        "zero-copy load ({zero_copy_load_s:.6}s) did not beat the copying load \
         ({copy_load_s:.6}s) at n={n}, missing={missing} — the borrow path has regressed"
    );

    LoadCell {
        n,
        dims,
        missing,
        k,
        rebuild_s,
        copy_load_s,
        zero_copy_load_s,
        bytes,
        borrowed_columns: report.borrowed_columns,
        total_columns: report.total_columns,
        dataset_borrowed: report.dataset_borrowed,
        big_query_s,
    }
}

// ---------------------------------------------------------------------------
// Kernel microbenches (shared with `--exp perf` / the compare gate)
// ---------------------------------------------------------------------------

/// Word-array length per operand (32 KiB per array: larger than any
/// single column in the quick grids, small enough to stay cache-resident
/// so the measurement isolates the lanes, not memory bandwidth).
const KERNEL_WORDS: usize = 4096;
/// Kernel invocations per timed sample.
const KERNEL_ITERS: usize = 128;
/// Timed samples per operation; the minimum is reported.
const KERNEL_SAMPLES: usize = 9;

/// One kernel operation's scalar-vs-wide measurement.
pub struct KernelOp {
    /// Operation name (`popcount`, `and_count`, …).
    pub name: &'static str,
    /// Naive reference loop, seconds per call (min of samples).
    pub scalar_s: f64,
    /// Dispatched wide-lane kernel, seconds per call (min of samples).
    pub wide_s: f64,
}

impl KernelOp {
    /// `scalar_s / wide_s`.
    pub fn speedup(&self) -> f64 {
        self.scalar_s / self.wide_s
    }
}

/// The full kernel report: every fused-count operation plus the runtime
/// dispatch tier that produced the wide-lane numbers.
pub struct KernelReport {
    /// Runtime-selected tier (`avx512-vpopcntdq`, `avx2-mula`, …).
    pub dispatch: &'static str,
    /// Operand length in words.
    pub words: usize,
    /// Per-operation measurements.
    pub ops: Vec<KernelOp>,
}

/// Measure every kernel against its scalar reference, min-of-N, on
/// deterministic pseudo-random operands.
pub fn measure_kernels() -> KernelReport {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let a: Vec<u64> = (0..KERNEL_WORDS).map(|_| next()).collect();
    let b: Vec<u64> = (0..KERNEL_WORDS).map(|_| next()).collect();
    let c: Vec<u64> = (0..KERNEL_WORDS).map(|_| next()).collect();

    fn sample(mut f: impl FnMut() -> usize) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..KERNEL_SAMPLES {
            let start = std::time::Instant::now();
            let mut acc = 0usize;
            for _ in 0..KERNEL_ITERS {
                acc = acc.wrapping_add(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(acc);
            if elapsed < best {
                best = elapsed;
            }
        }
        best / KERNEL_ITERS as f64
    }
    // `black_box` the operands so neither loop gets folded or hoisted.
    let bb = std::hint::black_box::<&[u64]>;

    let ops = vec![
        KernelOp {
            name: "popcount",
            scalar_s: sample(|| kernels::scalar::popcount(bb(&a))),
            wide_s: sample(|| kernels::popcount(bb(&a))),
        },
        KernelOp {
            name: "and_count",
            scalar_s: sample(|| kernels::scalar::and_count(bb(&a), bb(&b))),
            wide_s: sample(|| kernels::and_count(bb(&a), bb(&b))),
        },
        KernelOp {
            name: "and_not_count",
            scalar_s: sample(|| kernels::scalar::and_not_count(bb(&a), bb(&b))),
            wide_s: sample(|| kernels::and_not_count(bb(&a), bb(&b))),
        },
        KernelOp {
            name: "count_and_andnot",
            scalar_s: sample(|| kernels::scalar::count_and_andnot(bb(&a), bb(&b), bb(&c))),
            wide_s: sample(|| kernels::count_and_andnot(bb(&a), bb(&b), bb(&c))),
        },
    ];
    KernelReport {
        dispatch: kernels::dispatch_name(),
        words: KERNEL_WORDS,
        ops,
    }
}

/// Render the kernel report as a JSON object (no trailing newline), with
/// every line prefixed by `indent` — shared by `tkd-load/v1` and the
/// `tkd-perf/v1` artifact the compare gate reads.
pub fn kernels_json(report: &KernelReport, indent: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!("{indent}{{\n"));
    s.push_str(&format!(
        "{indent}  \"dispatch\": \"{}\", \"words\": {},\n",
        report.dispatch, report.words
    ));
    s.push_str(&format!("{indent}  \"ops\": [\n"));
    for (i, op) in report.ops.iter().enumerate() {
        s.push_str(&format!(
            "{indent}    {{\"name\": \"{}\", \"scalar_s\": {:.9}, \"wide_s\": {:.9}, \
             \"speedup\": {:.3}}}{}\n",
            op.name,
            op.scalar_s,
            op.wide_s,
            op.speedup(),
            if i + 1 < report.ops.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("{indent}  ]\n"));
    s.push_str(&format!("{indent}}}"));
    s
}

/// The printable kernel table.
pub fn kernels_table(report: &KernelReport) -> Table {
    let mut t = Table::new(
        format!(
            "popcount kernels — wide lanes vs scalar reference (dispatch: {})",
            report.dispatch
        ),
        &["op", "words", "scalar (s)", "wide (s)", "speedup"],
    );
    for op in &report.ops {
        t.push(vec![
            op.name.into(),
            report.words.to_string(),
            format!("{:.3e}", op.scalar_s),
            format!("{:.3e}", op.wide_s),
            format!("{:.2}x", op.speedup()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Run the grid and the kernel microbenches, returning the printable
/// tables and the `BENCH_7.json` document.
pub fn run(scale: Scale, seed: u64) -> (Vec<Table>, String) {
    let cells: Vec<LoadCell> = load_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();
    let kernels = measure_kernels();

    let mut t = Table::new(
        "zero-copy snapshot load — borrow vs copy vs rebuild (IND)",
        &[
            "N",
            "dims",
            "missing",
            "rebuild (s)",
            "copy load (s)",
            "0-copy load (s)",
            "copy/0-copy",
            "rebuild/0-copy",
            "bytes",
            "borrowed",
        ],
    );
    for c in &cells {
        t.push(vec![
            c.n.to_string(),
            c.dims.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            secs(c.rebuild_s),
            secs(c.copy_load_s),
            secs(c.zero_copy_load_s),
            format!("{:.2}x", c.copy_load_s / c.zero_copy_load_s),
            format!("{:.1}x", c.rebuild_s / c.zero_copy_load_s),
            c.bytes.to_string(),
            format!("{}/{}", c.borrowed_columns, c.total_columns),
        ]);
    }
    let json = to_json(scale, seed, &cells, &kernels);
    (vec![t, kernels_table(&kernels)], json)
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[LoadCell], kernels: &KernelReport) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-load/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp load\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}, \"kernel_dispatch\": \"{}\"}},\n",
        kernels.dispatch
    ));
    s.push_str(&format!(
        "  \"format_version\": {},\n",
        tkd_store::FORMAT_VERSION
    ));
    s.push_str(&format!("  \"load_reps\": {LOAD_REPS},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": 100, \"k\": {}, \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.k
        ));
        s.push_str(&format!(
            "      \"rebuild_s\": {:.6}, \"copy_load_s\": {:.6}, \"zero_copy_load_s\": {:.6},\n",
            c.rebuild_s, c.copy_load_s, c.zero_copy_load_s
        ));
        s.push_str(&format!(
            "      \"copy_over_zero_copy\": {:.2}, \"rebuild_over_zero_copy\": {:.2},\n",
            c.copy_load_s / c.zero_copy_load_s,
            c.rebuild_s / c.zero_copy_load_s
        ));
        s.push_str(&format!(
            "      \"snapshot_bytes\": {}, \"borrowed_columns\": {}, \"total_columns\": {}, \
             \"dataset_borrowed\": {}, \"big_query_s\": {:.6}\n",
            c.bytes, c.borrowed_columns, c.total_columns, c.dataset_borrowed, c.big_query_s
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"kernels\":\n");
    s.push_str(&kernels_json(kernels, "  "));
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::parse_json;

    #[test]
    fn mini_cell_is_parity_checked_and_fully_borrowed() {
        // measure_cell asserts parity and zero-copy < copy internally.
        let cell = measure_cell((400, 4, 0.2, 8), 11);
        assert!(cell.rebuild_s > 0.0 && cell.zero_copy_load_s > 0.0 && cell.bytes > 0);
        assert_eq!(
            cell.borrowed_columns, cell.total_columns,
            "zero-copy load left columns copied"
        );
        assert!(cell.dataset_borrowed);
    }

    #[test]
    fn kernel_report_and_json_are_sane() {
        let report = measure_kernels();
        assert_eq!(report.ops.len(), 4);
        for op in &report.ops {
            assert!(op.scalar_s > 0.0 && op.wide_s > 0.0, "{}", op.name);
        }
        let json = kernels_json(&report, "");
        let parsed = parse_json(&json).expect("kernel JSON parses");
        assert_eq!(
            parsed.get("ops").and_then(|o| o.as_arr()).map(<[_]>::len),
            Some(4)
        );
        assert!(parsed.get("dispatch").is_some());
    }

    #[test]
    fn full_json_parses_with_kernels_section() {
        let cell = measure_cell((300, 3, 0.1, 4), 7);
        let report = measure_kernels();
        let json = to_json(Scale::Quick, 7, &[cell], &report);
        let doc = parse_json(&json).expect("BENCH_7 JSON parses");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("tkd-load/v1")
        );
        for needle in [
            "zero_copy_load_s",
            "copy_over_zero_copy",
            "borrowed_columns",
            "kernel_dispatch",
            "format_version",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        assert!(doc.get("kernels").is_some());
    }

    #[test]
    fn grid_matches_persist() {
        assert_eq!(
            load_grid(Scale::Quick),
            crate::persist::persist_grid(Scale::Quick)
        );
    }
}
