//! `repro --exp perf` — the reproducible performance baseline.
//!
//! Runs UBB / BIG / IBIG (plus a faithful replica of the pre-scratch
//! *allocating* BIG scorer as the regression reference) over a synthetic
//! `(N, dims, missing-rate)` grid, and renders the measurements both as a
//! printable [`Table`] and as machine-readable JSON (`BENCH_<pr>.json`).
//! Every later performance PR is judged against the trajectory these files
//! record; see README § Performance for the schema.
//!
//! Preprocessing (`MaxScore` queue + incomparable sets) is built **once
//! per cell** through [`Preprocessed`] and lent to every context, so the
//! per-algorithm `build_s` isolates index construction and `query_s`
//! isolates the scoring loop.

use crate::table::{secs, Table};
use crate::{time, Scale};
use tkd_core::{big, ibig, ubb, Preprocessed, PruneStats};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::ObjectId;

/// Query repetitions per measurement; the minimum is reported.
const QUERY_REPS: usize = 3;

/// One grid cell: `(n, dims, missing_rate, k)`.
pub type PerfPoint = (usize, usize, f64, usize);

/// The synthetic workload grid. `Quick` is CI-sized; `Paper` adds the
/// n = 50K cells the PR-2 acceptance baseline is pinned on. The k = 64
/// cells are Heuristic-2-heavy (late H1 termination forces thousands of
/// bitmap evaluations), which is where the scoring engine matters; the
/// k = 8 cells are the paper's Table 2 default.
pub fn perf_grid(scale: Scale) -> Vec<PerfPoint> {
    match scale {
        Scale::Quick => vec![
            (5_000, 8, 0.1, 8),
            (10_000, 8, 0.1, 64),
            (10_000, 8, 0.3, 8),
        ],
        Scale::Paper => vec![
            (10_000, 8, 0.1, 8),
            (50_000, 8, 0.1, 8),
            (50_000, 8, 0.1, 64),
            (50_000, 8, 0.3, 8),
            (50_000, 12, 0.1, 16),
        ],
    }
}

/// One measured algorithm run within a cell.
struct AlgoRun {
    name: &'static str,
    /// Context construction beyond the shared preprocessing (seconds).
    build_s: f64,
    /// Query wall-clock, minimum of [`QUERY_REPS`] runs (seconds).
    query_s: f64,
    stats: PruneStats,
}

/// One grid cell with its measurements.
struct Cell {
    n: usize,
    dims: usize,
    missing: f64,
    cardinality: usize,
    k: usize,
    preprocess_s: f64,
    runs: Vec<AlgoRun>,
}

impl Cell {
    fn run_of(&self, name: &str) -> &AlgoRun {
        self.runs
            .iter()
            .find(|r| r.name == name)
            .expect("algorithm measured")
    }

    /// End-to-end BIG query speedup of the scratch engine over the
    /// allocating replica.
    fn big_speedup(&self) -> f64 {
        self.run_of("big_legacy").query_s / self.run_of("big").query_s
    }
}

/// Minimum-of-N timing for sub-millisecond stability.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = time(&mut f);
    for _ in 1..reps {
        let (o, t) = time(&mut f);
        if t < best {
            best = t;
            out = o;
        }
    }
    (out, best)
}

fn measure_cell(point: PerfPoint, seed: u64) -> Cell {
    let (n, dims, missing, k) = point;
    let cardinality = 100;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let (pre, preprocess_s) = time(|| Preprocessed::build(&ds));
    let mut runs = Vec::new();

    // UBB: no context beyond the shared preprocessing.
    let (r, query_s) = time_best(QUERY_REPS, || ubb::ubb_with_queue(&ds, k, pre.queue()));
    let reference = r.scores();
    runs.push(AlgoRun {
        name: "ubb",
        build_s: 0.0,
        query_s,
        stats: r.stats,
    });

    // BIG — scratch engine.
    let (ctx, build_s) = time(|| big::BigContext::build_with(&ds, &pre));
    let mut scratch = ctx.scratch();
    let (r, query_s) = time_best(QUERY_REPS, || big::big_with_scratch(&ctx, k, &mut scratch));
    assert_eq!(r.scores(), reference, "BIG disagrees with UBB");
    runs.push(AlgoRun {
        name: "big",
        build_s,
        query_s,
        stats: r.stats,
    });

    // BIG — allocating replica of the pre-scratch scorer (the baseline the
    // speedup claim is measured against).
    let (r, query_s) = time_best(QUERY_REPS, || legacy_big_query(&ctx, k));
    assert_eq!(r.0, reference, "legacy BIG disagrees with UBB");
    runs.push(AlgoRun {
        name: "big_legacy",
        build_s,
        query_s,
        stats: r.1,
    });

    // IBIG — scratch engine, Eq. 8-ish bin count (32 at the Table 2
    // defaults, matching the paper's §5.1 configuration).
    let bins = vec![32usize; dims];
    let (ictx, build_s) =
        time(|| ibig::IbigContext::<'_, tkd_bitvec::Concise>::build_with(&ds, &bins, &pre));
    let mut iscratch = ictx.scratch();
    let (r, query_s) = time_best(QUERY_REPS, || {
        ibig::ibig_with_scratch(&ictx, k, &mut iscratch)
    });
    assert_eq!(r.scores(), reference, "IBIG disagrees with UBB");
    runs.push(AlgoRun {
        name: "ibig",
        build_s,
        query_s,
        stats: r.stats,
    });

    Cell {
        n,
        dims,
        missing,
        cardinality,
        k,
        preprocess_s,
        runs,
    }
}

/// Run the whole grid, returning the printable table and the JSON
/// document.
pub fn run(scale: Scale, seed: u64) -> (Table, String) {
    let cells: Vec<Cell> = perf_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();
    // Kernel microbenches ride along in the artifact so the compare gate
    // can flag wide-lane regressions; the scalar reference measured in
    // the same process is the calibration constant.
    let kernels = crate::load::measure_kernels();

    let mut t = Table::new(
        "perf baseline — query wall-clock (IND)",
        &[
            "N",
            "dims",
            "missing",
            "k",
            "algorithm",
            "build (s)",
            "query (s)",
            "scored",
            "pruned",
        ],
    );
    for c in &cells {
        for r in &c.runs {
            t.push(vec![
                c.n.to_string(),
                c.dims.to_string(),
                format!("{:.0}%", c.missing * 100.0),
                c.k.to_string(),
                r.name.into(),
                secs(r.build_s),
                secs(r.query_s),
                r.stats.scored.to_string(),
                r.stats.pruned().to_string(),
            ]);
        }
        t.push(vec![
            c.n.to_string(),
            c.dims.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            c.k.to_string(),
            "big speedup vs legacy".into(),
            "-".into(),
            format!("{:.2}x", c.big_speedup()),
            "-".into(),
            "-".into(),
        ]);
    }

    (t, to_json(scale, seed, &cells, &kernels))
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[Cell], kernels: &crate::load::KernelReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-perf/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp perf\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": {}, \"k\": {}, \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.cardinality, c.k
        ));
        s.push_str(&format!("      \"preprocess_s\": {:.6},\n", c.preprocess_s));
        s.push_str("      \"algorithms\": [\n");
        for (j, r) in c.runs.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"name\": \"{}\", \"build_s\": {:.6}, \"query_s\": {:.6}, \
                 \"h1_pruned\": {}, \"h2_pruned\": {}, \"h3_pruned\": {}, \"scored\": {}}}{}\n",
                r.name,
                r.build_s,
                r.query_s,
                r.stats.h1_pruned,
                r.stats.h2_pruned,
                r.stats.h3_pruned,
                r.stats.scored,
                if j + 1 < c.runs.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        s.push_str(&format!(
            "      \"big_speedup_vs_legacy\": {:.3}\n",
            c.big_speedup()
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"kernels\":\n");
    s.push_str(&crate::load::kernels_json(kernels, "  "));
    s.push_str("\n}\n");
    s
}

// ---------------------------------------------------------------------------
// Thread-scaling grid (`--exp perf --threads 1,2,4,8` → BENCH_3.json)
// ---------------------------------------------------------------------------

/// Size of the multi-user batch measured per thread count.
const BATCH_QUERIES: usize = 16;

/// One thread count's measurements within a cell.
struct ThreadRun {
    threads: usize,
    /// Engine construction (preprocessing + sharded context build).
    build_s: f64,
    /// Single-query wall-clock, all threads cooperating (min of reps).
    big_query_s: f64,
    ibig_query_s: f64,
    /// Wall-clock of a [`BATCH_QUERIES`]-query mixed BIG/IBIG batch
    /// through `query_many` (worker-per-query serving).
    batch_s: f64,
}

/// One grid cell of the thread-scaling experiment.
struct ThreadCell {
    n: usize,
    dims: usize,
    missing: f64,
    cardinality: usize,
    k: usize,
    /// Sequential scratch-engine baselines (the PR-2 engines).
    seq_big_s: f64,
    seq_ibig_s: f64,
    runs: Vec<ThreadRun>,
}

fn measure_thread_cell(point: PerfPoint, seed: u64, threads: &[usize]) -> ThreadCell {
    use tkd_core::{Algorithm, EngineQuery, ParallelEngine};
    let (n, dims, missing, k) = point;
    let cardinality = 100;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let bins = vec![32usize; dims];
    // Sequential baselines (shared preprocessing, as in the perf grid).
    let pre = Preprocessed::build(&ds);
    let ctx = big::BigContext::build_with(&ds, &pre);
    let mut scratch = ctx.scratch();
    let (seq_big, seq_big_s) =
        time_best(QUERY_REPS, || big::big_with_scratch(&ctx, k, &mut scratch));
    let ictx = ibig::IbigContext::<'_, tkd_bitvec::Concise>::build_with(&ds, &bins, &pre);
    let mut iscratch = ictx.scratch();
    let (seq_ibig, seq_ibig_s) = time_best(QUERY_REPS, || {
        ibig::ibig_with_scratch(&ictx, k, &mut iscratch)
    });

    let batch: Vec<EngineQuery> = (0..BATCH_QUERIES)
        .map(|i| {
            EngineQuery::new(k).algorithm(if i % 2 == 0 {
                Algorithm::Big
            } else {
                Algorithm::Ibig
            })
        })
        .collect();

    let mut runs = Vec::with_capacity(threads.len());
    for &t in threads {
        let (engine, build_s) = time(|| {
            ParallelEngine::builder(&ds)
                .threads(t)
                .shards(t)
                .bins(bins.clone())
                .build()
        });
        let big_q = EngineQuery::new(k);
        let ibig_q = EngineQuery::new(k).algorithm(Algorithm::Ibig);
        // Warm the pools before timing.
        let warm = engine.query(&big_q);
        assert_eq!(
            warm.entries(),
            seq_big.entries(),
            "parallel BIG diverged from sequential (threads={t})"
        );
        let warm = engine.query(&ibig_q);
        assert_eq!(
            warm.entries(),
            seq_ibig.entries(),
            "parallel IBIG diverged from sequential (threads={t})"
        );
        let (_, big_query_s) = time_best(QUERY_REPS, || engine.query(&big_q));
        let (_, ibig_query_s) = time_best(QUERY_REPS, || engine.query(&ibig_q));
        let (_, batch_s) = time_best(QUERY_REPS, || engine.query_many(&batch));
        runs.push(ThreadRun {
            threads: t,
            build_s,
            big_query_s,
            ibig_query_s,
            batch_s,
        });
    }
    ThreadCell {
        n,
        dims,
        missing,
        cardinality,
        k,
        seq_big_s,
        seq_ibig_s,
        runs,
    }
}

/// Run the thread-scaling grid, returning the printable table and the
/// `BENCH_3.json` document.
pub fn run_threads(scale: Scale, seed: u64, threads: &[usize]) -> (Table, String) {
    let cells: Vec<ThreadCell> = perf_grid(scale)
        .into_iter()
        .map(|p| measure_thread_cell(p, seed, threads))
        .collect();

    let mut t = Table::new(
        "thread scaling — parallel engine query wall-clock (IND)",
        &[
            "N",
            "dims",
            "missing",
            "k",
            "threads",
            "build (s)",
            "BIG (s)",
            "IBIG (s)",
            "batch16 (s)",
            "BIG vs seq",
            "BIG vs 1T",
        ],
    );
    for c in &cells {
        let one_t = c
            .runs
            .iter()
            .find(|r| r.threads == 1)
            .map(|r| r.big_query_s);
        for r in &c.runs {
            t.push(vec![
                c.n.to_string(),
                c.dims.to_string(),
                format!("{:.0}%", c.missing * 100.0),
                c.k.to_string(),
                r.threads.to_string(),
                secs(r.build_s),
                secs(r.big_query_s),
                secs(r.ibig_query_s),
                secs(r.batch_s),
                format!("{:.2}x", c.seq_big_s / r.big_query_s),
                one_t
                    .map(|b| format!("{:.2}x", b / r.big_query_s))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    (t, threads_to_json(scale, seed, &cells))
}

/// Hand-rolled JSON for the thread-scaling artifact (offline — no serde).
fn threads_to_json(scale: Scale, seed: u64, cells: &[ThreadCell]) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-perf-threads/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp perf --threads\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    // Speedup claims are only meaningful relative to the cores the run
    // actually had; CI containers are often single-core.
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}}},\n"
    ));
    s.push_str(&format!("  \"batch_queries\": {BATCH_QUERIES},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": {}, \"k\": {}, \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.cardinality, c.k
        ));
        s.push_str(&format!(
            "      \"sequential\": {{\"big_query_s\": {:.6}, \"ibig_query_s\": {:.6}}},\n",
            c.seq_big_s, c.seq_ibig_s
        ));
        s.push_str("      \"threads\": [\n");
        for (j, r) in c.runs.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"build_s\": {:.6}, \"big_query_s\": {:.6}, \
                 \"ibig_query_s\": {:.6}, \"batch_s\": {:.6}, \
                 \"big_speedup_vs_seq\": {:.3}, \"ibig_speedup_vs_seq\": {:.3}}}{}\n",
                r.threads,
                r.build_s,
                r.big_query_s,
                r.ibig_query_s,
                r.batch_s,
                c.seq_big_s / r.big_query_s,
                c.seq_ibig_s / r.ibig_query_s,
                if j + 1 < c.runs.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------------------------
// Allocating BIG replica (the pre-PR-2 scorer), via public APIs only.
// ---------------------------------------------------------------------------

/// Bounded top-k candidate set replicating `tkd_core::topk::TopK`'s
/// semantics (ascending by `(score, Reverse(id))`, strict replacement) so
/// the legacy traversal is identical to the real driver's.
struct MiniTopK {
    k: usize,
    /// `(score, id)`, worst candidate first.
    entries: Vec<(usize, ObjectId)>,
}

impl MiniTopK {
    fn new(k: usize) -> Self {
        MiniTopK {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    fn tau(&self) -> Option<usize> {
        if self.entries.len() == self.k {
            self.entries.first().map(|e| e.0)
        } else {
            None
        }
    }

    fn prunes(&self, bound: usize) -> bool {
        matches!(self.tau(), Some(t) if bound <= t)
    }

    fn offer(&mut self, id: ObjectId, score: usize) {
        if self.k == 0 {
            return;
        }
        let key = (score, std::cmp::Reverse(id));
        if self.entries.len() < self.k {
            let pos = self
                .entries
                .partition_point(|&(s, i)| (s, std::cmp::Reverse(i)) < key);
            self.entries.insert(pos, (score, id));
        } else if score > self.entries[0].0 {
            self.entries.remove(0);
            let pos = self
                .entries
                .partition_point(|&(s, i)| (s, std::cmp::Reverse(i)) < key);
            self.entries.insert(pos, (score, id));
        }
    }

    /// Scores descending (the shape `TkdResult::scores` reports).
    fn scores(&self) -> Vec<usize> {
        self.entries.iter().rev().map(|e| e.0).collect()
    }
}

/// The original allocating BIG-Score: clones `Q` and `P` columns per
/// object, materializes `Q − P`, compares raw `f64`s in the tie loop.
fn legacy_big_score(ctx: &big::BigContext<'_>, o: ObjectId, top: &MiniTopK) -> Option<usize> {
    let ds = ctx.dataset();
    let q = ctx.index().q_vec(o);
    let max_bit_score = q.count_ones();
    if top.prunes(max_bit_score) {
        return None;
    }
    let p = ctx.index().p_vec(o);
    let f = ctx.incomparable(o);
    let g = p.count_ones() - p.and_count(f);
    let qmp = q.and_not(&p);
    let o_mask = ds.mask(o);
    let mut non_d = 0usize;
    for pid in qmp.iter_ones() {
        let pid = pid as ObjectId;
        let common = o_mask.and(ds.mask(pid));
        let all_equal = common
            .iter()
            .all(|d| ds.raw_value(o, d) == ds.raw_value(pid, d));
        if all_equal {
            non_d += 1;
        }
    }
    let l = qmp.count_ones() - non_d;
    Some(g + l)
}

/// The legacy Algorithm 4 driver; returns `(scores descending, stats)`.
fn legacy_big_query(ctx: &big::BigContext<'_>, k: usize) -> (Vec<usize>, PruneStats) {
    let mut top = MiniTopK::new(k);
    let mut stats = PruneStats::default();
    let queue = ctx.preprocessed().queue();
    for (visited, &(o, max_score)) in queue.iter().enumerate() {
        if top.prunes(max_score) {
            stats.h1_pruned = queue.len() - visited;
            break;
        }
        match legacy_big_score(ctx, o, &top) {
            None => stats.h2_pruned += 1,
            Some(score) => {
                stats.scored += 1;
                top.offer(o, score);
            }
        }
    }
    (top.scores(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_replica_matches_engine_and_json_is_sane() {
        let ds = generate(&SyntheticConfig {
            n: 600,
            dims: 5,
            cardinality: 40,
            missing_rate: 0.2,
            distribution: Distribution::Independent,
            seed: 11,
        });
        let pre = Preprocessed::build(&ds);
        let ctx = big::BigContext::build_with(&ds, &pre);
        for k in [1usize, 4, 16] {
            let engine = big::big_with(&ctx, k);
            let (scores, stats) = legacy_big_query(&ctx, k);
            assert_eq!(engine.scores(), scores, "k={k}");
            assert_eq!(engine.stats, stats, "k={k}");
        }
    }

    #[test]
    fn grid_shapes() {
        assert!(perf_grid(Scale::Quick).iter().all(|&(n, ..)| n <= 10_000));
        assert!(perf_grid(Scale::Paper).iter().any(|&(n, ..)| n == 50_000));
    }

    #[test]
    fn thread_cell_parity_and_json_shape() {
        // A miniature cell: the engine must agree with the sequential
        // baselines at every thread count (asserted inside), and the JSON
        // must carry the schema, hardware, and speedup fields.
        let cell = measure_thread_cell((700, 4, 0.2, 8), 11, &[1, 2]);
        assert_eq!(cell.runs.len(), 2);
        let json = threads_to_json(Scale::Quick, 11, &[cell]);
        for needle in [
            "tkd-perf-threads/v1",
            "available_parallelism",
            "big_speedup_vs_seq",
            "\"threads\": 2",
            "batch_s",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
