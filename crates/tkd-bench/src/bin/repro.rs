//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! Usage: repro [--exp LIST] [--scale quick|paper] [--seed N] [--out DIR]
//!              [--bench-out FILE] [--threads 1,2,4,8]
//!              [--baseline FILE --current FILE [--tolerance R]]
//!
//!   --exp        comma-separated subset of:
//!                table2,fig10,table3,fig11,fig12,fig13,table4,
//!                fig14,fig15,fig16,fig17,fig18,binopt,ablation,baseline,
//!                perf,updates,persist,serve,load,standing,cluster,compare
//!                (default: all paper artifacts; `perf`, `updates`,
//!                `persist`, `serve`, `load`, `standing`, `cluster`, and
//!                `compare` run only when requested)
//!   --scale      quick (default) or paper (the paper's dataset sizes)
//!   --seed       RNG seed (default 42)
//!   --out        also write each table as CSV into DIR
//!   --threads    with `--exp perf`: run the parallel-engine
//!                thread-scaling grid over the given thread counts
//!   --bench-out  where `--exp perf` / `--exp updates` / `--exp persist`
//!                / `--exp serve` / `--exp load` writes its JSON
//!                (default: BENCH_2.json, BENCH_3.json with --threads,
//!                BENCH_4.json for updates, BENCH_5.json for persist,
//!                BENCH_6.json for serve, BENCH_7.json for load,
//!                BENCH_8.json for standing, BENCH_10.json for cluster)
//!   --baseline   with `--exp compare`: the committed tkd-perf/v1 file
//!   --current    with `--exp compare`: the freshly measured snapshot
//!   --tolerance  with `--exp compare`: allowed normalized-time ratio
//!                before a cell counts as regressed (default 1.3);
//!                any regression exits non-zero
//! ```

use std::collections::BTreeSet;
use tkd_bench::{
    cluster, compare, experiments as exp, load, perf, persist, serve, standing, table::Table,
    updates, Scale,
};

/// Every experiment name `--exp` accepts; the single source of truth for
/// validation and the usage text.
const KNOWN: [&str; 23] = [
    "table2", "fig10", "table3", "fig11", "fig12", "fig13", "table4", "fig14", "fig15", "fig16",
    "fig17", "fig18", "binopt", "ablation", "baseline", "perf", "updates", "persist", "serve",
    "load", "standing", "cluster", "compare",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exps: Option<BTreeSet<String>> = None;
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut out_dir: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut threads: Option<Vec<usize>> = None;
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut tolerance = 1.3f64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let list = match args.get(i) {
                    Some(l) => l,
                    None => usage("missing value for --exp"),
                };
                exps = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    _ => usage("--scale must be quick or paper"),
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => usage("--seed must be an integer"),
                };
            }
            "--out" => {
                i += 1;
                out_dir = match args.get(i) {
                    Some(d) => Some(d.clone()),
                    None => usage("missing value for --out"),
                };
            }
            "--bench-out" => {
                i += 1;
                bench_out = match args.get(i) {
                    Some(f) => Some(f.clone()),
                    None => usage("missing value for --bench-out"),
                };
            }
            "--threads" => {
                i += 1;
                let list = match args.get(i) {
                    Some(l) => l,
                    None => usage("missing value for --threads"),
                };
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                threads = match parsed {
                    Ok(v) if !v.is_empty() && v.iter().all(|&t| t >= 1) => Some(v),
                    _ => usage("--threads expects a comma-separated list of positive integers"),
                };
            }
            "--baseline" => {
                i += 1;
                baseline = match args.get(i) {
                    Some(f) => Some(f.clone()),
                    None => usage("missing value for --baseline"),
                };
            }
            "--current" => {
                i += 1;
                current = match args.get(i) {
                    Some(f) => Some(f.clone()),
                    None => usage("missing value for --current"),
                };
            }
            "--tolerance" => {
                i += 1;
                tolerance = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1.0 => v,
                    _ => usage("--tolerance must be a ratio >= 1.0"),
                };
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(set) = &exps {
        for name in set {
            if !KNOWN.contains(&name.as_str()) {
                usage(&format!("unknown experiment {name:?}"));
            }
        }
    }
    if threads.is_some() && !exps.as_ref().is_some_and(|set| set.contains("perf")) {
        usage("--threads requires --exp perf");
    }
    let want_compare = exps.as_ref().is_some_and(|set| set.contains("compare"));
    let wants = |name: &str| exps.as_ref().is_some_and(|set| set.contains(name));
    let bench_writers = [
        "perf", "updates", "persist", "serve", "load", "standing", "cluster",
    ]
    .iter()
    .filter(|e| wants(e))
    .count();
    if bench_out.is_some() && bench_writers > 1 {
        // Multiple experiments would write the same file, the later ones
        // silently clobbering the earlier.
        usage(
            "--bench-out is ambiguous across perf/updates/persist/serve/load/standing/cluster; \
             run them separately",
        );
    }
    if (baseline.is_some() || current.is_some()) && !want_compare {
        usage("--baseline/--current require --exp compare");
    }
    if want_compare && (baseline.is_none() || current.is_none()) {
        usage("--exp compare requires --baseline FILE and --current FILE");
    }
    let want = |name: &str| exps.as_ref().is_none_or(|set| set.contains(name));
    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    };
    println!("# TKD-on-incomplete-data reproduction — scale={scale_name}, seed={seed}\n");

    let mut all_tables: Vec<Table> = Vec::new();
    let mut emit = |tables: Vec<Table>| {
        for t in &tables {
            println!("{}", t.render());
        }
        all_tables.extend(tables);
    };

    if want("table2") {
        emit(vec![exp::table2()]);
    }
    if want("fig10") {
        emit(vec![exp::fig10(scale, seed)]);
    }
    if want("table3") {
        emit(vec![exp::table3(scale, seed)]);
    }
    if want("fig11") {
        emit(exp::fig11(scale, seed));
    }
    if want("fig12") {
        emit(exp::fig12(scale, seed));
    }
    if want("fig13") {
        emit(exp::fig13(scale, seed));
    }
    if want("table4") {
        emit(vec![exp::table4(scale, seed)]);
    }
    if want("fig14") {
        emit(exp::fig14(scale, seed));
    }
    if want("fig15") {
        emit(exp::fig15(scale, seed));
    }
    if want("fig16") {
        emit(exp::fig16(scale, seed));
    }
    if want("fig17") {
        emit(exp::fig17(scale, seed));
    }
    if want("fig18") {
        emit(exp::fig18(scale, seed));
    }
    if want("binopt") {
        emit(vec![exp::binopt()]);
    }
    if want("ablation") {
        emit(vec![exp::ablation_compression(scale, seed)]);
    }
    if want("baseline") {
        emit(vec![exp::ablation_baseline(scale, seed)]);
    }
    // The perf baseline is opt-in: it is a repo artifact generator, not a
    // paper reproduction, so `--exp` must name it explicitly. With
    // `--threads` it runs the thread-scaling grid (BENCH_3.json) instead
    // of the sequential baseline grid (BENCH_2.json).
    if exps.as_ref().is_some_and(|set| set.contains("perf")) {
        let (table, json, default_out) = match &threads {
            Some(ts) => {
                let (t, j) = perf::run_threads(scale, seed, ts);
                (t, j, "BENCH_3.json")
            }
            None => {
                let (t, j) = perf::run(scale, seed);
                (t, j, "BENCH_2.json")
            }
        };
        let bench_out = bench_out.as_deref().unwrap_or(default_out);
        emit(vec![table]);
        std::fs::write(bench_out, json).expect("write perf JSON");
        println!("(perf baseline written to {bench_out})");
    }
    // The dynamic-update maintenance benchmark (BENCH_4.json) — opt-in,
    // like perf.
    if exps.as_ref().is_some_and(|set| set.contains("updates")) {
        let (table, json) = updates::run(scale, seed);
        let bench_out = bench_out.as_deref().unwrap_or("BENCH_4.json");
        emit(vec![table]);
        std::fs::write(bench_out, json).expect("write updates JSON");
        println!("(update maintenance benchmark written to {bench_out})");
    }
    // The snapshot load-vs-rebuild benchmark (BENCH_5.json) — opt-in,
    // like perf and updates.
    if exps.as_ref().is_some_and(|set| set.contains("persist")) {
        let (table, json) = persist::run(scale, seed);
        let bench_out = bench_out.as_deref().unwrap_or("BENCH_5.json");
        emit(vec![table]);
        std::fs::write(bench_out, json).expect("write persist JSON");
        println!("(snapshot persistence benchmark written to {bench_out})");
    }
    // The TCP-service load benchmark (BENCH_6.json) — opt-in; starts a
    // real server on a loopback port and drives open-loop load.
    if exps.as_ref().is_some_and(|set| set.contains("serve")) {
        let (table, json) = serve::run(scale, seed);
        let bench_out = bench_out.as_deref().unwrap_or("BENCH_6.json");
        emit(vec![table]);
        std::fs::write(bench_out, json).expect("write serve JSON");
        println!("(serve load benchmark written to {bench_out})");
    }
    // The zero-copy snapshot-load + kernel benchmark (BENCH_7.json) —
    // opt-in, like the other artifact generators.
    if exps.as_ref().is_some_and(|set| set.contains("load")) {
        let (tables, json) = load::run(scale, seed);
        let bench_out = bench_out.as_deref().unwrap_or("BENCH_7.json");
        emit(tables);
        std::fs::write(bench_out, json).expect("write load JSON");
        println!("(zero-copy load benchmark written to {bench_out})");
    }
    // The standing-query maintenance benchmark (BENCH_8.json) — opt-in;
    // patched-vs-requery cost per op-batch, parity-checked inline.
    if exps.as_ref().is_some_and(|set| set.contains("standing")) {
        let (table, json) = standing::run(scale, seed);
        let bench_out = bench_out.as_deref().unwrap_or("BENCH_8.json");
        emit(vec![table]);
        std::fs::write(bench_out, json).expect("write standing JSON");
        println!("(standing-query benchmark written to {bench_out})");
    }
    // The cluster protocol-overhead benchmark (BENCH_10.json) — opt-in;
    // bit-identical answers asserted inline, wire cost recorded.
    if exps.as_ref().is_some_and(|set| set.contains("cluster")) {
        let (table, json) = cluster::run(scale, seed);
        let bench_out = bench_out.as_deref().unwrap_or("BENCH_10.json");
        emit(vec![table]);
        std::fs::write(bench_out, json).expect("write cluster JSON");
        println!("(cluster benchmark written to {bench_out})");
    }
    // The perf regression gate — opt-in; a regression (or a vacuous
    // comparison) exits non-zero so CI fails.
    if want_compare {
        let (baseline, current) = (baseline.expect("checked"), current.expect("checked"));
        match compare::run(&baseline, &current, tolerance) {
            Ok((table, ok, warnings)) => {
                emit(vec![table]);
                for w in &warnings {
                    eprintln!("warning: {w}");
                }
                if !ok {
                    eprintln!(
                        "error: performance regression beyond {tolerance}x tolerance \
                         (see REGRESSED rows above)"
                    );
                    std::process::exit(1);
                }
                println!("(perf regression gate passed at tolerance {tolerance}x)");
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create output directory");
        for t in &all_tables {
            let slug: String = t
                .title
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let path = format!("{dir}/{}.csv", &slug[..slug.len().min(80)]);
            std::fs::write(&path, t.to_csv()).expect("write CSV");
        }
        println!("({} CSV tables written to {dir})", all_tables.len());
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "Usage: repro [--exp LIST] [--scale quick|paper] [--seed N] [--out DIR] \
         [--bench-out FILE] [--threads 1,2,4,8] \
         [--baseline FILE --current FILE [--tolerance R]]\n\
         experiments: {}\n\
         --threads runs the thread-scaling perf grid (requires --exp perf; \
         writes BENCH_3.json)\n\
         --exp updates measures incremental maintenance vs rebuild \
         (writes BENCH_4.json)\n\
         --exp persist measures snapshot load vs rebuild \
         (writes BENCH_5.json)\n\
         --exp serve drives open-loop load at a live TCP server \
         (writes BENCH_6.json)\n\
         --exp load measures zero-copy vs copying snapshot load and the \
         wide-lane popcount kernels (writes BENCH_7.json)\n\
         --exp standing measures per-batch standing-query patching vs \
         full re-query (writes BENCH_8.json)\n\
         --exp cluster measures multi-process shard-query overhead at \
         bit-identical answers (writes BENCH_10.json)\n\
         --exp compare gates normalized BIG/IBIG query times against a \
         committed tkd-perf/v1 baseline (exit 1 on regression)",
        KNOWN.join(",")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
