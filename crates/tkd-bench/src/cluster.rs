//! `repro --exp cluster` — the multi-process cluster protocol-overhead
//! benchmark (`BENCH_10.json`).
//!
//! The dev containers are single-core, so this harness does **not**
//! claim a parallel speedup. What it measures — and what the artifact
//! gates on — is the price of distribution at fixed correctness: the
//! coordinator answers every query **bit-identically** to an in-process
//! engine over the same rows (asserted inline, same discipline as
//! `tests/cluster_parity.rs`), and the JSON records what the exactness
//! costs in wall-clock and wire traffic (frames, τ-exchange rounds,
//! candidates shipped) per shard count, plus the routed-update and
//! snapshot-handoff latencies.
//!
//! Workers run as in-process listener threads on loopback — the same
//! code path `tkdq cluster worker` serves, minus process spawn noise,
//! which would otherwise dominate the quick scale.

use crate::table::{secs, Table};
use crate::{time, Scale};
use tkd_cluster::{ClusterConfig, Coordinator, Worker, WorkerConfig};
use tkd_core::{Algorithm, DynamicEngine, EngineQuery, UpdateOp};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::ObjectId;

/// Ops per routed update batch.
const BATCH_OPS: usize = 32;

/// One grid cell: `(n, dims, missing_rate, k, shards)`.
pub type ClusterPoint = (usize, usize, f64, usize, usize);

/// The grid. Quick is CI-sized; Paper scales rows, not shards — the
/// interesting axis is how τ-pruning caps candidate shipping as the
/// queue grows.
pub fn cluster_grid(scale: Scale) -> Vec<ClusterPoint> {
    match scale {
        Scale::Quick => vec![
            (1_000, 4, 0.2, 8, 1),
            (1_000, 4, 0.2, 8, 2),
            (1_000, 4, 0.2, 8, 4),
            (1_000, 4, 0.4, 8, 2),
        ],
        Scale::Paper => vec![
            (5_000, 6, 0.1, 8, 2),
            (5_000, 6, 0.1, 8, 4),
            (10_000, 6, 0.1, 8, 4),
            (10_000, 6, 0.3, 8, 4),
        ],
    }
}

struct ClusterCell {
    n: usize,
    dims: usize,
    missing: f64,
    k: usize,
    shards: usize,
    /// Seed time: split, write snapshots, assign to workers.
    seed_s: f64,
    /// In-process query wall-clock (the floor).
    inproc_s: f64,
    /// Cluster query wall-clock (BIG + IBIG, like inproc).
    cluster_s: f64,
    /// `cluster_s / inproc_s` — the protocol overhead factor.
    overhead: f64,
    /// Wire traffic for the measured queries.
    frames: u64,
    tau_rounds: u64,
    candidates: u64,
    /// One routed `BATCH_OPS`-op batch through the single-writer path
    /// (validate, route, ack-after-atomic-rewrite on every touched
    /// shard).
    update_s: f64,
    /// One snapshot handoff of shard 0 to the other worker.
    handoff_s: f64,
}

fn splitmix(h: &mut u64) -> u64 {
    *h = h.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A valid op batch against ids `0..n` (inserts, deletes, cell sets).
fn op_batch(n: usize, dims: usize, missing: f64, seed: u64) -> Vec<UpdateOp> {
    let mut h = seed ^ 0xC1B5_7E44;
    let mut live: Vec<ObjectId> = (0..n as ObjectId).collect();
    (0..BATCH_OPS)
        .map(|_| {
            let roll = splitmix(&mut h) % 100;
            if roll < 50 || live.len() < 2 {
                let row: Vec<Option<f64>> = (0..dims)
                    .map(|_| {
                        if splitmix(&mut h) % 100 < (missing * 100.0) as u64 {
                            None
                        } else {
                            Some((splitmix(&mut h) % 100) as f64)
                        }
                    })
                    .collect();
                if row.iter().all(Option::is_none) {
                    UpdateOp::Insert(vec![Some(0.0); dims])
                } else {
                    UpdateOp::Insert(row)
                }
            } else if roll < 75 {
                let pick = (splitmix(&mut h) as usize) % live.len();
                UpdateOp::Delete(live.swap_remove(pick))
            } else {
                UpdateOp::Set(
                    live[(splitmix(&mut h) as usize) % live.len()],
                    (splitmix(&mut h) as usize) % dims,
                    Some((splitmix(&mut h) % 100) as f64),
                )
            }
        })
        .collect()
}

fn measure_cell(point: ClusterPoint, seed: u64) -> ClusterCell {
    let (n, dims, missing, k, shards) = point;
    let ds = generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 100,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    });
    let dir = std::env::temp_dir().join(format!(
        "tkd-bench-cluster-{}-{n}-{shards}",
        std::process::id()
    ));
    let workers: Vec<Worker> = (0..2)
        .map(|_| Worker::start("127.0.0.1:0", WorkerConfig::default()).expect("worker"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(Worker::local_addr).collect();

    let (coord, seed_s) =
        time(|| Coordinator::seed(&ds, shards, &addrs, ClusterConfig::new(&dir)).expect("seed"));
    let mut coord = coord;

    let mut inproc = DynamicEngine::new(ds.clone());
    let (inproc_answers, inproc_s) = time(|| {
        [Algorithm::Big, Algorithm::Ibig].map(|alg| {
            inproc
                .query(&EngineQuery::new(k).algorithm(alg))
                .expect("BIG/IBIG supported")
        })
    });

    coord.stats = Default::default();
    let (cluster_answers, cluster_s) = time(|| {
        [Algorithm::Big, Algorithm::Ibig].map(|alg| coord.query(k, alg).expect("cluster query"))
    });
    // The artifact's numbers are only worth publishing if the answers
    // are the same answers.
    for (got, reference) in cluster_answers.iter().zip(&inproc_answers) {
        assert_eq!(
            got.entries(),
            reference.entries(),
            "cluster diverged from in-process (n={n} shards={shards})"
        );
    }
    let stats = coord.stats;

    let ops = op_batch(n, dims, missing, seed);
    let (_, update_s) = time(|| coord.update(&ops).expect("routed update"));

    let (_, handoff_s) = time(|| {
        let to = (coord.worker_of(0) + 1) % addrs.len();
        coord.handoff(0, to).expect("handoff");
    });

    for w in workers {
        w.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);

    ClusterCell {
        n,
        dims,
        missing,
        k,
        shards,
        seed_s,
        inproc_s,
        cluster_s,
        overhead: cluster_s / inproc_s.max(1e-9),
        frames: stats.frames,
        tau_rounds: stats.tau_rounds,
        candidates: stats.candidates_shipped,
        update_s,
        handoff_s,
    }
}

/// Run the grid, returning the printable table and the `BENCH_10.json`
/// document.
pub fn run(scale: Scale, seed: u64) -> (Table, String) {
    let cells: Vec<ClusterCell> = cluster_grid(scale)
        .into_iter()
        .map(|p| measure_cell(p, seed))
        .collect();

    let mut t = Table::new(
        "cluster — protocol overhead at bit-identical answers (IND, 2 workers)",
        &[
            "N",
            "shards",
            "missing",
            "k",
            "inproc (s)",
            "cluster (s)",
            "overhead",
            "frames",
            "τ-rounds",
            "candidates",
            "update (s)",
            "handoff (s)",
        ],
    );
    for c in &cells {
        t.push(vec![
            c.n.to_string(),
            c.shards.to_string(),
            format!("{:.0}%", c.missing * 100.0),
            c.k.to_string(),
            secs(c.inproc_s),
            secs(c.cluster_s),
            format!("{:.1}x", c.overhead),
            c.frames.to_string(),
            c.tau_rounds.to_string(),
            c.candidates.to_string(),
            secs(c.update_s),
            secs(c.handoff_s),
        ]);
    }
    (t, to_json(scale, seed, &cells))
}

/// Hand-rolled JSON (the workspace is offline — no serde).
fn to_json(scale: Scale, seed: u64, cells: &[ClusterCell]) -> String {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tkd-cluster/v1\",\n");
    s.push_str("  \"created_by\": \"repro --exp cluster\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"hardware\": {{\"available_parallelism\": {hw}}},\n"
    ));
    s.push_str("  \"workers\": 2,\n");
    s.push_str("  \"queries\": [\"big\", \"ibig\"],\n");
    s.push_str(&format!("  \"update_batch_ops\": {BATCH_OPS},\n"));
    s.push_str(
        "  \"note\": \"single-host loopback; gates exactness and wire cost, \
         not parallel speedup\",\n",
    );
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"workload\": {{\"n\": {}, \"dims\": {}, \"missing_rate\": {}, \
             \"cardinality\": 100, \"k\": {}, \"shards\": {}, \
             \"distribution\": \"IND\"}},\n",
            c.n, c.dims, c.missing, c.k, c.shards
        ));
        s.push_str(&format!(
            "      \"seed_s\": {:.6}, \"inproc_s\": {:.6}, \"cluster_s\": {:.6}, \
             \"overhead\": {:.2},\n",
            c.seed_s, c.inproc_s, c.cluster_s, c.overhead
        ));
        s.push_str(&format!(
            "      \"wire\": {{\"frames\": {}, \"tau_rounds\": {}, \
             \"candidates_shipped\": {}}},\n",
            c.frames, c.tau_rounds, c.candidates
        ));
        s.push_str(&format!(
            "      \"update_batch_s\": {:.6}, \"handoff_s\": {:.6}\n",
            c.update_s, c.handoff_s
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_cell_is_parity_checked_and_json_is_sane() {
        // measure_cell asserts cluster == in-process inline.
        let cell = measure_cell((300, 3, 0.2, 5, 2), 11);
        assert!(cell.cluster_s > 0.0 && cell.frames > 0);
        let json = to_json(Scale::Quick, 11, &[cell]);
        assert!(json.contains("\"schema\": \"tkd-cluster/v1\""));
        assert!(json.contains("\"candidates_shipped\""));
    }
}
