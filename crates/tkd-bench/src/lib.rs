//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§5). See DESIGN.md §6 for the experiment index.
//!
//! The [`experiments`] module has one entry point per paper artifact
//! (Table 2–4, Fig. 10–18); the `repro` binary drives them and prints
//! paper-style tables. Everything is deterministic given the seed.
//!
//! Two scales are supported:
//!
//! * [`Scale::Quick`] — laptop-sized datasets (default) preserving every
//!   qualitative finding;
//! * [`Scale::Paper`] — the paper's exact cardinalities (slower).

#![warn(missing_docs)]

pub mod cluster;
pub mod compare;
pub mod datasets;
pub mod experiments;
pub mod load;
pub mod perf;
pub mod persist;
pub mod serve;
pub mod standing;
pub mod table;
pub mod updates;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced cardinalities for minutes-long full runs.
    Quick,
    /// The paper's cardinalities (MovieLens 3.7K×60, NBA 16K, Zillow 200K,
    /// synthetic 100K).
    Paper,
}

/// Wall-clock seconds of a closure (single shot; the workloads are large
/// enough that variance is dominated by the algorithm, not the clock).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
