//! Criterion micro-benchmarks behind Table 3: preprocessing cost of the
//! MaxScore queue, the bitmap index and the binned+compressed index.

use criterion::{criterion_group, criterion_main, Criterion};
use tkd_bitvec::Concise;
use tkd_core::maxscore;
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_index::{BinnedBitmapIndex, BitmapIndex, CompressedColumns};
use tkd_model::stats;

fn bench_preprocessing(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig {
        n: 2_000,
        dims: 6,
        cardinality: 60,
        missing_rate: 0.10,
        distribution: Distribution::Independent,
        seed: 42,
    });
    let mut g = c.benchmark_group("preprocessing");
    g.sample_size(10);
    g.bench_function("maxscore_queue", |b| {
        b.iter(|| maxscore::maxscore_queue(&ds))
    });
    g.bench_function("incomparable_sets", |b| {
        b.iter(|| stats::incomparable_sets(&ds))
    });
    g.bench_function("bitmap_index", |b| b.iter(|| BitmapIndex::build(&ds)));
    g.bench_function("binned_index_x16", |b| {
        b.iter(|| BinnedBitmapIndex::build(&ds, &vec![16; ds.dims()]))
    });
    g.bench_function("binned_plus_concise", |b| {
        b.iter(|| {
            let idx = BinnedBitmapIndex::build(&ds, &vec![16; ds.dims()]);
            CompressedColumns::<Concise>::from_binned(&idx)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
