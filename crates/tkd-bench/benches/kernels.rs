//! Criterion micro-benchmarks for the PR-2 fused bit-vector kernels: the
//! zero-allocation primitives vs their materialize-then-operate ancestors,
//! in isolation from the query drivers.

use criterion::{criterion_group, criterion_main, Criterion};
use tkd_bitvec::{kernels, BitVec, CompressedBitmap, Concise};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_index::BitmapIndex;

const N: usize = 50_000;

/// Wide-lane dispatched kernels vs the naive scalar reference loops, on
/// word arrays sized like a 50K-object column. The dispatch tier is in
/// the group name so saved baselines are attributable to the lanes that
/// produced them.
fn bench_wide_lanes(c: &mut Criterion) {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let words = N.div_ceil(64);
    let a: Vec<u64> = (0..words).map(|_| next()).collect();
    let b: Vec<u64> = (0..words).map(|_| next()).collect();
    let d: Vec<u64> = (0..words).map(|_| next()).collect();

    let mut g = c.benchmark_group(format!("kernels/wide_lanes[{}]", kernels::dispatch_name()));
    g.bench_function("scalar_popcount", |bch| {
        bch.iter(|| kernels::scalar::popcount(&a))
    });
    g.bench_function("wide_popcount", |bch| bch.iter(|| kernels::popcount(&a)));
    g.bench_function("scalar_and_not_count", |bch| {
        bch.iter(|| kernels::scalar::and_not_count(&a, &b))
    });
    g.bench_function("wide_and_not_count", |bch| {
        bch.iter(|| kernels::and_not_count(&a, &b))
    });
    g.bench_function("scalar_count_and_andnot", |bch| {
        bch.iter(|| kernels::scalar::count_and_andnot(&a, &b, &d))
    });
    g.bench_function("wide_count_and_andnot", |bch| {
        bch.iter(|| kernels::count_and_andnot(&a, &b, &d))
    });
    g.finish();
}

fn patterned(step: usize, phase: usize) -> BitVec {
    BitVec::from_indices(N, (phase..N).step_by(step))
}

/// Fused ternary popcount `|a ∧ b ∧ ¬c|` vs materialize-then-count.
fn bench_ternary_count(c: &mut Criterion) {
    let a = patterned(2, 0);
    let b = patterned(3, 1);
    let d = patterned(5, 2);
    let mut g = c.benchmark_group("kernels/ternary_count");
    g.bench_function("materialize_then_count", |bch| {
        bch.iter(|| a.and(&b).and_not(&d).count_ones())
    });
    g.bench_function("fused_count_and_andnot", |bch| {
        bch.iter(|| a.count_and_andnot(&b, &d))
    });
    g.finish();
}

/// Fused `|a ∧ ¬b|` vs materialize-then-count.
fn bench_and_not_count(c: &mut Criterion) {
    let a = patterned(2, 0);
    let b = patterned(7, 3);
    let mut g = c.benchmark_group("kernels/and_not_count");
    g.bench_function("materialize_then_count", |bch| {
        bch.iter(|| a.and_not(&b).count_ones())
    });
    g.bench_function("fused_and_not_count", |bch| {
        bch.iter(|| a.and_not_count(&b))
    });
    g.finish();
}

/// Multi-column intersection: clone + chained `and_assign` vs
/// `intersect_into` scratch fill vs the index's fused AND-popcount.
fn bench_intersection(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig {
        n: N,
        dims: 8,
        cardinality: 100,
        missing_rate: 0.1,
        distribution: Distribution::Independent,
        seed: 42,
    });
    let index = BitmapIndex::build(&ds);
    let o = 17u32;

    let mut g = c.benchmark_group("kernels/q_intersection");
    g.sample_size(20);
    g.bench_function("clone_and_assign_chain", |bch| {
        bch.iter(|| {
            let mut q = index.q_column(o, 0).clone();
            for dim in 1..index.dims() {
                q.and_assign(index.q_column(o, dim));
            }
            q.clear(o as usize);
            q
        })
    });
    let mut scratch = BitVec::zeros(N);
    g.bench_function("q_into_scratch", |bch| {
        bch.iter(|| index.q_into(o, &mut scratch))
    });
    g.bench_function("fused_count_only", |bch| {
        bch.iter(|| index.max_bit_score_counted(o))
    });
    g.finish();
}

/// Compressed column intersection: compressed AND chain + decompress vs
/// decompress-into + AND-into-dense off the run streams.
fn bench_compressed_and_selected(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig {
        n: N,
        dims: 8,
        cardinality: 100,
        missing_rate: 0.1,
        distribution: Distribution::Independent,
        seed: 42,
    });
    let ictx: tkd_core::ibig::IbigContext<'_, Concise> =
        tkd_core::ibig::IbigContext::build(&ds, &vec![32; ds.dims()]);
    let cols = ictx.columns();
    let picks: Vec<(usize, usize)> = (0..ds.dims()).map(|d| (d, d % 3)).collect();

    let mut g = c.benchmark_group("kernels/compressed_and_selected");
    g.sample_size(20);
    g.bench_function("compressed_chain_then_decompress", |bch| {
        bch.iter(|| cols.and_selected(&picks).decompress())
    });
    let mut scratch = BitVec::zeros(N);
    g.bench_function("and_selected_into_scratch", |bch| {
        bch.iter(|| cols.and_selected_into(picks.iter().copied(), &mut scratch))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wide_lanes,
    bench_ternary_count,
    bench_and_not_count,
    bench_intersection,
    bench_compressed_and_selected
);
criterion_main!(benches);
