//! Criterion micro-benchmarks behind Figs. 12–13: the five algorithms on a
//! default-parameter IND workload (query time only, contexts prebuilt).

use criterion::{criterion_group, criterion_main, Criterion};
use tkd_bitvec::Concise;
use tkd_core::{big, esb, ibig, maxscore, naive, ubb};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};

fn workload() -> tkd_model::Dataset {
    generate(&SyntheticConfig {
        n: 2_000,
        dims: 6,
        cardinality: 60,
        missing_rate: 0.10,
        distribution: Distribution::Independent,
        seed: 42,
    })
}

fn bench_algorithms(c: &mut Criterion) {
    let ds = workload();
    let k = 8;
    let queue = maxscore::maxscore_queue(&ds);
    let big_ctx = big::BigContext::build(&ds);
    let ibig_ctx: ibig::IbigContext<'_, Concise> =
        ibig::IbigContext::build(&ds, &vec![16; ds.dims()]);

    let mut g = c.benchmark_group("tkd_query");
    g.sample_size(10);
    g.bench_function("naive", |b| b.iter(|| naive::naive(&ds, k)));
    g.bench_function("esb", |b| b.iter(|| esb::esb(&ds, k)));
    g.bench_function("ubb", |b| b.iter(|| ubb::ubb_with_queue(&ds, k, &queue)));
    g.bench_function("big", |b| b.iter(|| big::big_with(&big_ctx, k)));
    g.bench_function("ibig", |b| b.iter(|| ibig::ibig_with(&ibig_ctx, k)));
    g.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let ds = workload();
    let big_ctx = big::BigContext::build(&ds);
    let mut g = c.benchmark_group("big_vs_k");
    g.sample_size(10);
    for k in [4usize, 16, 64] {
        g.bench_function(format!("k{k}"), |b| b.iter(|| big::big_with(&big_ctx, k)));
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms, bench_k_scaling);
criterion_main!(benches);
