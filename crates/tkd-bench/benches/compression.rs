//! Criterion micro-benchmarks behind Fig. 10: WAH vs CONCISE compression
//! and compressed intersections on real-like bitmap index columns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tkd_bitvec::{CompressedBitmap, Concise, Wah};
use tkd_data::simulators::{movielens_like_with, nba_like_with};
use tkd_index::{BitmapIndex, CompressedColumns};

fn bench_compress(c: &mut Criterion) {
    let movielens = movielens_like_with(400, 20, 42);
    let nba = nba_like_with(1_500, 42);
    for (name, ds) in [("movielens", &movielens), ("nba", &nba)] {
        let index = BitmapIndex::build(ds);
        let mut g = c.benchmark_group(format!("compress/{name}"));
        g.sample_size(10);
        g.bench_function("wah", |b| {
            b.iter(|| CompressedColumns::<Wah>::from_bitmap(&index))
        });
        g.bench_function("concise", |b| {
            b.iter(|| CompressedColumns::<Concise>::from_bitmap(&index))
        });
        g.finish();
    }
}

fn bench_and_count(c: &mut Criterion) {
    let nba = nba_like_with(1_500, 42);
    let index = BitmapIndex::build(&nba);
    let a = index.column(2, index.num_columns(2) / 2);
    let b = index.column(3, index.num_columns(3) / 2);
    let (wa, wb) = (Wah::compress(a), Wah::compress(b));
    let (ca, cb) = (Concise::compress(a), Concise::compress(b));

    let mut g = c.benchmark_group("and_count");
    g.bench_function("dense", |bch| bch.iter(|| a.and_count(b)));
    g.bench_function("wah", |bch| bch.iter(|| wa.and_count(&wb)));
    g.bench_function("concise", |bch| bch.iter(|| ca.and_count(&cb)));
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let nba = nba_like_with(1_500, 42);
    let index = BitmapIndex::build(&nba);
    let col = index.column(0, index.num_columns(0) / 3).clone();
    let mut g = c.benchmark_group("roundtrip");
    g.bench_function("wah", |b| {
        b.iter_batched(
            || col.clone(),
            |c| Wah::compress(&c).decompress(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("concise", |b| {
        b.iter_batched(
            || col.clone(),
            |c| Concise::compress(&c).decompress(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_compress, bench_and_count, bench_roundtrip);
criterion_main!(benches);
