//! Criterion micro-benchmarks behind Fig. 11: IBIG query time across bin
//! counts (space/time trade-off of §4.4–4.5).

use criterion::{criterion_group, criterion_main, Criterion};
use tkd_bitvec::Concise;
use tkd_core::ibig;
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};

fn bench_bins(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig {
        n: 2_000,
        dims: 6,
        cardinality: 100,
        missing_rate: 0.10,
        distribution: Distribution::Independent,
        seed: 42,
    });
    let mut g = c.benchmark_group("ibig_vs_bins");
    g.sample_size(10);
    for x in [2usize, 8, 32, 100] {
        let ctx: ibig::IbigContext<'_, Concise> =
            ibig::IbigContext::build(&ds, &vec![x; ds.dims()]);
        g.bench_function(format!("x{x}"), |b| b.iter(|| ibig::ibig_with(&ctx, 8)));
    }
    g.finish();
}

criterion_group!(benches, bench_bins);
criterion_main!(benches);
