//! Criterion micro-benchmarks of the B+-tree substrate against
//! `std::collections::BTreeMap` — the rank query is the one operation std
//! cannot answer in O(log N), and it is the kernel of the paper's
//! `MaxScore` precomputation (§4.2).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::BTreeMap;
use tkd_btree::BPlusTree;

const N: u64 = 10_000;

fn keys() -> Vec<u64> {
    // Deterministic shuffle via a multiplicative hash.
    (0..N)
        .map(|i| (i.wrapping_mul(2654435761)) % (4 * N))
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let ks = keys();
    let mut g = c.benchmark_group("btree_insert_10k");
    g.sample_size(10);
    g.bench_function("bplustree", |b| {
        b.iter_batched(
            || ks.clone(),
            |ks| {
                let mut t = BPlusTree::new();
                for k in ks {
                    t.insert(k, k);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("std_btreemap", |b| {
        b.iter_batched(
            || ks.clone(),
            |ks| {
                let mut t = BTreeMap::new();
                for k in ks {
                    t.insert(k, k);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let ks = keys();
    let tree: BPlusTree<u64, u64> = ks.iter().map(|&k| (k, k)).collect();
    let std_tree: BTreeMap<u64, u64> = ks.iter().map(|&k| (k, k)).collect();

    let mut g = c.benchmark_group("btree_query");
    g.bench_function("get/bplustree", |b| {
        b.iter(|| ks.iter().filter_map(|k| tree.get(k)).count())
    });
    g.bench_function("get/std_btreemap", |b| {
        b.iter(|| ks.iter().filter_map(|k| std_tree.get(k)).count())
    });
    // The rank query: O(B log N) on the order-statistics tree, O(result)
    // via range counting on std.
    g.bench_function("rank/bplustree_count_at_least", |b| {
        b.iter(|| ks.iter().map(|&k| tree.count_at_least(&k)).sum::<usize>())
    });
    g.bench_function("rank/std_range_count", |b| {
        b.iter(|| {
            ks.iter()
                .take(100)
                .map(|&k| std_tree.range(k..).count())
                .sum::<usize>()
        })
    });
    g.bench_function("scan/bplustree_iter", |b| {
        b.iter(|| tree.iter().map(|(_, v)| *v).sum::<u64>())
    });
    g.bench_function("scan/std_iter", |b| {
        b.iter(|| std_tree.values().copied().sum::<u64>())
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_queries);
criterion_main!(benches);
