//! The dominance relationship over incomplete data (Definition 1 of the
//! paper, after Khalefa et al.).
//!
//! `o ≻ o'` iff (i) for every commonly observed dimension `i`,
//! `o[i] ≤ o'[i]`, and (ii) for at least one commonly observed dimension `j`,
//! `o[j] < o'[j]`. Smaller values are better. Objects without a common
//! observed dimension are *incomparable*.
//!
//! Unlike dominance on complete data, this relation is **not transitive** and
//! can even be cyclic (see the `fig2_nontransitivity` test), which is why the
//! paper's algorithms never rely on transitivity across buckets.

use crate::{Dataset, ObjectId};

/// Outcome of comparing two objects under incomplete-data dominance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// The first object dominates the second.
    Dominates,
    /// The second object dominates the first.
    DominatedBy,
    /// The objects share no observed dimension (`bo & bo' = 0`).
    Incomparable,
    /// The objects are comparable but neither dominates the other.
    Neither,
}

/// Does object `a` dominate object `b` in `ds`?
#[inline]
pub fn dominates(ds: &Dataset, a: ObjectId, b: ObjectId) -> bool {
    let common = ds.mask(a).and(ds.mask(b));
    if common.is_empty() {
        return false;
    }
    let mut strict = false;
    for d in common.iter() {
        let va = ds.raw_value(a, d);
        let vb = ds.raw_value(b, d);
        if va > vb {
            return false;
        }
        if va < vb {
            strict = true;
        }
    }
    strict
}

/// Full three-way comparison of `a` and `b` (one pass over the common
/// dimensions instead of two [`dominates`] calls).
pub fn compare(ds: &Dataset, a: ObjectId, b: ObjectId) -> Dominance {
    let common = ds.mask(a).and(ds.mask(b));
    if common.is_empty() {
        return Dominance::Incomparable;
    }
    let mut a_better = false;
    let mut b_better = false;
    for d in common.iter() {
        let va = ds.raw_value(a, d);
        let vb = ds.raw_value(b, d);
        if va < vb {
            a_better = true;
        } else if vb < va {
            b_better = true;
        }
        if a_better && b_better {
            return Dominance::Neither;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::Dominates,
        (false, true) => Dominance::DominatedBy,
        _ => Dominance::Neither, // equal on all common dims
    }
}

/// Are `a` and `b` comparable (share at least one observed dimension)?
#[inline]
pub fn comparable(ds: &Dataset, a: ObjectId, b: ObjectId) -> bool {
    ds.mask(a).intersects(ds.mask(b))
}

/// The paper's `score(o)` (Definition 2): the number of objects of `ds`
/// dominated by `o`. Brute force, O(N·d); reference implementation used by
/// the Naive algorithm and by tests.
pub fn score_of(ds: &Dataset, o: ObjectId) -> usize {
    let mut score = 0;
    for p in ds.ids() {
        if p != o && dominates(ds, o, p) {
            score += 1;
        }
    }
    score
}

/// Scores of every object, by brute force. O(N²·d).
pub fn all_scores(ds: &Dataset) -> Vec<usize> {
    let n = ds.len();
    let mut scores = vec![0usize; n];
    for a in 0..n as ObjectId {
        for b in (a + 1)..n as ObjectId {
            match compare(ds, a, b) {
                Dominance::Dominates => scores[a as usize] += 1,
                Dominance::DominatedBy => scores[b as usize] += 1,
                _ => {}
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn movielens_intro_example() {
        // §1: m2 dominates m3 on their common observed dimensions 2 and 3
        // (1-indexed in the paper). Ratings are larger-is-better there, so we
        // negate to match the model's smaller-is-better convention.
        let ds = fixtures::fig1_movies();
        let m1 = ds.id_by_label("m1").unwrap();
        let m2 = ds.id_by_label("m2").unwrap();
        let m3 = ds.id_by_label("m3").unwrap();
        let m4 = ds.id_by_label("m4").unwrap();
        assert!(dominates(&ds, m2, m3));
        assert_eq!(score_of(&ds, m2), 2); // {m1, m3}
        assert_eq!(score_of(&ds, m1), 0);
        assert_eq!(score_of(&ds, m3), 0);
        assert_eq!(score_of(&ds, m4), 1); // {m1}
    }

    #[test]
    fn fig2_dominance_facts() {
        let ds = fixtures::fig2_points();
        let id = |l: &str| ds.id_by_label(l).unwrap();
        // §3: f = (4,2) dominates c = (5,-).
        assert!(dominates(&ds, id("f"), id("c")));
        // c and e have disjoint masks: incomparable.
        assert_eq!(compare(&ds, id("c"), id("e")), Dominance::Incomparable);
        assert!(!comparable(&ds, id("c"), id("e")));
        // f dominates exactly {a, c, e}.
        assert_eq!(score_of(&ds, id("f")), 3);
        for l in ["a", "c", "e"] {
            assert!(dominates(&ds, id("f"), id(l)), "f should dominate {l}");
        }
        assert!(!dominates(&ds, id("f"), id("b")));
        assert!(!dominates(&ds, id("f"), id("d")));
    }

    #[test]
    fn fig2_scores() {
        let ds = fixtures::fig2_points();
        let score = |l: &str| score_of(&ds, ds.id_by_label(l).unwrap());
        assert_eq!(score("f"), 3);
        assert_eq!(score("b"), 2);
        assert_eq!(score("c"), 2);
        assert_eq!(score("e"), 2);
        assert_eq!(score("d"), 1);
        assert_eq!(score("a"), 0);
    }

    #[test]
    fn fig2_nontransitivity() {
        // §3: f ≻ e and e ≻ b, yet f ⊁ b.
        let ds = fixtures::fig2_points();
        let id = |l: &str| ds.id_by_label(l).unwrap();
        assert!(dominates(&ds, id("f"), id("e")));
        assert!(dominates(&ds, id("e"), id("b")));
        assert!(!dominates(&ds, id("f"), id("b")));
    }

    #[test]
    fn dominance_is_irreflexive_and_asymmetric() {
        let ds = fixtures::fig3_sample();
        for a in ds.ids() {
            assert!(!dominates(&ds, a, a));
            for b in ds.ids() {
                if dominates(&ds, a, b) {
                    assert!(!dominates(&ds, b, a), "asymmetry violated");
                }
            }
        }
    }

    #[test]
    fn compare_agrees_with_dominates() {
        let ds = fixtures::fig3_sample();
        for a in ds.ids() {
            for b in ds.ids() {
                if a == b {
                    continue;
                }
                let c = compare(&ds, a, b);
                assert_eq!(c == Dominance::Dominates, dominates(&ds, a, b));
                assert_eq!(c == Dominance::DominatedBy, dominates(&ds, b, a));
                if c == Dominance::Incomparable {
                    assert!(!comparable(&ds, a, b));
                }
            }
        }
    }

    #[test]
    fn fig3_running_example_scores() {
        // §4.1 Example 1 / Fig. 4: score(C2) = score(A2) = 16 is the top-2.
        let ds = fixtures::fig3_sample();
        let c2 = ds.id_by_label("C2").unwrap();
        let a2 = ds.id_by_label("A2").unwrap();
        assert_eq!(score_of(&ds, c2), 16);
        assert_eq!(score_of(&ds, a2), 16);
        // §4.3: MaxBitScore(B3) = 0, so score(B3) must be 0.
        let b3 = ds.id_by_label("B3").unwrap();
        assert_eq!(score_of(&ds, b3), 0);
    }

    #[test]
    fn all_scores_matches_score_of() {
        let ds = fixtures::fig3_sample();
        let all = all_scores(&ds);
        for o in ds.ids() {
            assert_eq!(all[o as usize], score_of(&ds, o), "object {o}");
        }
    }

    #[test]
    fn equal_on_common_dims_is_neither() {
        let ds =
            Dataset::from_rows(2, &[vec![Some(1.0), None], vec![Some(1.0), Some(9.0)]]).unwrap();
        assert_eq!(compare(&ds, 0, 1), Dominance::Neither);
        assert!(!dominates(&ds, 0, 1));
        assert!(!dominates(&ds, 1, 0));
    }
}
