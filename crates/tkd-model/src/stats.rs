//! Dataset statistics and grouping helpers shared by the algorithm crates.

use crate::{Dataset, DimMask, ObjectId};

/// Fraction of missing cells over the whole `N × d` matrix (the paper's
/// missing rate `σ`).
pub fn missing_rate(ds: &Dataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let total = ds.len() * ds.dims();
    let observed: usize = ds.masks().iter().map(|m| m.count() as usize).sum();
    (total - observed) as f64 / total as f64
}

/// Number of objects with an observed value in `dim`.
pub fn observed_count(ds: &Dataset, dim: usize) -> usize {
    ds.masks().iter().filter(|m| m.observed(dim)).count()
}

/// Number of objects missing `dim` — the paper's `|S_i|`.
pub fn missing_count(ds: &Dataset, dim: usize) -> usize {
    ds.len() - observed_count(ds, dim)
}

/// The sorted, de-duplicated observed values of `dim` — the paper's value
/// domain whose size is the dimensional cardinality `C_i`.
pub fn distinct_values(ds: &Dataset, dim: usize) -> Vec<f64> {
    distinct_values_in(ds, dim, 0, ds.len())
}

/// [`distinct_values`] restricted to the contiguous id range `[lo, hi)` —
/// the form shard index builds use, so whole-dataset and per-shard value
/// tables share one definition of the ordering/dedup contract:
/// `total_cmp` sort, then IEEE `==` dedup (merging −0.0 into 0.0 —
/// lookups must therefore probe with IEEE `<`, not `total_cmp`).
///
/// # Panics
/// Panics if `lo > hi` or `hi > ds.len()`.
pub fn distinct_values_in(ds: &Dataset, dim: usize, lo: usize, hi: usize) -> Vec<f64> {
    assert!(lo <= hi && hi <= ds.len(), "bad id range {lo}..{hi}");
    let mut vals: Vec<f64> = (lo..hi)
        .filter_map(|o| ds.value(o as crate::ObjectId, dim))
        .collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    vals
}

/// Dimensional cardinality `C_i`: the number of distinct observed values in
/// `dim`.
pub fn dimension_cardinality(ds: &Dataset, dim: usize) -> usize {
    distinct_values(ds, dim).len()
}

/// Group objects into the paper's *buckets*: objects sharing the same
/// observation mask. Returned in ascending mask-bits order, each bucket's
/// ids in ascending id order.
pub fn group_by_mask(ds: &Dataset) -> Vec<(DimMask, Vec<ObjectId>)> {
    let mut groups: std::collections::BTreeMap<u64, Vec<ObjectId>> = Default::default();
    for o in ds.ids() {
        groups.entry(ds.mask(o).bits()).or_default().push(o);
    }
    groups
        .into_iter()
        .map(|(bits, ids)| (DimMask::from_bits(bits), ids))
        .collect()
}

/// The *incomparable set* `F(o)` for every distinct mask: ids of objects
/// whose mask does not intersect the given mask.
///
/// `F` depends only on `bo`, so it is computed once per distinct mask and
/// shared — this is the `F` input that Algorithms 3–5 of the paper take.
pub fn incomparable_sets(ds: &Dataset) -> Vec<(DimMask, Vec<ObjectId>)> {
    let groups = group_by_mask(ds);
    let mut out = Vec::with_capacity(groups.len());
    for &(mask, _) in &groups {
        let mut f = Vec::new();
        for &(other_mask, ref ids) in &groups {
            if !mask.intersects(other_mask) {
                f.extend_from_slice(ids);
            }
        }
        f.sort_unstable();
        out.push((mask, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn missing_rate_fig3() {
        let ds = fixtures::fig3_sample();
        // 20 objects x 4 dims = 80 cells; 20 missing (A:1, B:2, C:2, D:1 each
        // for 5 objects -> 5+10+10+5 = 30... count: A* misses dim0 (5), B*
        // misses dims 0,1 (10), C* misses dims 1,2 (10), D* misses dim 2 (5).
        assert_eq!(missing_rate(&ds), 30.0 / 80.0);
    }

    #[test]
    fn missing_rate_empty_and_complete() {
        let ds = Dataset::from_rows(2, &[]).unwrap();
        assert_eq!(missing_rate(&ds), 0.0);
        let ds = Dataset::from_rows(2, &[vec![Some(1.0), Some(2.0)]]).unwrap();
        assert_eq!(missing_rate(&ds), 0.0);
    }

    #[test]
    fn observed_and_missing_counts() {
        let ds = fixtures::fig3_sample();
        // Dim 0 observed by C* and D* only.
        assert_eq!(observed_count(&ds, 0), 10);
        assert_eq!(missing_count(&ds, 0), 10);
        // Dim 3 observed by everyone.
        assert_eq!(observed_count(&ds, 3), 20);
        assert_eq!(missing_count(&ds, 3), 0);
    }

    #[test]
    fn distinct_values_fig3_dim0() {
        // §4.3: "For the 1st dimension, there are in total four different
        // observed values, i.e., {2, 3, 4, 5}".
        let ds = fixtures::fig3_sample();
        assert_eq!(distinct_values(&ds, 0), vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(dimension_cardinality(&ds, 0), 4);
    }

    #[test]
    fn distinct_values_sorted_dedup() {
        let ds = Dataset::from_rows(
            1,
            &[
                vec![Some(3.0)],
                vec![Some(1.0)],
                vec![Some(3.0)],
                vec![Some(-2.0)],
            ],
        )
        .unwrap();
        assert_eq!(distinct_values(&ds, 0), vec![-2.0, 1.0, 3.0]);
    }

    #[test]
    fn buckets_fig3() {
        let ds = fixtures::fig3_sample();
        let groups = group_by_mask(&ds);
        assert_eq!(groups.len(), 4);
        for (_, ids) in &groups {
            assert_eq!(ids.len(), 5, "each Fig. 4 bucket holds five objects");
        }
    }

    #[test]
    fn incomparable_sets_fig3() {
        let ds = fixtures::fig3_sample();
        // Every object observes dim 3, so all objects are pairwise
        // comparable: every F(o) is empty.
        for (_, f) in incomparable_sets(&ds) {
            assert!(f.is_empty());
        }
    }

    #[test]
    fn incomparable_sets_disjoint_masks() {
        let ds = Dataset::from_rows(
            2,
            &[
                vec![Some(1.0), None], // mask 01
                vec![None, Some(2.0)], // mask 10
                vec![Some(3.0), None], // mask 01
            ],
        )
        .unwrap();
        let sets = incomparable_sets(&ds);
        assert_eq!(sets.len(), 2);
        let f_of = |bits: u64| -> Vec<ObjectId> {
            sets.iter()
                .find(|(m, _)| m.bits() == bits)
                .map(|(_, f)| f.clone())
                .unwrap()
        };
        assert_eq!(f_of(0b01), vec![1]);
        assert_eq!(f_of(0b10), vec![0, 2]);
    }

    use crate::Dataset;
}
