//! Error type for dataset construction and parsing.

use core::fmt;

/// Errors raised while building or parsing datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The requested dimensionality is zero or exceeds [`crate::MAX_DIMS`].
    BadDimensionality(usize),
    /// A row had the wrong number of columns.
    RowArity {
        /// Row index within the input.
        row: usize,
        /// Number of columns the row supplied.
        got: usize,
        /// Number of columns the dataset expects.
        expected: usize,
    },
    /// A value was NaN (the model reserves NaN for internal missing slots).
    NaNValue {
        /// Row index within the input.
        row: usize,
        /// Dimension of the offending value.
        dim: usize,
    },
    /// A row had no observed value at all. The paper restricts datasets to
    /// objects with at least one observed dimension (§3).
    AllMissingRow(usize),
    /// A text cell could not be parsed as a number or the missing marker.
    ParseCell {
        /// Row index within the input.
        row: usize,
        /// Dimension of the offending cell.
        dim: usize,
        /// Cell text that failed to parse.
        cell: String,
    },
    /// A dimension index referred past the dataset's dimensionality.
    DimensionOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The dataset's dimensionality.
        dims: usize,
    },
    /// The input text had no rows (so the dimensionality is unknown).
    EmptyInput,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadDimensionality(d) => {
                write!(f, "dimensionality {d} out of range 1..={}", crate::MAX_DIMS)
            }
            ModelError::RowArity { row, got, expected } => {
                write!(f, "row {row}: expected {expected} columns, got {got}")
            }
            ModelError::NaNValue { row, dim } => {
                write!(f, "row {row}, dim {dim}: NaN is not a valid observed value")
            }
            ModelError::AllMissingRow(row) => {
                write!(f, "row {row}: object has no observed dimension")
            }
            ModelError::ParseCell { row, dim, cell } => {
                write!(f, "row {row}, dim {dim}: cannot parse {cell:?}")
            }
            ModelError::DimensionOutOfRange { dim, dims } => {
                write!(
                    f,
                    "dimension {dim} out of range for a {dims}-dimensional dataset"
                )
            }
            ModelError::EmptyInput => write!(f, "input contains no data rows"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::RowArity {
            row: 3,
            got: 2,
            expected: 4,
        };
        assert!(e.to_string().contains("row 3"));
        assert!(e.to_string().contains("expected 4"));
        let e = ModelError::ParseCell {
            row: 0,
            dim: 1,
            cell: "abc".into(),
        };
        assert!(e.to_string().contains("abc"));
        assert!(ModelError::BadDimensionality(0).to_string().contains("0"));
        assert!(ModelError::EmptyInput.to_string().contains("no data rows"));
        assert!(ModelError::AllMissingRow(7).to_string().contains("row 7"));
        assert!(ModelError::NaNValue { row: 1, dim: 2 }
            .to_string()
            .contains("NaN"));
    }
}
