//! Plain-text dataset (de)serialization.
//!
//! The format mirrors the paper's notation: one object per line, values
//! separated by commas (or whitespace), missing values written as `-`.
//! Lines starting with `#` are comments. An optional leading label column is
//! supported by [`parse_labeled`].

use crate::{Dataset, ModelError};

/// Split a data line into cells: commas and/or runs of whitespace.
fn cells(line: &str) -> Vec<&str> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_cell(cell: &str, row: usize, dim: usize) -> Result<Option<f64>, ModelError> {
    if cell == "-" {
        return Ok(None);
    }
    cell.parse::<f64>()
        .ok()
        .filter(|v| !v.is_nan())
        .map(Some)
        .ok_or_else(|| ModelError::ParseCell {
            row,
            dim,
            cell: cell.to_string(),
        })
}

fn data_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
}

/// Parse an unlabeled dataset. Dimensionality is taken from the first row.
///
/// # Errors
/// [`ModelError::EmptyInput`] when there are no data lines; otherwise the
/// builder's validation errors or [`ModelError::ParseCell`].
pub fn parse(text: &str) -> Result<Dataset, ModelError> {
    parse_inner(text, false)
}

/// Parse a dataset whose first column is an object label.
///
/// # Errors
/// Same as [`parse`].
pub fn parse_labeled(text: &str) -> Result<Dataset, ModelError> {
    parse_inner(text, true)
}

fn parse_inner(text: &str, labeled: bool) -> Result<Dataset, ModelError> {
    let mut lines = data_lines(text).peekable();
    let first = lines.peek().ok_or(ModelError::EmptyInput)?;
    let ncols = cells(first).len();
    let skip = usize::from(labeled);
    if ncols <= skip {
        return Err(ModelError::EmptyInput);
    }
    let dims = ncols - skip;
    let mut b = Dataset::builder(dims)?;
    for (r, line) in lines.enumerate() {
        let cs = cells(line);
        if cs.len() != ncols {
            return Err(ModelError::RowArity {
                row: r,
                got: cs.len() - skip.min(cs.len()),
                expected: dims,
            });
        }
        let mut row = Vec::with_capacity(dims);
        for (d, cell) in cs[skip..].iter().enumerate() {
            row.push(parse_cell(cell, r, d)?);
        }
        if labeled {
            b.push_labeled(cs[0], &row)?;
        } else {
            b.push(&row)?;
        }
    }
    Ok(b.build())
}

/// Render a dataset back to text (comma separated, `-` for missing, labels
/// as a first column when present).
pub fn to_text(ds: &Dataset) -> String {
    let mut out = String::new();
    for o in ds.ids() {
        let mut fields: Vec<String> = Vec::with_capacity(ds.dims() + 1);
        if let Some(l) = ds.label(o) {
            fields.push(l.to_string());
        }
        for d in 0..ds.dims() {
            fields.push(match ds.value(o, d) {
                Some(v) => format_value(v),
                None => "-".to_string(),
            });
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Format a value compactly: integers without a trailing `.0`.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn parse_simple() {
        let ds = parse("1,2,-\n-,5,6\n# comment\n\n7 8 9\n").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dims(), 3);
        assert_eq!(ds.value(0, 2), None);
        assert_eq!(ds.value(1, 0), None);
        assert_eq!(ds.value(2, 0), Some(7.0));
    }

    #[test]
    fn parse_labeled_roundtrip() {
        let ds = fixtures::fig3_sample();
        let text = to_text(&ds);
        let back = parse_labeled(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn parse_unlabeled_roundtrip() {
        let ds = parse("1.5,-\n-,2\n").unwrap();
        let back = parse(&to_text(&ds)).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn parse_rejects_garbage_cell() {
        let err = parse("1,2\n3,abc\n").unwrap_err();
        assert_eq!(
            err,
            ModelError::ParseCell {
                row: 1,
                dim: 1,
                cell: "abc".into()
            }
        );
    }

    #[test]
    fn parse_rejects_nan_literal() {
        assert!(matches!(
            parse("NaN,1\n"),
            Err(ModelError::ParseCell { .. })
        ));
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        assert!(matches!(
            parse("1,2\n3\n"),
            Err(ModelError::RowArity { .. })
        ));
    }

    #[test]
    fn parse_rejects_empty() {
        assert_eq!(parse(""), Err(ModelError::EmptyInput));
        assert_eq!(parse("# only a comment\n"), Err(ModelError::EmptyInput));
    }

    #[test]
    fn parse_rejects_all_missing_row() {
        assert_eq!(parse("1,2\n-,-\n"), Err(ModelError::AllMissingRow(1)));
    }

    #[test]
    fn labeled_with_single_label_column_is_empty_input() {
        assert_eq!(parse_labeled("x\ny\n"), Err(ModelError::EmptyInput));
    }

    #[test]
    fn format_value_compact() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(-2.0), "-2");
        assert_eq!(format_value(2.5), "2.5");
    }

    #[test]
    fn negative_and_float_values_roundtrip() {
        let ds = parse("-1.25,3\n0.5,-\n").unwrap();
        assert_eq!(ds.value(0, 0), Some(-1.25));
        let back = parse(&to_text(&ds)).unwrap();
        assert_eq!(back, ds);
    }
}
