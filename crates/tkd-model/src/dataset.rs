//! Datasets of incomplete multi-dimensional objects.

use crate::{DimMask, ModelError, ObjectId, MAX_DIMS};
use tkd_bitvec::SharedWords;

/// Borrowed-or-owned storage of the flat row-major value slab. Shared
/// storage views a snapshot buffer's words as `f64`s (zero-copy load);
/// the first mutation promotes to an owned copy.
#[derive(Clone, Debug)]
enum ValueSlab {
    Owned(Vec<f64>),
    Shared(SharedWords),
}

impl ValueSlab {
    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            ValueSlab::Owned(v) => v,
            ValueSlab::Shared(s) => s.as_f64s(),
        }
    }

    #[inline]
    fn is_shared(&self) -> bool {
        matches!(self, ValueSlab::Shared(_))
    }

    #[inline]
    fn to_mut(&mut self) -> &mut Vec<f64> {
        if let ValueSlab::Shared(s) = self {
            *self = ValueSlab::Owned(s.as_f64s().to_vec());
        }
        match self {
            ValueSlab::Owned(v) => v,
            ValueSlab::Shared(_) => unreachable!("shared slab survived promotion"),
        }
    }
}

/// Borrowed-or-owned storage of the mask array, same promotion contract
/// as [`ValueSlab`].
#[derive(Clone, Debug)]
enum MaskSlab {
    Owned(Vec<DimMask>),
    Shared(SharedWords),
}

impl MaskSlab {
    #[inline]
    fn as_slice(&self) -> &[DimMask] {
        match self {
            MaskSlab::Owned(v) => v,
            MaskSlab::Shared(s) => {
                let w = s.as_words();
                // SAFETY: DimMask is #[repr(transparent)] over u64, so the
                // two slices have identical layout; every bit pattern is a
                // valid mask (validation rejects out-of-range bits before
                // the slab is adopted). The view borrows `s`.
                unsafe { std::slice::from_raw_parts(w.as_ptr().cast::<DimMask>(), w.len()) }
            }
        }
    }

    #[inline]
    fn is_shared(&self) -> bool {
        matches!(self, MaskSlab::Shared(_))
    }

    #[inline]
    fn to_mut(&mut self) -> &mut Vec<DimMask> {
        if let MaskSlab::Shared(_) = self {
            *self = MaskSlab::Owned(self.as_slice().to_vec());
        }
        match self {
            MaskSlab::Owned(v) => v,
            MaskSlab::Shared(_) => unreachable!("shared slab survived promotion"),
        }
    }
}

/// A set of `d`-dimensional objects with possibly missing values.
///
/// Storage is struct-of-arrays: one flat row-major value buffer plus one
/// [`DimMask`] per object. Missing slots hold `NaN` internally but are never
/// exposed — every accessor consults the mask first.
///
/// Both slabs are borrowed-or-owned: a zero-copy snapshot load adopts views
/// of the shared file buffer ([`Dataset::from_shared_parts`]), and the
/// first in-place mutation promotes the touched slab to an owned copy.
///
/// Objects are addressed by their [`ObjectId`] (row index, insertion order).
#[derive(Clone, Debug)]
pub struct Dataset {
    dims: usize,
    values: ValueSlab,
    masks: MaskSlab,
    labels: Option<Vec<String>>,
}

#[cfg(feature = "serde")]
impl serde::Serialize for Dataset {
    /// Serializes as `{ dims, rows, labels }` with `rows` holding
    /// `Option<f64>` cells — the same shape [`Dataset::from_rows`] accepts.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Dataset", 3)?;
        s.serialize_field("dims", &self.dims)?;
        let rows: Vec<Vec<Option<f64>>> = self.ids().map(|o| self.row(o).to_options()).collect();
        s.serialize_field("rows", &rows)?;
        s.serialize_field("labels", &self.labels)?;
        s.end()
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Dataset {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw {
            dims: usize,
            rows: Vec<Vec<Option<f64>>>,
            labels: Option<Vec<String>>,
        }
        let raw = Raw::deserialize(deserializer)?;
        let mut b = Dataset::builder(raw.dims).map_err(serde::de::Error::custom)?;
        match raw.labels {
            Some(labels) if labels.len() == raw.rows.len() => {
                for (label, row) in labels.into_iter().zip(&raw.rows) {
                    b.push_labeled(label, row)
                        .map_err(serde::de::Error::custom)?;
                }
            }
            Some(_) => {
                return Err(serde::de::Error::custom("labels/rows length mismatch"));
            }
            None => {
                for row in &raw.rows {
                    b.push(row).map_err(serde::de::Error::custom)?;
                }
            }
        }
        Ok(b.build())
    }
}

impl PartialEq for Dataset {
    /// Structural equality over *observed* cells only (missing slots hold
    /// NaN internally, so a derived comparison would always fail).
    fn eq(&self, other: &Self) -> bool {
        let (va, vb) = (self.vals(), other.vals());
        self.dims == other.dims
            && self.msks() == other.msks()
            && self.labels == other.labels
            && self.msks().iter().enumerate().all(|(i, m)| {
                m.iter()
                    .all(|d| va[i * self.dims + d] == vb[i * other.dims + d])
            })
    }
}

impl Eq for Dataset {}

impl Dataset {
    /// Start building a dataset with the given dimensionality.
    ///
    /// # Errors
    /// [`ModelError::BadDimensionality`] unless `1 <= dims <= MAX_DIMS`.
    pub fn builder(dims: usize) -> Result<DatasetBuilder, ModelError> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(ModelError::BadDimensionality(dims));
        }
        Ok(DatasetBuilder {
            dims,
            values: Vec::new(),
            masks: Vec::new(),
            labels: Vec::new(),
            any_label: false,
        })
    }

    /// Build a dataset from rows of `Option<f64>` (None = missing).
    ///
    /// # Errors
    /// Propagates the builder's validation errors (arity, NaN, all-missing
    /// rows, bad dimensionality).
    pub fn from_rows(dims: usize, rows: &[Vec<Option<f64>>]) -> Result<Self, ModelError> {
        let mut b = Self::builder(dims)?;
        for row in rows {
            b.push(row)?;
        }
        Ok(b.build())
    }

    /// Rebuild a dataset from its raw storage — the snapshot codec's
    /// entry point, adopting the flat value slab and mask array by move
    /// (no per-row `Vec<Option<f64>>` staging).
    ///
    /// Validation is exactly the builder's invariants, restated over the
    /// raw form: consistent lengths, no mask bit at or beyond `dims`, no
    /// all-missing row, observed slots non-NaN — plus one canonical-form
    /// rule the in-memory representation always satisfies: missing slots
    /// hold the canonical `f64::NAN` bit pattern (which keeps
    /// re-serialization byte-deterministic).
    ///
    /// # Errors
    /// [`ModelError::BadDimensionality`], [`ModelError::RowArity`] (length
    /// mismatches, including a labels array of the wrong length),
    /// [`ModelError::AllMissingRow`], or [`ModelError::NaNValue`] (also
    /// raised for a non-canonical missing slot, reported at its row/dim).
    pub fn from_raw_parts(
        dims: usize,
        values: Vec<f64>,
        masks: Vec<DimMask>,
        labels: Option<Vec<String>>,
    ) -> Result<Self, ModelError> {
        check_parts(dims, &values, &masks, labels.as_deref())?;
        Ok(Dataset {
            dims,
            values: ValueSlab::Owned(values),
            masks: MaskSlab::Owned(masks),
            labels,
        })
    }

    /// Like [`Dataset::from_raw_parts`], but adopting borrowed views of a
    /// shared snapshot buffer instead of owned slabs — the zero-copy load
    /// entry point. `values` is reinterpreted as `f64`s and `masks` as
    /// [`DimMask`]s; validation is identical to the owned constructor, and
    /// the first in-place mutation promotes the touched slab to an owned
    /// copy.
    ///
    /// # Errors
    /// Same conditions as [`Dataset::from_raw_parts`].
    pub fn from_shared_parts(
        dims: usize,
        values: SharedWords,
        masks: SharedWords,
        labels: Option<Vec<String>>,
    ) -> Result<Self, ModelError> {
        let values = ValueSlab::Shared(values);
        let masks = MaskSlab::Shared(masks);
        check_parts(dims, values.as_slice(), masks.as_slice(), labels.as_deref())?;
        Ok(Dataset {
            dims,
            values,
            masks,
            labels,
        })
    }

    /// Does either slab still borrow a shared snapshot buffer (i.e. the
    /// dataset has not been mutated since a zero-copy load)?
    #[inline]
    pub fn is_shared(&self) -> bool {
        self.values.is_shared() || self.masks.is_shared()
    }

    /// Read-only value slab.
    #[inline]
    fn vals(&self) -> &[f64] {
        self.values.as_slice()
    }

    /// Read-only mask slab.
    #[inline]
    fn msks(&self) -> &[DimMask] {
        self.masks.as_slice()
    }

    /// The raw row-major value slab (missing slots hold the canonical
    /// NaN) — the storage [`Dataset::from_raw_parts`] adopts back.
    #[inline]
    pub fn raw_values(&self) -> &[f64] {
        self.vals()
    }

    /// The label array, if this dataset is labeled (one entry per object;
    /// unlabeled rows of a labeled dataset hold the empty string).
    #[inline]
    pub fn labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.msks().len()
    }

    /// Is the dataset empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.msks().is_empty()
    }

    /// Dimensionality `d` of the data space.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Observation mask of object `id` (the paper's `bo`).
    #[inline]
    pub fn mask(&self, id: ObjectId) -> DimMask {
        self.msks()[id as usize]
    }

    /// All masks, indexed by object id.
    #[inline]
    pub fn masks(&self) -> &[DimMask] {
        self.msks()
    }

    /// Value of object `id` at dimension `dim`, or `None` if missing.
    #[inline]
    pub fn value(&self, id: ObjectId, dim: usize) -> Option<f64> {
        if self.msks()[id as usize].observed(dim) {
            Some(self.vals()[id as usize * self.dims + dim])
        } else {
            None
        }
    }

    /// Value of object `id` at dimension `dim` **without checking the mask**.
    ///
    /// Returns the raw storage slot, which is NaN for missing values. Callers
    /// must have established observedness through the mask; this is the hot
    /// path used by the algorithms after a mask intersection test.
    #[inline]
    pub fn raw_value(&self, id: ObjectId, dim: usize) -> f64 {
        self.vals()[id as usize * self.dims + dim]
    }

    /// A borrowed view of one object.
    #[inline]
    pub fn row(&self, id: ObjectId) -> Row<'_> {
        let i = id as usize;
        Row {
            values: &self.vals()[i * self.dims..(i + 1) * self.dims],
            mask: self.msks()[i],
        }
    }

    /// Optional human-readable label of object `id` (e.g. `"C2"` in the
    /// paper's sample dataset).
    pub fn label(&self, id: ObjectId) -> Option<&str> {
        self.labels.as_ref().map(|ls| ls[id as usize].as_str())
    }

    /// Find an object id by label. Linear scan; intended for tests/examples.
    pub fn id_by_label(&self, label: &str) -> Option<ObjectId> {
        let ls = self.labels.as_ref()?;
        ls.iter().position(|l| l == label).map(|i| i as ObjectId)
    }

    /// Iterate over all object ids.
    #[inline]
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + Clone + 'static {
        0..self.len() as ObjectId
    }

    /// Project onto a subset of dimensions (subspace queries, after Tiakas
    /// et al.'s subspace dominating queries).
    ///
    /// Returns the projected dataset plus, for each surviving row, its id
    /// in `self` — objects that observe none of the chosen dimensions
    /// cannot participate in subspace dominance and are dropped (the model
    /// forbids all-missing rows).
    ///
    /// # Errors
    /// [`ModelError::BadDimensionality`] if `dims` is empty;
    /// [`ModelError::DimensionOutOfRange`] if any index is out of range.
    pub fn project(&self, dims: &[usize]) -> Result<(Dataset, Vec<ObjectId>), ModelError> {
        if dims.is_empty() {
            return Err(ModelError::BadDimensionality(0));
        }
        for &d in dims {
            if d >= self.dims {
                return Err(ModelError::DimensionOutOfRange {
                    dim: d,
                    dims: self.dims,
                });
            }
        }
        let mut b = Dataset::builder(dims.len())?;
        let mut kept = Vec::new();
        for o in self.ids() {
            let row: Vec<Option<f64>> = dims.iter().map(|&d| self.value(o, d)).collect();
            if row.iter().all(Option::is_none) {
                continue;
            }
            match self.label(o) {
                Some(l) => b.push_labeled(l, &row)?,
                None => b.push(&row)?,
            };
            kept.push(o);
        }
        Ok((b.build(), kept))
    }

    /// Append an unlabeled row in place, returning its id — the dynamic
    /// counterpart of [`DatasetBuilder::push`], with identical validation.
    ///
    /// # Errors
    /// [`ModelError::RowArity`], [`ModelError::NaNValue`], or
    /// [`ModelError::AllMissingRow`], exactly as the builder rejects them;
    /// the dataset is unchanged on error.
    pub fn push_row(&mut self, row: &[Option<f64>]) -> Result<ObjectId, ModelError> {
        self.push_row_inner(row, None)
    }

    /// Append a labeled row in place. If the dataset was unlabeled so far,
    /// earlier rows get empty labels (the builder's convention).
    ///
    /// # Errors
    /// Same validation as [`Dataset::push_row`].
    pub fn push_row_labeled(
        &mut self,
        label: impl Into<String>,
        row: &[Option<f64>],
    ) -> Result<ObjectId, ModelError> {
        self.push_row_inner(row, Some(label.into()))
    }

    fn push_row_inner(
        &mut self,
        row: &[Option<f64>],
        label: Option<String>,
    ) -> Result<ObjectId, ModelError> {
        let r = self.msks().len();
        let mask = validate_row(self.dims, row, r)?;
        self.values
            .to_mut()
            .extend(row.iter().map(|v| v.unwrap_or(f64::NAN)));
        self.masks.to_mut().push(mask);
        match label {
            Some(l) => {
                let labels = self.labels.get_or_insert_with(|| vec![String::new(); r]);
                labels.push(l);
            }
            None => {
                if let Some(labels) = &mut self.labels {
                    labels.push(String::new());
                }
            }
        }
        Ok(r as ObjectId)
    }

    /// Overwrite one cell of object `id` in place (`None` clears it to
    /// missing), updating the observation mask.
    ///
    /// # Errors
    /// [`ModelError::DimensionOutOfRange`] for a bad dimension,
    /// [`ModelError::NaNValue`] for NaN, and [`ModelError::AllMissingRow`]
    /// when clearing the object's only observed value (the model forbids
    /// all-missing rows, §3). The dataset is unchanged on error.
    ///
    /// # Panics
    /// Panics if `id` is out of range (like every accessor).
    pub fn set_value(
        &mut self,
        id: ObjectId,
        dim: usize,
        value: Option<f64>,
    ) -> Result<(), ModelError> {
        let i = id as usize;
        assert!(i < self.msks().len(), "object id {id} out of range");
        if dim >= self.dims {
            return Err(ModelError::DimensionOutOfRange {
                dim,
                dims: self.dims,
            });
        }
        match value {
            Some(v) if v.is_nan() => Err(ModelError::NaNValue { row: i, dim }),
            Some(v) => {
                self.values.to_mut()[i * self.dims + dim] = v;
                self.masks.to_mut()[i].set(dim);
                Ok(())
            }
            None => {
                let mut mask = self.msks()[i];
                mask.unset(dim);
                if mask.is_empty() {
                    return Err(ModelError::AllMissingRow(i));
                }
                self.values.to_mut()[i * self.dims + dim] = f64::NAN;
                self.masks.to_mut()[i] = mask;
                Ok(())
            }
        }
    }

    /// Restrict the dataset to the given object ids (in the given order).
    ///
    /// Labels are carried over. Useful for sampling experiments.
    pub fn select(&self, ids: &[ObjectId]) -> Dataset {
        let mut values = Vec::with_capacity(ids.len() * self.dims);
        let mut masks = Vec::with_capacity(ids.len());
        let mut labels = self.labels.as_ref().map(|_| Vec::with_capacity(ids.len()));
        for &id in ids {
            let i = id as usize;
            values.extend_from_slice(&self.vals()[i * self.dims..(i + 1) * self.dims]);
            masks.push(self.msks()[i]);
            if let (Some(out), Some(ls)) = (labels.as_mut(), self.labels.as_ref()) {
                out.push(ls[i].clone());
            }
        }
        Dataset {
            dims: self.dims,
            values: ValueSlab::Owned(values),
            masks: MaskSlab::Owned(masks),
            labels,
        }
    }
}

/// Validation shared by [`Dataset::from_raw_parts`] and
/// [`Dataset::from_shared_parts`]: the builder's invariants restated over
/// the raw slabs — consistent lengths, no mask bit at or beyond `dims`, no
/// all-missing row, observed slots non-NaN — plus one canonical-form rule
/// the in-memory representation always satisfies: missing slots hold the
/// canonical `f64::NAN` bit pattern (which keeps re-serialization
/// byte-deterministic).
fn check_parts(
    dims: usize,
    values: &[f64],
    masks: &[DimMask],
    labels: Option<&[String]>,
) -> Result<(), ModelError> {
    if dims == 0 || dims > MAX_DIMS {
        return Err(ModelError::BadDimensionality(dims));
    }
    let n = masks.len();
    if values.len() != n * dims {
        return Err(ModelError::RowArity {
            row: n,
            got: values.len(),
            expected: n * dims,
        });
    }
    if let Some(ls) = &labels {
        if ls.len() != n {
            return Err(ModelError::RowArity {
                row: n,
                got: ls.len(),
                expected: n,
            });
        }
    }
    let canonical_nan = f64::NAN.to_bits();
    for (r, mask) in masks.iter().enumerate() {
        if mask.is_empty() {
            return Err(ModelError::AllMissingRow(r));
        }
        if dims < MAX_DIMS && mask.bits() >> dims != 0 {
            // A set bit at or beyond `dims` names a dimension that
            // does not exist.
            return Err(ModelError::DimensionOutOfRange {
                dim: 63 - mask.bits().leading_zeros() as usize,
                dims,
            });
        }
        for d in 0..dims {
            let v = values[r * dims + d];
            if mask.observed(d) {
                if v.is_nan() {
                    return Err(ModelError::NaNValue { row: r, dim: d });
                }
            } else if v.to_bits() != canonical_nan {
                return Err(ModelError::NaNValue { row: r, dim: d });
            }
        }
    }
    Ok(())
}

/// Shared row validation of the builder, the in-place mutators, and the
/// dynamic update layer: arity, NaN rejection, and the §3
/// at-least-one-observed-value invariant. `r` is the row index reported
/// in errors. Returns the row's observation mask.
///
/// # Errors
/// [`ModelError::RowArity`], [`ModelError::NaNValue`], or
/// [`ModelError::AllMissingRow`].
pub fn validate_row(dims: usize, row: &[Option<f64>], r: usize) -> Result<DimMask, ModelError> {
    if row.len() != dims {
        return Err(ModelError::RowArity {
            row: r,
            got: row.len(),
            expected: dims,
        });
    }
    let mut mask = DimMask::EMPTY;
    for (d, v) in row.iter().enumerate() {
        if let Some(x) = v {
            if x.is_nan() {
                return Err(ModelError::NaNValue { row: r, dim: d });
            }
            mask.set(d);
        }
    }
    if mask.is_empty() {
        return Err(ModelError::AllMissingRow(r));
    }
    Ok(mask)
}

/// Borrowed view of a single object: its value slots and observation mask.
#[derive(Clone, Copy, Debug)]
pub struct Row<'a> {
    values: &'a [f64],
    mask: DimMask,
}

impl<'a> Row<'a> {
    /// Observation mask of this object.
    #[inline]
    pub fn mask(&self) -> DimMask {
        self.mask
    }

    /// Value at `dim`, or `None` if missing.
    #[inline]
    pub fn value(&self, dim: usize) -> Option<f64> {
        if self.mask.observed(dim) {
            Some(self.values[dim])
        } else {
            None
        }
    }

    /// Iterate over `(dim, value)` pairs of the observed dimensions.
    pub fn observed(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.mask.iter().map(move |d| (d, self.values[d]))
    }

    /// The object as a vector of options (allocates; for display/tests).
    pub fn to_options(&self) -> Vec<Option<f64>> {
        (0..self.values.len()).map(|d| self.value(d)).collect()
    }
}

/// Incremental [`Dataset`] constructor with row validation.
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    dims: usize,
    values: Vec<f64>,
    masks: Vec<DimMask>,
    labels: Vec<String>,
    any_label: bool,
}

impl DatasetBuilder {
    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Has nothing been pushed yet?
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Reserve capacity for `n` additional rows.
    pub fn reserve(&mut self, n: usize) {
        self.values.reserve(n * self.dims);
        self.masks.reserve(n);
    }

    /// Append an unlabeled row.
    ///
    /// # Errors
    /// Rejects rows of the wrong arity, rows containing NaN, and rows with no
    /// observed value (the paper only considers objects with at least one
    /// observed dimension, §3).
    pub fn push(&mut self, row: &[Option<f64>]) -> Result<ObjectId, ModelError> {
        self.push_inner(row, String::new())
    }

    /// Append a labeled row (labels are used by the paper's worked examples).
    ///
    /// # Errors
    /// Same validation as [`DatasetBuilder::push`].
    pub fn push_labeled(
        &mut self,
        label: impl Into<String>,
        row: &[Option<f64>],
    ) -> Result<ObjectId, ModelError> {
        self.any_label = true;
        self.push_inner(row, label.into())
    }

    fn push_inner(&mut self, row: &[Option<f64>], label: String) -> Result<ObjectId, ModelError> {
        let r = self.masks.len();
        let mask = validate_row(self.dims, row, r)?;
        self.values
            .extend(row.iter().map(|v| v.unwrap_or(f64::NAN)));
        self.masks.push(mask);
        self.labels.push(label);
        Ok(r as ObjectId)
    }

    /// Finish building.
    pub fn build(self) -> Dataset {
        Dataset {
            dims: self.dims,
            values: ValueSlab::Owned(self.values),
            masks: MaskSlab::Owned(self.masks),
            labels: if self.any_label {
                Some(self.labels)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_rows(
            3,
            &[
                vec![Some(1.0), None, Some(3.0)],
                vec![None, Some(2.0), None],
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.dims(), 3);
        assert_eq!(ds.value(0, 0), Some(1.0));
        assert_eq!(ds.value(0, 1), None);
        assert_eq!(ds.value(0, 2), Some(3.0));
        assert_eq!(ds.value(1, 0), None);
        assert_eq!(ds.value(1, 1), Some(2.0));
        assert_eq!(ds.mask(0), DimMask::from_indices([0, 2]));
        assert_eq!(ds.mask(1), DimMask::from_indices([1]));
    }

    #[test]
    fn raw_value_is_nan_on_missing() {
        let ds = tiny();
        assert!(ds.raw_value(0, 1).is_nan());
        assert_eq!(ds.raw_value(1, 1), 2.0);
    }

    #[test]
    fn row_view() {
        let ds = tiny();
        let r = ds.row(0);
        assert_eq!(r.mask(), ds.mask(0));
        assert_eq!(r.value(0), Some(1.0));
        assert_eq!(r.value(1), None);
        assert_eq!(r.observed().collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
        assert_eq!(r.to_options(), vec![Some(1.0), None, Some(3.0)]);
    }

    #[test]
    fn rejects_zero_and_excess_dims() {
        assert_eq!(
            Dataset::from_rows(0, &[]).unwrap_err(),
            ModelError::BadDimensionality(0)
        );
        assert_eq!(
            Dataset::from_rows(65, &[]).unwrap_err(),
            ModelError::BadDimensionality(65)
        );
        assert!(Dataset::from_rows(64, &[]).is_ok());
    }

    #[test]
    fn rejects_bad_rows() {
        let mut b = Dataset::builder(2).unwrap();
        assert_eq!(
            b.push(&[Some(1.0)]).unwrap_err(),
            ModelError::RowArity {
                row: 0,
                got: 1,
                expected: 2
            }
        );
        assert_eq!(
            b.push(&[Some(f64::NAN), None]).unwrap_err(),
            ModelError::NaNValue { row: 0, dim: 0 }
        );
        assert_eq!(
            b.push(&[None, None]).unwrap_err(),
            ModelError::AllMissingRow(0)
        );
        // Valid row still accepted after failures.
        assert_eq!(b.push(&[Some(0.5), None]).unwrap(), 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn labels_roundtrip() {
        let mut b = Dataset::builder(1).unwrap();
        b.push_labeled("A1", &[Some(1.0)]).unwrap();
        b.push_labeled("B2", &[Some(2.0)]).unwrap();
        let ds = b.build();
        assert_eq!(ds.label(0), Some("A1"));
        assert_eq!(ds.label(1), Some("B2"));
        assert_eq!(ds.id_by_label("B2"), Some(1));
        assert_eq!(ds.id_by_label("zzz"), None);
    }

    #[test]
    fn unlabeled_dataset_has_no_labels() {
        let ds = tiny();
        assert_eq!(ds.label(0), None);
        assert_eq!(ds.id_by_label("x"), None);
    }

    #[test]
    fn select_subsets_and_reorders() {
        let mut b = Dataset::builder(2).unwrap();
        b.push_labeled("x", &[Some(1.0), None]).unwrap();
        b.push_labeled("y", &[Some(2.0), Some(0.0)]).unwrap();
        b.push_labeled("z", &[None, Some(5.0)]).unwrap();
        let ds = b.build();
        let sub = ds.select(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.label(0), Some("z"));
        assert_eq!(sub.value(0, 1), Some(5.0));
        assert_eq!(sub.label(1), Some("x"));
        assert_eq!(sub.value(1, 0), Some(1.0));
    }

    #[test]
    fn project_keeps_observing_rows_only() {
        let mut b = Dataset::builder(3).unwrap();
        b.push_labeled("p", &[Some(1.0), None, Some(3.0)]).unwrap();
        b.push_labeled("q", &[None, Some(2.0), None]).unwrap();
        b.push_labeled("r", &[Some(4.0), Some(5.0), None]).unwrap();
        let ds = b.build();
        // Subspace {0, 2}: q observes neither and is dropped.
        let (sub, kept) = ds.project(&[0, 2]).unwrap();
        assert_eq!(sub.dims(), 2);
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(sub.label(0), Some("p"));
        assert_eq!(sub.value(0, 1), Some(3.0));
        assert_eq!(sub.label(1), Some("r"));
        assert_eq!(sub.value(1, 0), Some(4.0));
        assert_eq!(sub.value(1, 1), None);
    }

    #[test]
    fn project_can_reorder_and_duplicate_dims() {
        let ds = tiny();
        let (sub, kept) = ds.project(&[2, 0]).unwrap();
        assert_eq!(kept, vec![0]); // object 1 observes only dim 1
        assert_eq!(sub.value(0, 0), Some(3.0));
        assert_eq!(sub.value(0, 1), Some(1.0));
    }

    #[test]
    fn project_rejects_empty_subspace() {
        let ds = tiny();
        assert_eq!(
            ds.project(&[]).unwrap_err(),
            ModelError::BadDimensionality(0)
        );
    }

    #[test]
    fn project_rejects_bad_dimension() {
        assert_eq!(
            tiny().project(&[7]).unwrap_err(),
            ModelError::DimensionOutOfRange { dim: 7, dims: 3 }
        );
    }

    #[test]
    fn ids_iterates_in_order() {
        let ds = tiny();
        assert_eq!(ds.ids().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn push_row_appends_with_builder_validation() {
        let mut ds = tiny();
        assert_eq!(
            ds.push_row(&[Some(1.0)]).unwrap_err(),
            ModelError::RowArity {
                row: 2,
                got: 1,
                expected: 3
            }
        );
        assert_eq!(
            ds.push_row(&[None, None, None]).unwrap_err(),
            ModelError::AllMissingRow(2)
        );
        assert_eq!(
            ds.push_row(&[Some(f64::NAN), None, None]).unwrap_err(),
            ModelError::NaNValue { row: 2, dim: 0 }
        );
        assert_eq!(ds.len(), 2, "failed pushes change nothing");
        let id = ds.push_row(&[None, Some(7.0), None]).unwrap();
        assert_eq!(id, 2);
        assert_eq!(ds.value(2, 1), Some(7.0));
        assert_eq!(ds.mask(2), DimMask::from_indices([1]));
    }

    #[test]
    fn push_row_labeled_backfills_labels() {
        let mut ds = tiny();
        assert_eq!(ds.label(0), None);
        let id = ds
            .push_row_labeled("new", &[Some(1.0), None, None])
            .unwrap();
        assert_eq!(ds.label(id), Some("new"));
        assert_eq!(ds.label(0), Some(""), "earlier rows get empty labels");
        // Unlabeled pushes onto a labeled dataset keep lengths in sync.
        let id2 = ds.push_row(&[Some(2.0), None, None]).unwrap();
        assert_eq!(ds.label(id2), Some(""));
    }

    #[test]
    fn set_value_updates_cell_and_mask() {
        let mut ds = tiny();
        ds.set_value(0, 1, Some(9.0)).unwrap();
        assert_eq!(ds.value(0, 1), Some(9.0));
        ds.set_value(0, 1, None).unwrap();
        assert_eq!(ds.value(0, 1), None);
        assert!(ds.raw_value(0, 1).is_nan());
        // Clearing the only observed value of row 1 is rejected.
        assert_eq!(
            ds.set_value(1, 1, None).unwrap_err(),
            ModelError::AllMissingRow(1)
        );
        assert_eq!(ds.value(1, 1), Some(2.0), "rejected update is a no-op");
        assert_eq!(
            ds.set_value(0, 9, Some(1.0)).unwrap_err(),
            ModelError::DimensionOutOfRange { dim: 9, dims: 3 }
        );
        assert_eq!(
            ds.set_value(0, 0, Some(f64::NAN)).unwrap_err(),
            ModelError::NaNValue { row: 0, dim: 0 }
        );
    }

    #[test]
    fn from_raw_parts_roundtrips() {
        let mut b = Dataset::builder(3).unwrap();
        b.push_labeled("p", &[Some(1.0), None, Some(3.0)]).unwrap();
        b.push_labeled("q", &[None, Some(-0.0), None]).unwrap();
        let ds = b.build();
        let rebuilt = Dataset::from_raw_parts(
            ds.dims(),
            ds.raw_values().to_vec(),
            ds.masks().to_vec(),
            ds.labels().map(<[String]>::to_vec),
        )
        .unwrap();
        assert_eq!(rebuilt, ds);
        assert_eq!(rebuilt.label(0), Some("p"));
        // Unlabeled datasets round-trip a None label array.
        let plain = tiny();
        let rebuilt = Dataset::from_raw_parts(
            plain.dims(),
            plain.raw_values().to_vec(),
            plain.masks().to_vec(),
            None,
        )
        .unwrap();
        assert_eq!(rebuilt, plain);
    }

    #[test]
    fn from_raw_parts_rejects_inconsistencies() {
        let ds = tiny();
        let (vals, masks) = (ds.raw_values().to_vec(), ds.masks().to_vec());
        assert_eq!(
            Dataset::from_raw_parts(0, vals.clone(), masks.clone(), None).unwrap_err(),
            ModelError::BadDimensionality(0)
        );
        // Value slab length mismatch.
        assert!(matches!(
            Dataset::from_raw_parts(3, vals[..4].to_vec(), masks.clone(), None),
            Err(ModelError::RowArity { .. })
        ));
        // Labels of the wrong length.
        assert!(matches!(
            Dataset::from_raw_parts(3, vals.clone(), masks.clone(), Some(vec!["x".into()])),
            Err(ModelError::RowArity { .. })
        ));
        // All-missing mask.
        let mut bad = masks.clone();
        bad[1] = DimMask::EMPTY;
        assert_eq!(
            Dataset::from_raw_parts(3, vals.clone(), bad, None).unwrap_err(),
            ModelError::AllMissingRow(1)
        );
        // Mask bit beyond dims.
        let mut bad = masks.clone();
        bad[0] = DimMask::from_bits(0b1000);
        assert_eq!(
            Dataset::from_raw_parts(3, vals.clone(), bad, None).unwrap_err(),
            ModelError::DimensionOutOfRange { dim: 3, dims: 3 }
        );
        // NaN in an observed slot.
        let mut bad_vals = vals.clone();
        bad_vals[0] = f64::NAN;
        assert_eq!(
            Dataset::from_raw_parts(3, bad_vals, masks.clone(), None).unwrap_err(),
            ModelError::NaNValue { row: 0, dim: 0 }
        );
        // Non-canonical NaN payload in a missing slot.
        let mut bad_vals = vals;
        bad_vals[1] = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert_eq!(
            Dataset::from_raw_parts(3, bad_vals, masks, None).unwrap_err(),
            ModelError::NaNValue { row: 0, dim: 1 }
        );
    }

    #[test]
    fn builder_reserve_and_len() {
        let mut b = Dataset::builder(2).unwrap();
        assert!(b.is_empty());
        b.reserve(10);
        b.push(&[Some(1.0), Some(2.0)]).unwrap();
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;

    /// Static check that the impls exist with the right bounds.
    fn assert_roundtrippable<T: serde::Serialize + serde::de::DeserializeOwned>() {}

    #[test]
    fn dataset_implements_serde() {
        assert_roundtrippable::<Dataset>();
    }
}
