//! Dimension masks: which dimensions of an object are observed.

use core::fmt;

/// Maximum number of dimensions supported by the model.
///
/// Masks are a single machine word. The paper's widest dataset (MovieLens)
/// has 60 dimensions, so 64 is comfortably sufficient while keeping the
/// comparability test (`bo & bo' ≠ 0`) a single AND instruction.
pub const MAX_DIMS: usize = 64;

/// A set of observed dimensions, the paper's bit vector `bo`.
///
/// Bit `i` is set iff dimension `i` is observed. The paper's *comparability*
/// test between two objects is [`DimMask::intersects`], and the number of
/// commonly observed dimensions (`|bp & bo|` in Algorithm 3) is
/// `a.and(b).count()`.
/// `#[repr(transparent)]` over the raw `u64` so the snapshot loader can
/// reinterpret a borrowed word slab as a mask slab without copying.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(transparent)]
pub struct DimMask(u64);

impl DimMask {
    /// The empty mask (no dimension observed).
    pub const EMPTY: DimMask = DimMask(0);

    /// Mask with the lowest `dims` dimensions all observed.
    ///
    /// # Panics
    /// Panics if `dims > MAX_DIMS`.
    #[inline]
    pub fn all(dims: usize) -> Self {
        assert!(dims <= MAX_DIMS, "at most {MAX_DIMS} dimensions supported");
        if dims == MAX_DIMS {
            DimMask(u64::MAX)
        } else {
            DimMask((1u64 << dims) - 1)
        }
    }

    /// Build a mask from raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        DimMask(bits)
    }

    /// Raw bits of the mask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Build a mask from a list of observed dimension indexes.
    ///
    /// # Panics
    /// Panics if any index is `>= MAX_DIMS`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut bits = 0u64;
        for i in iter {
            assert!(i < MAX_DIMS, "dimension index {i} out of range");
            bits |= 1u64 << i;
        }
        DimMask(bits)
    }

    /// Is dimension `i` observed?
    #[inline]
    pub const fn observed(self, i: usize) -> bool {
        i < MAX_DIMS && (self.0 >> i) & 1 == 1
    }

    /// Mark dimension `i` observed.
    ///
    /// # Panics
    /// Panics if `i >= MAX_DIMS`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < MAX_DIMS, "dimension index {i} out of range");
        self.0 |= 1u64 << i;
    }

    /// Mark dimension `i` missing (the inverse of [`DimMask::set`], used by
    /// dynamic value updates that clear a cell).
    ///
    /// # Panics
    /// Panics if `i >= MAX_DIMS`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        assert!(i < MAX_DIMS, "dimension index {i} out of range");
        self.0 &= !(1u64 << i);
    }

    /// Number of observed dimensions.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Is no dimension observed?
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Intersection of two masks: the commonly observed dimensions.
    #[inline]
    pub const fn and(self, other: DimMask) -> DimMask {
        DimMask(self.0 & other.0)
    }

    /// Union of two masks.
    #[inline]
    pub const fn or(self, other: DimMask) -> DimMask {
        DimMask(self.0 | other.0)
    }

    /// The paper's comparability test: do the objects share at least one
    /// observed dimension (`bo & bo' ≠ 0`)?
    #[inline]
    pub const fn intersects(self, other: DimMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Is `self` a subset of `other` (every dimension observed by `self` is
    /// also observed by `other`)?
    #[inline]
    pub const fn is_subset_of(self, other: DimMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over the observed dimension indexes in ascending order.
    #[inline]
    pub fn iter(self) -> DimIter {
        DimIter(self.0)
    }
}

impl fmt::Debug for DimMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DimMask({:#b})", self.0)
    }
}

impl IntoIterator for DimMask {
    type Item = usize;
    type IntoIter = DimIter;
    fn into_iter(self) -> DimIter {
        self.iter()
    }
}

/// Iterator over the set bits of a [`DimMask`], lowest dimension first.
#[derive(Clone, Debug)]
pub struct DimIter(u64);

impl Iterator for DimIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear lowest set bit
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DimIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sets_low_bits() {
        assert_eq!(DimMask::all(0).bits(), 0);
        assert_eq!(DimMask::all(3).bits(), 0b111);
        assert_eq!(DimMask::all(64).bits(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at most 64 dimensions")]
    fn all_rejects_too_many_dims() {
        let _ = DimMask::all(65);
    }

    #[test]
    fn from_indices_roundtrip() {
        let m = DimMask::from_indices([0, 2, 5]);
        assert!(m.observed(0));
        assert!(!m.observed(1));
        assert!(m.observed(2));
        assert!(m.observed(5));
        assert_eq!(m.count(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn observed_out_of_range_is_false() {
        assert!(!DimMask::from_bits(u64::MAX).observed(64));
        assert!(!DimMask::from_bits(u64::MAX).observed(usize::MAX));
    }

    #[test]
    fn intersects_matches_paper_comparability() {
        // Fig. 2: c = (5, -) has mask 0b01, e = (-, 4) has mask 0b10. They
        // share no observed dimension, so they are incomparable.
        let c = DimMask::from_indices([0]);
        let e = DimMask::from_indices([1]);
        assert!(!c.intersects(e));
        let f = DimMask::from_indices([0, 1]);
        assert!(c.intersects(f));
        assert!(e.intersects(f));
    }

    #[test]
    fn subset_relation() {
        let small = DimMask::from_indices([1, 3]);
        let big = DimMask::from_indices([0, 1, 3]);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(small.is_subset_of(small));
        assert!(DimMask::EMPTY.is_subset_of(small));
    }

    #[test]
    fn set_and_empty() {
        let mut m = DimMask::EMPTY;
        assert!(m.is_empty());
        m.set(7);
        assert!(!m.is_empty());
        assert!(m.observed(7));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn iter_is_exact_size() {
        let m = DimMask::from_indices([0, 10, 63]);
        let it = m.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 10, 63]);
    }

    #[test]
    fn and_or_bits() {
        let a = DimMask::from_bits(0b1100);
        let b = DimMask::from_bits(0b1010);
        assert_eq!(a.and(b).bits(), 0b1000);
        assert_eq!(a.or(b).bits(), 0b1110);
    }
}
