//! Incomplete-data model for top-k dominating (TKD) queries.
//!
//! This crate provides the data substrate shared by every other crate in the
//! workspace: multi-dimensional objects in which any dimension value may be
//! *missing*, the datasets that hold them, and the dominance relationship over
//! incomplete data introduced by Khalefa et al. and used by Miao et al.
//! (*Top-k Dominating Queries on Incomplete Data*, TKDE 2016).
//!
//! # Model
//!
//! An object is a `d`-dimensional point where each coordinate is either an
//! observed [`f64`] or missing (rendered as `-` in the paper). Which
//! dimensions are observed is captured by a [`DimMask`] bit vector, exactly
//! the `bo` bit vector of the paper (bit `i` set ⇔ dimension `i` observed).
//!
//! Values follow the *smaller-is-better* convention of the paper's
//! Definition 1. Two objects are **comparable** iff they share at least one
//! observed dimension (`bo & bo' ≠ 0`), and `o` **dominates** `o'` iff `o`
//! is no worse on every commonly observed dimension and strictly better on
//! at least one.
//!
//! # Example
//!
//! ```
//! use tkd_model::{Dataset, dominance};
//!
//! // Objects f = (4, 2) and c = (5, -) from Fig. 2 of the paper.
//! let ds = Dataset::from_rows(2, &[
//!     vec![Some(4.0), Some(2.0)], // f
//!     vec![Some(5.0), None],      // c
//! ]).unwrap();
//! assert!(dominance::dominates(&ds, 0, 1)); // f dominates c on dimension 0
//! assert!(!dominance::dominates(&ds, 1, 0));
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
mod mask;

pub mod dominance;
pub mod fixtures;
pub mod io;
pub mod stats;

pub use dataset::{validate_row, Dataset, DatasetBuilder, Row};
pub use error::ModelError;
pub use mask::{DimIter, DimMask, MAX_DIMS};

/// Identifier of an object inside a [`Dataset`] — its row index.
///
/// `u32` keeps per-object bookkeeping small (datasets in the paper max out at
/// 250 K objects); convert with `as usize` at use sites.
pub type ObjectId = u32;
