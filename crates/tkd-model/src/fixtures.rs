//! The paper's worked examples, as ready-made datasets.
//!
//! Every algorithm crate in the workspace validates itself against these
//! fixtures, because the paper states exact scores, upper bounds, candidate
//! sets and query answers for them.

use crate::Dataset;

/// Fig. 1 — the movie recommender example of §1.
///
/// Four movies rated by five audiences (one dimension per audience, ratings
/// in `[1, 5]`, higher is better). The figure's raster is ambiguous in the
/// text dump, so the exact rating matrix was **reconstructed from the
/// prose**, which pins it down completely:
///
/// * `a2` rates `m2, m3, m4` but not `m1`;
/// * `a1, a2` rate `m2` but not `m1`; `a4, a5` rate `m1` but not `m2`;
/// * `m2 ≻ m3` via common dimensions `{a2, a3}` with `m2` strictly higher
///   on both;
/// * `score(m2) = |{m1, m3}| = 2`, `score(m1) = score(m3) = 0`,
///   `score(m4) = |{m1}| = 1`.
///
/// Because the model is smaller-is-better, ratings are stored **negated**;
/// the dominance facts above are preserved verbatim.
pub fn fig1_movies() -> Dataset {
    let neg = |v: f64| Some(-v);
    let mut b = Dataset::builder(5).expect("static dims");
    b.push_labeled("m1", &[None, None, neg(2.0), neg(3.0), neg(4.0)])
        .unwrap();
    b.push_labeled("m2", &[neg(5.0), neg(3.0), neg(4.0), None, None])
        .unwrap();
    b.push_labeled("m3", &[None, neg(2.0), neg(1.0), neg(5.0), neg(3.0)])
        .unwrap();
    b.push_labeled("m4", &[neg(3.0), neg(1.0), neg(5.0), neg(3.0), neg(4.0)])
        .unwrap();
    b.build()
}

/// Fig. 2 — the six 2-D points used throughout §3 (smaller is better).
///
/// Coordinates are reconstructed to satisfy **every** fact the paper states
/// about this figure: `c = (5,-)`, `e = (-,4)`, `f = (4,2)` are given
/// verbatim; `f ≻ {a, c, e}` (so `score(f) = 3`),
/// `score(b) = score(c) = score(e) = 2`, `score(d) = 1`, `score(a) = 0`,
/// `f ≻ e`, `e ≻ b`, and `f ⊁ b` (non-transitivity).
pub fn fig2_points() -> Dataset {
    let mut b = Dataset::builder(2).expect("static dims");
    b.push_labeled("a", &[Some(7.0), Some(7.0)]).unwrap();
    b.push_labeled("b", &[Some(3.0), Some(6.0)]).unwrap();
    b.push_labeled("c", &[Some(5.0), None]).unwrap();
    b.push_labeled("d", &[Some(9.0), Some(1.0)]).unwrap();
    b.push_labeled("e", &[None, Some(4.0)]).unwrap();
    b.push_labeled("f", &[Some(4.0), Some(2.0)]).unwrap();
    b.build()
}

/// Fig. 3 — the 20-object, 4-dimensional running example (verbatim values).
///
/// Objects are inserted in label order `A1..A5, B1..B5, C1..C5, D1..D5`,
/// matching the row order of the bitmap index in Fig. 6, so object id `i`
/// corresponds to bit `i` of the paper's vertical bit-vectors.
pub fn fig3_sample() -> Dataset {
    let rows: [(&str, [Option<f64>; 4]); 20] = [
        ("A1", [None, Some(3.0), Some(1.0), Some(3.0)]),
        ("A2", [None, Some(1.0), Some(2.0), Some(1.0)]),
        ("A3", [None, Some(1.0), Some(3.0), Some(4.0)]),
        ("A4", [None, Some(7.0), Some(4.0), Some(5.0)]),
        ("A5", [None, Some(4.0), Some(8.0), Some(3.0)]),
        ("B1", [None, None, Some(1.0), Some(2.0)]),
        ("B2", [None, None, Some(3.0), Some(1.0)]),
        ("B3", [None, None, Some(4.0), Some(9.0)]),
        ("B4", [None, None, Some(3.0), Some(7.0)]),
        ("B5", [None, None, Some(7.0), Some(4.0)]),
        ("C1", [Some(2.0), None, None, Some(3.0)]),
        ("C2", [Some(2.0), None, None, Some(1.0)]),
        ("C3", [Some(3.0), None, None, Some(2.0)]),
        ("C4", [Some(3.0), None, None, Some(3.0)]),
        ("C5", [Some(3.0), None, None, Some(4.0)]),
        ("D1", [Some(3.0), Some(5.0), None, Some(2.0)]),
        ("D2", [Some(2.0), Some(1.0), None, Some(4.0)]),
        ("D3", [Some(2.0), Some(4.0), None, Some(1.0)]),
        ("D4", [Some(4.0), Some(4.0), None, Some(5.0)]),
        ("D5", [Some(5.0), Some(5.0), None, Some(4.0)]),
    ];
    let mut b = Dataset::builder(4).expect("static dims");
    for (label, row) in rows {
        b.push_labeled(label, &row).unwrap();
    }
    b.build()
}

/// Fig. 5 — the `MaxScore` priority queue of the Fig. 3 dataset, in the
/// descending order printed by the paper.
pub fn fig5_maxscores() -> Vec<(&'static str, usize)> {
    vec![
        ("C2", 19),
        ("A2", 17),
        ("B2", 16),
        ("B1", 15),
        ("C3", 15),
        ("D3", 15),
        ("A1", 12),
        ("C1", 12),
        ("C4", 12),
        ("D1", 12),
        ("A5", 10),
        ("A3", 8),
        ("B5", 8),
        ("C5", 8),
        ("D2", 8),
        ("D5", 8),
        ("A4", 3),
        ("D4", 3),
        ("B4", 1),
        ("B3", 0),
    ]
}

/// Fig. 8 — the `MaxBitScore` values of the Fig. 3 dataset, keyed by label
/// (the paper prints them in the Fig. 5 queue order).
pub fn fig8_maxbitscores() -> Vec<(&'static str, usize)> {
    vec![
        ("C2", 19),
        ("A2", 17),
        ("B2", 16),
        ("B1", 15),
        ("C3", 13),
        ("D3", 15),
        ("A1", 10),
        ("C1", 12),
        ("C4", 10),
        ("D1", 9),
        ("A5", 5),
        ("A3", 8),
        ("B5", 4),
        ("C5", 7),
        ("D2", 8),
        ("D5", 4),
        ("A4", 1),
        ("D4", 3),
        ("B4", 1),
        ("B3", 0),
    ]
}

/// Fig. 4 — the candidate set produced by ESB's local 2-skybands on the
/// Fig. 3 dataset (11 objects).
pub fn fig4_esb_candidates() -> Vec<&'static str> {
    vec![
        "A1", "A2", "A3", "B1", "B2", "C1", "C2", "C3", "D1", "D2", "D3",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::score_of;

    #[test]
    fn fig3_has_expected_shape() {
        let ds = fig3_sample();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.dims(), 4);
        // Four mask groups of five objects each (Fig. 4).
        let mut masks: Vec<u64> = ds.masks().iter().map(|m| m.bits()).collect();
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 4);
    }

    #[test]
    fn fig3_verbatim_values() {
        let ds = fig3_sample();
        let b3 = ds.id_by_label("B3").unwrap();
        assert_eq!(
            ds.row(b3).to_options(),
            vec![None, None, Some(4.0), Some(9.0)]
        );
        let d2 = ds.id_by_label("D2").unwrap();
        assert_eq!(
            ds.row(d2).to_options(),
            vec![Some(2.0), Some(1.0), None, Some(4.0)]
        );
    }

    #[test]
    fn fig5_table_covers_all_objects_once() {
        let ds = fig3_sample();
        let table = fig5_maxscores();
        assert_eq!(table.len(), ds.len());
        let mut labels: Vec<_> = table.iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ds.len());
        // Descending order, as printed in the paper.
        for w in table.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fig8_never_exceeds_fig5() {
        // Lemma 3: MaxBitScore(o) <= MaxScore(o).
        let max: std::collections::HashMap<_, _> = fig5_maxscores().into_iter().collect();
        for (label, mbs) in fig8_maxbitscores() {
            assert!(mbs <= max[label], "{label}: {mbs} > {}", max[label]);
        }
    }

    #[test]
    fn upper_bounds_bound_true_scores() {
        let ds = fig3_sample();
        let mbs: std::collections::HashMap<_, _> = fig8_maxbitscores().into_iter().collect();
        for o in ds.ids() {
            let label = ds.label(o).unwrap();
            assert!(score_of(&ds, o) <= mbs[label], "{label}");
        }
    }

    #[test]
    fn fig1_movies_shape() {
        let ds = fig1_movies();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dims(), 5);
        // a2 (dimension index 1) does not rate m1.
        let m1 = ds.id_by_label("m1").unwrap();
        assert_eq!(ds.value(m1, 1), None);
    }
}
