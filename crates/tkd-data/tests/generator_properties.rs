//! Property-based invariants of the workload generators across their whole
//! parameter space (every Table 2 combination must produce a valid,
//! deterministic dataset with the requested shape).

use proptest::prelude::*;
use tkd_data::missing;
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::stats;

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (
        10usize..400,
        1usize..8,
        1usize..200,
        0.0f64..0.6,
        prop_oneof![
            Just(Distribution::Independent),
            Just(Distribution::AntiCorrelated),
            Just(Distribution::Correlated),
        ],
        any::<u64>(),
    )
        .prop_map(
            |(n, dims, cardinality, missing_rate, distribution, seed)| SyntheticConfig {
                n,
                dims,
                cardinality,
                missing_rate,
                distribution,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shape invariants: requested size, dimensionality, value domain and
    /// at least one observed value per object.
    #[test]
    fn generator_shape(cfg in config_strategy()) {
        let ds = generate(&cfg);
        prop_assert_eq!(ds.len(), cfg.n);
        prop_assert_eq!(ds.dims(), cfg.dims);
        for o in ds.ids() {
            prop_assert!(!ds.mask(o).is_empty());
            for d in 0..cfg.dims {
                if let Some(v) = ds.value(o, d) {
                    prop_assert!(v >= 0.0 && v < cfg.cardinality as f64);
                    prop_assert_eq!(v.fract(), 0.0);
                }
            }
        }
        for d in 0..cfg.dims {
            prop_assert!(stats::dimension_cardinality(&ds, d) <= cfg.cardinality);
        }
    }

    /// Determinism: the same config regenerates the identical dataset.
    #[test]
    fn generator_determinism(cfg in config_strategy()) {
        prop_assert_eq!(generate(&cfg), generate(&cfg));
    }

    /// Realized missing rate tracks the requested one (within sampling
    /// noise; bounded crudely for tiny datasets).
    #[test]
    fn missing_rate_tracks_request(mut cfg in config_strategy()) {
        cfg.n = cfg.n.max(200); // enough cells for the bound below
        let ds = generate(&cfg);
        let sigma = stats::missing_rate(&ds);
        if cfg.dims == 1 {
            // The at-least-one-observed invariant forbids any missing cell
            // in 1-D data.
            prop_assert_eq!(sigma, 0.0);
            return Ok(());
        }
        // The expected rate is depressed by all-missing-row restoration:
        // a row goes all-missing with probability rate^dims and then gets
        // one cell back.
        let expected = cfg.missing_rate
            - cfg.missing_rate.powi(cfg.dims as i32) / cfg.dims as f64;
        let cells = (cfg.n * cfg.dims) as f64;
        let tolerance = 0.05 + 3.0 * (cfg.missing_rate / cells).sqrt();
        prop_assert!(
            (sigma - expected).abs() <= tolerance,
            "requested {} (expected realized {}) realized {}",
            cfg.missing_rate,
            expected,
            sigma
        );
    }

    /// MCAR injection over an existing dataset only removes values (never
    /// invents or changes them) and keeps rows alive.
    #[test]
    fn mcar_only_removes(cfg in config_strategy(), rate in 0.0f64..0.9, seed in any::<u64>()) {
        let base = generate(&cfg);
        let out = missing::mcar(&base, rate, seed);
        prop_assert_eq!(out.len(), base.len());
        for o in base.ids() {
            prop_assert!(!out.mask(o).is_empty());
            for d in 0..base.dims() {
                match (base.value(o, d), out.value(o, d)) {
                    (Some(a), Some(b)) => prop_assert_eq!(a, b),
                    (None, Some(_)) => prop_assert!(false, "MCAR invented a value"),
                    _ => {}
                }
            }
        }
    }

    /// MAR never touches the driver dimension; NMAR keeps rows alive and
    /// only removes values.
    #[test]
    fn mar_nmar_validity(cfg in config_strategy(), rate in 0.0f64..0.45, seed in any::<u64>()) {
        let base = generate(&cfg);
        let marred = missing::mar(&base, rate, seed);
        for o in base.ids() {
            prop_assert_eq!(base.value(o, 0), marred.value(o, 0), "MAR touched the driver");
        }
        let nmarred = missing::nmar(&base, rate, seed);
        for o in base.ids() {
            prop_assert!(!nmarred.mask(o).is_empty());
            for d in 0..base.dims() {
                if let Some(v) = nmarred.value(o, d) {
                    prop_assert_eq!(base.value(o, d), Some(v));
                }
            }
        }
    }
}

#[test]
fn simulators_scale_parameters() {
    // Shape spot-checks at non-default sizes (full-scale covered by the
    // bench harness).
    let m = tkd_data::simulators::movielens_like_with(123, 17, 5);
    assert_eq!((m.len(), m.dims()), (123, 17));
    let n = tkd_data::simulators::nba_like_with(77, 5);
    assert_eq!((n.len(), n.dims()), (77, 4));
    let z = tkd_data::simulators::zillow_like_with(88, 5);
    assert_eq!((z.len(), z.dims()), (88, 5));
}
