//! Synthetic stand-ins for the paper's three real datasets.
//!
//! The originals are not redistributable, so each simulator reproduces the
//! *published shape* that the paper's findings depend on (DESIGN.md §3):
//!
//! | Dataset | N × d | domains | missing |
//! |---|---|---|---|
//! | MovieLens | 3,700 × 60 | ratings 1–5 | 95% |
//! | NBA | 16,000 × 4 | heavy-tailed counting stats | 20% |
//! | Zillow | 200,000 × 5 | very unequal per-dim domains | 14.2% |
//!
//! All values are emitted smaller-is-better (ratings and stats are negated),
//! so a TKD query directly returns the "best" movies/players/homes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkd_model::Dataset;

/// MovieLens-like: `n` movies rated 1–5 by `dims` audiences, ~95% missing.
///
/// Each movie has a latent quality; each audience rates a movie with
/// probability 5% (independently — audiences see few movies), with the
/// rating centred on the movie's quality. Ratings are stored negated.
pub fn movielens_like_with(n: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    while rows.len() < n {
        // Latent quality in [1, 5].
        let quality = 1.0 + 4.0 * rng.gen::<f64>();
        let mut row: Vec<Option<f64>> = Vec::with_capacity(dims);
        for _ in 0..dims {
            if rng.gen::<f64>() < 0.05 {
                let noise: f64 = rng.gen_range(-1.5..1.5);
                let rating = (quality + noise).round().clamp(1.0, 5.0);
                row.push(Some(-rating)); // negate: smaller is better
            } else {
                row.push(None);
            }
        }
        if row.iter().all(Option::is_none) {
            continue; // a movie nobody rated is not in the dataset
        }
        rows.push(row);
    }
    Dataset::from_rows(dims, &rows).expect("simulator emits valid rows")
}

/// MovieLens-like at the paper's scale: 3,700 movies × 60 audiences.
pub fn movielens_like(seed: u64) -> Dataset {
    movielens_like_with(3_700, 60, seed)
}

/// NBA-like: `n` player seasons × 4 counting stats (games, minutes, points,
/// offensive rebounds), correlated through a latent skill and heavy-tailed,
/// 20% missing (MCAR). Stats are stored negated (more is better).
pub fn nba_like_with(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    while rows.len() < n {
        // Latent skill, heavy-tailed: squaring a uniform skews the mass to
        // low skill with a long top tail, like real league stats.
        let skill = rng.gen::<f64>().powi(2);
        let games = (82.0 * (0.2 + 0.8 * skill) * rng.gen_range(0.5..1.0)).round();
        let minutes = (games * rng.gen_range(8.0..38.0) * (0.5 + skill)).round();
        let points = (minutes * rng.gen_range(0.2..0.7) * (0.4 + skill)).round();
        let rebounds = (games * rng.gen_range(0.2..3.5) * (0.3 + skill)).round();
        let stats = [games, minutes, points, rebounds];
        let mut row: Vec<Option<f64>> = stats.iter().map(|&s| Some(-s)).collect();
        for cell in row.iter_mut() {
            if rng.gen::<f64>() < 0.20 {
                *cell = None;
            }
        }
        if row.iter().all(Option::is_none) {
            continue;
        }
        rows.push(row);
    }
    Dataset::from_rows(4, &rows).expect("simulator emits valid rows")
}

/// NBA-like at the paper's scale: 16,000 player records.
pub fn nba_like(seed: u64) -> Dataset {
    nba_like_with(16_000, seed)
}

/// Zillow-like: `n` real-estate listings × 5 attributes with very unequal
/// domain cardinalities — bedrooms (≈6), bathrooms (≈10), living area
/// (≈35 bins), lot area (≈250 bins), price (≈1000 bins) — and 14.2%
/// missing. Counts are negated (more is better), price kept as-is
/// (cheaper is better).
pub fn zillow_like_with(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    while rows.len() < n {
        let beds = rng.gen_range(1..=6) as f64;
        let baths = (rng.gen_range(1..=10) as f64) / 2.0 + 0.5; // 1.0..=5.5 step .5
        let living = (40.0 + 10.0 * rng.gen_range(0..35) as f64) * 1.0;
        let lot = (living * rng.gen_range(1.0..8.0) / 50.0).round() * 50.0;
        let price_base = living * rng.gen_range(1.5..4.5) + beds * 20.0;
        let price = (price_base * 1000.0 / 997.0).round() * 997.0 % 997_000.0;
        let mut row = vec![
            Some(-beds),
            Some(-baths * 2.0), // back to integer grid, ~10 distinct
            Some(-living),
            Some(-lot),
            Some(price.max(1.0)),
        ];
        for cell in row.iter_mut() {
            if rng.gen::<f64>() < 0.142 {
                *cell = None;
            }
        }
        if row.iter().all(Option::is_none) {
            continue;
        }
        rows.push(row);
    }
    Dataset::from_rows(5, &rows).expect("simulator emits valid rows")
}

/// Zillow-like at the paper's scale: 200,000 listings.
pub fn zillow_like(seed: u64) -> Dataset {
    zillow_like_with(200_000, seed)
}

/// Per-dimension bin counts the paper uses for Zillow in Fig. 11c:
/// `6 / 10 / 35 / x / 1000` (the sweep varies only the lot-area dimension).
pub fn zillow_bins(x: usize) -> Vec<usize> {
    vec![6, 10, 35, x, 1000]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::stats;

    #[test]
    fn movielens_shape() {
        let ds = movielens_like_with(500, 60, 1);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dims(), 60);
        let sigma = stats::missing_rate(&ds);
        assert!((sigma - 0.95).abs() < 0.01, "σ = {sigma}");
        // Ratings are negated integers in [-5, -1].
        for o in ds.ids() {
            for d in 0..60 {
                if let Some(v) = ds.value(o, d) {
                    assert!((-5.0..=-1.0).contains(&v), "rating {v}");
                    assert_eq!(v.fract(), 0.0);
                }
            }
        }
        // Tiny per-dimension domains (≤ 5 distinct values).
        for d in 0..60 {
            assert!(stats::dimension_cardinality(&ds, d) <= 5);
        }
    }

    #[test]
    fn nba_shape() {
        let ds = nba_like_with(2000, 2);
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.dims(), 4);
        let sigma = stats::missing_rate(&ds);
        assert!((sigma - 0.20).abs() < 0.02, "σ = {sigma}");
        // Heavy-tailed: the best (most negative) points total is far from
        // the median.
        let mut pts: Vec<f64> = ds.ids().filter_map(|o| ds.value(o, 2)).collect();
        pts.sort_by(f64::total_cmp);
        let best = -pts[0];
        let median = -pts[pts.len() / 2];
        assert!(
            best > 4.0 * median,
            "no heavy tail: best={best} median={median}"
        );
    }

    #[test]
    fn zillow_shape_and_unequal_domains() {
        let ds = zillow_like_with(5000, 3);
        assert_eq!(ds.dims(), 5);
        let sigma = stats::missing_rate(&ds);
        assert!((sigma - 0.142).abs() < 0.02, "σ = {sigma}");
        let cards: Vec<usize> = (0..5)
            .map(|d| stats::dimension_cardinality(&ds, d))
            .collect();
        assert!(cards[0] <= 6, "beds {:?}", cards);
        assert!(cards[1] <= 10, "baths {:?}", cards);
        assert!(cards[2] <= 35, "living {:?}", cards);
        assert!(
            cards[3] > cards[2],
            "lot domain must dwarf living {:?}",
            cards
        );
        assert!(cards[4] > 100, "price domain must be large {:?}", cards);
    }

    #[test]
    fn simulators_are_deterministic() {
        assert_eq!(
            movielens_like_with(50, 10, 9),
            movielens_like_with(50, 10, 9)
        );
        assert_eq!(nba_like_with(50, 9), nba_like_with(50, 9));
        assert_eq!(zillow_like_with(50, 9), zillow_like_with(50, 9));
        assert_ne!(nba_like_with(50, 9), nba_like_with(50, 10));
    }

    #[test]
    fn zillow_bins_vector() {
        assert_eq!(zillow_bins(7), vec![6, 10, 35, 7, 1000]);
    }
}
