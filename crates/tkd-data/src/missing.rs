//! Missingness injectors for the three mechanisms of Little & Rubin
//! (referenced by the paper's §3): MCAR, MAR and NMAR.
//!
//! All injectors guarantee the model invariant that every object keeps at
//! least one observed dimension (the paper only considers such objects).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkd_model::Dataset;

/// Remove each cell independently with probability `rate` (MCAR — the
/// mechanism the paper uses to derive its incomplete datasets). Operates on
/// option-rows in place.
pub(crate) fn inject_mcar_rows(rows: &mut [Vec<Option<f64>>], rate: f64, rng: &mut StdRng) {
    if rate <= 0.0 {
        return;
    }
    for row in rows.iter_mut() {
        let original = row.clone();
        for cell in row.iter_mut() {
            if cell.is_some() && rng.gen::<f64>() < rate {
                *cell = None;
            }
        }
        restore_one_if_empty(row, &original, rng);
    }
}

/// If a row went all-missing, re-observe one uniformly chosen *originally
/// observed* cell with its original value (so the value distribution is
/// undisturbed). Note the corollary: on 1-dimensional data the model's
/// at-least-one-observed invariant forces a realized missing rate of zero.
fn restore_one_if_empty(row: &mut [Option<f64>], original: &[Option<f64>], rng: &mut StdRng) {
    if row.iter().all(Option::is_none) {
        let observed: Vec<usize> = original
            .iter()
            .enumerate()
            .filter_map(|(d, v)| v.map(|_| d))
            .collect();
        let d = observed[rng.gen_range(0..observed.len())];
        row[d] = original[d];
    }
}

fn dataset_to_rows(ds: &Dataset) -> Vec<Vec<Option<f64>>> {
    ds.ids().map(|o| ds.row(o).to_options()).collect()
}

fn rows_to_dataset(dims: usize, rows: &[Vec<Option<f64>>]) -> Dataset {
    Dataset::from_rows(dims, rows).expect("injector preserves validity")
}

/// MCAR over an existing (complete or incomplete) dataset: every observed
/// cell is dropped independently with probability `rate`.
pub fn mcar(ds: &Dataset, rate: f64, seed: u64) -> Dataset {
    assert!((0.0..1.0).contains(&rate), "rate must lie in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = dataset_to_rows(ds);
    for row in rows.iter_mut() {
        let original = row.clone();
        for cell in row.iter_mut() {
            if cell.is_some() && rng.gen::<f64>() < rate {
                *cell = None;
            }
        }
        restore_one_if_empty(row, &original, &mut rng);
    }
    rows_to_dataset(ds.dims(), &rows)
}

/// MAR: the probability that dimension `j > 0` goes missing depends on the
/// (always-kept) *driver* dimension 0 — rows with a driver value above the
/// median lose each other cell with `2·rate`, rows below with `rate/2`
/// (overall close to `rate`, but ignorable given dimension 0).
pub fn mar(ds: &Dataset, rate: f64, seed: u64) -> Dataset {
    assert!(
        (0.0..0.5).contains(&rate),
        "rate must lie in [0, 0.5) for MAR"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut driver: Vec<f64> = ds.ids().filter_map(|o| ds.value(o, 0)).collect();
    driver.sort_by(f64::total_cmp);
    let median = if driver.is_empty() {
        0.0
    } else {
        driver[driver.len() / 2]
    };
    let mut rows = dataset_to_rows(ds);
    for row in rows.iter_mut() {
        let original = row.clone();
        let above = matches!(row[0], Some(v) if v > median);
        let p = if above { 2.0 * rate } else { rate / 2.0 };
        for cell in row.iter_mut().skip(1) {
            if cell.is_some() && rng.gen::<f64>() < p {
                *cell = None;
            }
        }
        // Dimension 0 itself is never removed, but it may have been missing
        // in the input: keep the row valid either way.
        restore_one_if_empty(row, &original, &mut rng);
    }
    rows_to_dataset(ds.dims(), &rows)
}

/// NMAR: a cell's own value drives its missingness — cells in the worst
/// (largest) half of their dimension's domain go missing with `2·rate`,
/// the better half with `rate/2`. Models users not reporting bad scores.
pub fn nmar(ds: &Dataset, rate: f64, seed: u64) -> Dataset {
    assert!(
        (0.0..0.5).contains(&rate),
        "rate must lie in [0, 0.5) for NMAR"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-dimension medians.
    let medians: Vec<f64> = (0..ds.dims())
        .map(|d| {
            let mut vals: Vec<f64> = ds.ids().filter_map(|o| ds.value(o, d)).collect();
            vals.sort_by(f64::total_cmp);
            if vals.is_empty() {
                0.0
            } else {
                vals[vals.len() / 2]
            }
        })
        .collect();
    let mut rows = dataset_to_rows(ds);
    for row in rows.iter_mut() {
        let original = row.clone();
        for (d, cell) in row.iter_mut().enumerate() {
            if let Some(v) = *cell {
                let p = if v > medians[d] {
                    2.0 * rate
                } else {
                    rate / 2.0
                };
                if rng.gen::<f64>() < p {
                    *cell = None;
                }
            }
        }
        restore_one_if_empty(row, &original, &mut rng);
    }
    rows_to_dataset(ds.dims(), &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Distribution, SyntheticConfig};
    use tkd_model::stats;

    fn complete(n: usize) -> Dataset {
        generate(&SyntheticConfig {
            n,
            dims: 4,
            cardinality: 100,
            missing_rate: 0.0,
            distribution: Distribution::Independent,
            seed: 3,
        })
    }

    #[test]
    fn mcar_hits_requested_rate() {
        let ds = complete(3000);
        let out = mcar(&ds, 0.3, 1);
        let sigma = stats::missing_rate(&out);
        assert!((sigma - 0.3).abs() < 0.02, "σ = {sigma}");
        for m in out.masks() {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn mcar_zero_is_identity() {
        let ds = complete(100);
        assert_eq!(mcar(&ds, 0.0, 1), ds);
    }

    #[test]
    fn mcar_is_deterministic() {
        let ds = complete(500);
        assert_eq!(mcar(&ds, 0.25, 9), mcar(&ds, 0.25, 9));
        assert_ne!(mcar(&ds, 0.25, 9), mcar(&ds, 0.25, 10));
    }

    #[test]
    fn mar_missingness_depends_on_driver() {
        let ds = complete(4000);
        let out = mar(&ds, 0.2, 5);
        // Split rows by driver (dim 0) halves and compare missing counts in
        // the other dims.
        let mut vals: Vec<f64> = out.ids().filter_map(|o| out.value(o, 0)).collect();
        vals.sort_by(f64::total_cmp);
        let median = vals[vals.len() / 2];
        let (mut miss_hi, mut n_hi, mut miss_lo, mut n_lo) = (0usize, 0usize, 0usize, 0usize);
        for o in out.ids() {
            let Some(v) = out.value(o, 0) else { continue };
            let missing = (1..out.dims())
                .filter(|&d| out.value(o, d).is_none())
                .count();
            if v > median {
                miss_hi += missing;
                n_hi += 1;
            } else {
                miss_lo += missing;
                n_lo += 1;
            }
        }
        let rate_hi = miss_hi as f64 / (n_hi * 3) as f64;
        let rate_lo = miss_lo as f64 / (n_lo * 3) as f64;
        assert!(
            rate_hi > 2.0 * rate_lo,
            "MAR bias missing: hi={rate_hi} lo={rate_lo}"
        );
        // Dimension 0 never goes missing under this mechanism.
        assert!(out.ids().all(|o| out.value(o, 0).is_some()));
    }

    #[test]
    fn nmar_missingness_depends_on_own_value() {
        let ds = complete(4000);
        let out = nmar(&ds, 0.2, 5);
        // Surviving values should skew towards the better (smaller) half.
        for d in 0..ds.dims() {
            let before: f64 = ds.ids().filter_map(|o| ds.value(o, d)).sum::<f64>()
                / ds.ids().filter_map(|o| ds.value(o, d)).count() as f64;
            let after: f64 = out.ids().filter_map(|o| out.value(o, d)).sum::<f64>()
                / out.ids().filter_map(|o| out.value(o, d)).count() as f64;
            assert!(
                after < before,
                "dim {d}: mean should drop ({before} -> {after})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "rate must lie")]
    fn mcar_rejects_rate_one() {
        let ds = complete(10);
        let _ = mcar(&ds, 1.0, 0);
    }
}
