//! Workload generation for the TKD reproduction (§5 of the paper).
//!
//! * [`synthetic`] — the paper's **IND** (independent) and **AC**
//!   (anti-correlated) distributions, following the classical methodology of
//!   Börzsönyi et al. (ICDE 2001), plus a correlated (CO) family; all with
//!   controlled dimensional cardinality `c` and seedable determinism.
//! * [`missing`] — missingness injectors: **MCAR** (the paper's random
//!   removal), plus MAR and NMAR variants for robustness experiments (the
//!   paper's §3 discusses all three mechanisms of Little & Rubin).
//! * [`simulators`] — synthetic stand-ins for the paper's three real
//!   datasets (MovieLens, NBA, Zillow), matching their published shape:
//!   cardinality, dimensionality, per-dimension domains and missing rate.
//!   See DESIGN.md §3 for why each substitution preserves the experiment.
//!
//! All values follow the workspace convention: **smaller is better**.

#![warn(missing_docs)]

pub mod missing;
pub mod simulators;
pub mod synthetic;

pub use simulators::{movielens_like, nba_like, zillow_like};
pub use synthetic::{generate, Distribution, SyntheticConfig};
