//! IND / AC / CO synthetic workloads (Börzsönyi et al. methodology).

use crate::missing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tkd_model::Dataset;

/// Value distribution across dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Each dimension independently uniform (the paper's IND).
    Independent,
    /// Points near the anti-diagonal hyperplane: good in one dimension,
    /// bad in another (the paper's AC).
    AntiCorrelated,
    /// All dimensions track a common latent quality (CO; not in the paper's
    /// sweeps but standard in the skyline literature).
    Correlated,
}

/// Full description of a synthetic workload (one row of the paper's
/// Table 2).
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of objects `N`.
    pub n: usize,
    /// Dimensionality `d`.
    pub dims: usize,
    /// Dimensional cardinality `c`: values are integers in `[0, c)`.
    pub cardinality: usize,
    /// Missing rate `σ ∈ [0, 1)`, applied MCAR.
    pub missing_rate: f64,
    /// Value distribution.
    pub distribution: Distribution,
    /// RNG seed (same seed ⇒ identical dataset).
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's Table 2 defaults: `N = 100K`, `d = 10`, `c = 100`,
    /// `σ = 10%`, IND.
    pub fn paper_default() -> Self {
        SyntheticConfig {
            n: 100_000,
            dims: 10,
            cardinality: 100,
            missing_rate: 0.10,
            distribution: Distribution::Independent,
            seed: 42,
        }
    }

    /// A laptop-quick variant of the defaults (`N = 10K`).
    pub fn quick_default() -> Self {
        SyntheticConfig {
            n: 10_000,
            ..Self::paper_default()
        }
    }
}

/// Approximate standard normal via the Irwin–Hall sum (12 uniforms),
/// keeping the crate's dependency surface at `rand` alone.
fn gaussian(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    mean + sd * s
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Generate a complete (no missing values) point in `[0,1]^d`.
fn point(rng: &mut StdRng, dims: usize, dist: Distribution) -> Vec<f64> {
    match dist {
        Distribution::Independent => (0..dims).map(|_| rng.gen::<f64>()).collect(),
        Distribution::Correlated => {
            let base = clamp01(gaussian(rng, 0.5, 0.2));
            (0..dims)
                .map(|_| clamp01(base + gaussian(rng, 0.0, 0.05)))
                .collect()
        }
        Distribution::AntiCorrelated => {
            // A point on the plane Σx = d·v (v near 0.5), then mass is
            // shifted between random coordinate pairs so coordinates
            // anti-correlate while the sum stays fixed.
            let v = clamp01(gaussian(rng, 0.5, 0.1));
            let mut xs = vec![v; dims];
            if dims > 1 {
                for _ in 0..(2 * dims) {
                    let i = rng.gen_range(0..dims);
                    let mut j = rng.gen_range(0..dims);
                    while j == i {
                        j = rng.gen_range(0..dims);
                    }
                    let max_shift = (1.0 - xs[i]).min(xs[j]);
                    let shift = rng.gen::<f64>() * max_shift;
                    xs[i] += shift;
                    xs[j] -= shift;
                }
            }
            xs
        }
    }
}

/// Generate the dataset described by `cfg`.
///
/// Every object keeps at least one observed value (model invariant), so on
/// 1-dimensional data the realized missing rate is always 0 regardless of
/// `missing_rate`; at higher dimensionalities the realized rate tracks the
/// request up to that correction.
pub fn generate(cfg: &SyntheticConfig) -> Dataset {
    assert!(cfg.cardinality >= 1, "cardinality must be positive");
    assert!(
        (0.0..1.0).contains(&cfg.missing_rate),
        "missing rate must lie in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rows: Vec<Vec<Option<f64>>> = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let xs = point(&mut rng, cfg.dims, cfg.distribution);
        let row: Vec<Option<f64>> = xs
            .into_iter()
            .map(|x| {
                // Discretize to the requested dimensional cardinality.
                let v = ((x * cfg.cardinality as f64) as usize).min(cfg.cardinality - 1);
                Some(v as f64)
            })
            .collect();
        rows.push(row);
    }
    missing::inject_mcar_rows(&mut rows, cfg.missing_rate, &mut rng);
    Dataset::from_rows(cfg.dims, &rows).expect("generator emits valid rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_model::stats;

    fn cfg(dist: Distribution) -> SyntheticConfig {
        SyntheticConfig {
            n: 2000,
            dims: 2,
            cardinality: 50,
            missing_rate: 0.2,
            distribution: dist,
            seed: 7,
        }
    }

    /// Pearson correlation over rows where both dims are observed.
    fn pearson(ds: &Dataset) -> f64 {
        let pairs: Vec<(f64, f64)> = ds
            .ids()
            .filter_map(|o| Some((ds.value(o, 0)?, ds.value(o, 1)?)))
            .collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        cov / (sx * sy)
    }

    #[test]
    fn shapes_and_domain() {
        for dist in [
            Distribution::Independent,
            Distribution::AntiCorrelated,
            Distribution::Correlated,
        ] {
            let ds = generate(&cfg(dist));
            assert_eq!(ds.len(), 2000);
            assert_eq!(ds.dims(), 2);
            for o in ds.ids() {
                for d in 0..2 {
                    if let Some(v) = ds.value(o, d) {
                        assert!(
                            (0.0..50.0).contains(&v),
                            "{dist:?}: value {v} out of domain"
                        );
                        assert_eq!(v.fract(), 0.0, "integral values expected");
                    }
                }
            }
        }
    }

    #[test]
    fn missing_rate_is_respected() {
        let ds = generate(&cfg(Distribution::Independent));
        let sigma = stats::missing_rate(&ds);
        assert!((sigma - 0.2).abs() < 0.03, "got σ = {sigma}");
        // Every object keeps at least one observed dimension.
        for m in ds.masks() {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn zero_missing_rate_is_complete() {
        let mut c = cfg(Distribution::Independent);
        c.missing_rate = 0.0;
        let ds = generate(&c);
        assert_eq!(stats::missing_rate(&ds), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&cfg(Distribution::AntiCorrelated));
        let b = generate(&cfg(Distribution::AntiCorrelated));
        assert_eq!(a, b);
        let mut c2 = cfg(Distribution::AntiCorrelated);
        c2.seed = 8;
        assert_ne!(generate(&c2), a);
    }

    #[test]
    fn anticorrelated_is_negative_correlated_is_positive() {
        let ac = pearson(&generate(&cfg(Distribution::AntiCorrelated)));
        let co = pearson(&generate(&cfg(Distribution::Correlated)));
        let ind = pearson(&generate(&cfg(Distribution::Independent)));
        assert!(ac < -0.2, "AC correlation {ac} not negative enough");
        assert!(co > 0.5, "CO correlation {co} not positive enough");
        assert!(ind.abs() < 0.15, "IND correlation {ind} not near zero");
    }

    #[test]
    fn cardinality_bounds_distinct_values() {
        let mut c = cfg(Distribution::Independent);
        c.cardinality = 5;
        let ds = generate(&c);
        for d in 0..ds.dims() {
            assert!(stats::dimension_cardinality(&ds, d) <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "missing rate")]
    fn rejects_full_missing_rate() {
        let mut c = cfg(Distribution::Independent);
        c.missing_rate = 1.0;
        let _ = generate(&c);
    }

    #[test]
    fn paper_and_quick_defaults() {
        let p = SyntheticConfig::paper_default();
        assert_eq!((p.n, p.dims, p.cardinality), (100_000, 10, 100));
        assert_eq!(p.missing_rate, 0.10);
        let q = SyntheticConfig::quick_default();
        assert_eq!(q.n, 10_000);
        assert_eq!(q.dims, p.dims);
    }
}
