//! The cluster shard manifest: which seq-stamped snapshot file is the
//! committed state of every shard.
//!
//! A cluster's durable state is a directory of `shard-{s}.seq{n}.tkd`
//! snapshots plus this one small file naming, per shard, the snapshot
//! that is current. The coordinator rewrites it (atomically, like every
//! snapshot) after each state change — seed, routed update batch,
//! handoff, repair — so an operator or a fresh coordinator can tell the
//! committed topology apart from leftover `.seq` files without trusting
//! directory-listing order.
//!
//! The format follows the snapshot discipline: magic, exact version
//! match, length validation before any allocation, and a trailing
//! FNV-1a 64 checksum over everything before it. Corruption surfaces as
//! a typed [`StoreError`], never a panic or a silently wrong topology.

use crate::atomic_rewrite;
use crate::error::{Section, StoreError};
use crate::wire::{fnv64, Reader, Writer};
use std::path::Path;

/// First eight bytes of every manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"TKDCLMF\0";

/// The manifest format version this build writes and the only one it
/// reads (same exact-match policy as snapshots).
pub const MANIFEST_VERSION: u32 = 1;

/// One shard's committed state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard number.
    pub shard: u64,
    /// Commit seq — must match the `.seq{n}.` stamp in `path`.
    pub seq: u64,
    /// Live objects in the shard at that seq.
    pub live: u64,
    /// Snapshot file name (relative to the manifest's directory).
    pub path: String,
}

/// The committed shard topology of one cluster.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterManifest {
    /// One entry per shard, in strictly increasing shard order.
    pub shards: Vec<ShardEntry>,
}

impl ClusterManifest {
    /// Serialize to the versioned, checksummed byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&MANIFEST_MAGIC);
        w.put_u32(MANIFEST_VERSION);
        w.put_u64(self.shards.len() as u64);
        for e in &self.shards {
            w.put_u64(e.shard);
            w.put_u64(e.seq);
            w.put_u64(e.live);
            w.put_str(&e.path);
        }
        let checksum = fnv64(w.as_bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Parse and validate a manifest: magic, exact version, trailing
    /// checksum, and strictly increasing shard numbers.
    ///
    /// # Errors
    /// The usual typed surface: [`StoreError::BadMagic`],
    /// [`StoreError::VersionMismatch`], [`StoreError::Truncated`],
    /// [`StoreError::ChecksumMismatch`], or [`StoreError::Invalid`] for
    /// structural violations.
    pub fn decode(bytes: &[u8]) -> Result<ClusterManifest, StoreError> {
        if bytes.len() < MANIFEST_MAGIC.len() + 8 || bytes[..8] != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let recorded = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv64(body) != recorded {
            return Err(StoreError::ChecksumMismatch {
                section: Section::Manifest,
            });
        }
        let mut r = Reader::new(&body[8..], Section::Manifest);
        let version = r.get_u32()?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: MANIFEST_VERSION,
            });
        }
        let count = r.get_count(8 * 3 + 4)?;
        let mut shards = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let shard = r.get_u64()?;
            if prev.is_some_and(|p| p >= shard) {
                return Err(r.invalid("shard numbers must be strictly increasing"));
            }
            prev = Some(shard);
            let seq = r.get_u64()?;
            let live = r.get_u64()?;
            let path = r.get_str()?;
            if path.is_empty() {
                return Err(r.invalid("empty snapshot path"));
            }
            shards.push(ShardEntry {
                shard,
                seq,
                live,
                path,
            });
        }
        r.finish()?;
        Ok(ClusterManifest { shards })
    }

    /// Write the manifest to `path` via the same atomic
    /// temp-file-and-rename every snapshot uses.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        atomic_rewrite(path, &self.encode())
    }

    /// Load and validate a manifest file.
    ///
    /// # Errors
    /// [`StoreError::Io`] if unreadable, otherwise the same surface as
    /// [`ClusterManifest::decode`].
    pub fn load(path: impl AsRef<Path>) -> Result<ClusterManifest, StoreError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        ClusterManifest::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterManifest {
        ClusterManifest {
            shards: vec![
                ShardEntry {
                    shard: 0,
                    seq: 4,
                    live: 21,
                    path: "shard-0.seq4.tkd".into(),
                },
                ShardEntry {
                    shard: 1,
                    seq: 0,
                    live: 20,
                    path: "shard-1.seq0.tkd".into(),
                },
            ],
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let m = sample();
        assert_eq!(ClusterManifest::decode(&m.encode()).unwrap(), m);
        let empty = ClusterManifest::default();
        assert_eq!(ClusterManifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn save_and_load_through_a_file() {
        let path = std::env::temp_dir().join(format!(
            "tkd-manifest-roundtrip-{}.manifest",
            std::process::id()
        ));
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(ClusterManifest::load(&path).unwrap(), m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                ClusterManifest::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                ClusterManifest::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn structural_violations_are_invalid() {
        let mut unsorted = sample();
        unsorted.shards.swap(0, 1);
        let bytes = unsorted.encode();
        assert!(matches!(
            ClusterManifest::decode(&bytes),
            Err(StoreError::Invalid { .. })
        ));

        let mut wrong_version = sample().encode();
        wrong_version[8] = 99;
        // Re-stamp the checksum so only the version is wrong.
        let body_len = wrong_version.len() - 8;
        let sum = fnv64(&wrong_version[..body_len]).to_le_bytes();
        wrong_version[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            ClusterManifest::decode(&wrong_version),
            Err(StoreError::VersionMismatch { found: 99, .. })
        ));

        assert!(matches!(
            ClusterManifest::decode(b"not a manifest at all"),
            Err(StoreError::BadMagic)
        ));
    }
}
