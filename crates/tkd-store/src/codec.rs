//! Per-section payload codecs.
//!
//! Each function pair is a bijection between one component's logical
//! state and its canonical byte form: `decode(encode(x))` restores `x`,
//! and `encode(decode(b))` reproduces `b` byte for byte (the golden-file
//! pin). Canonical form means: fixed field order, little-endian
//! everywhere, `BitVec`s as `(bit length, word array)`, hash maps sorted
//! by key, missing cells as the canonical NaN.

use crate::error::StoreError;
use crate::wire::{Reader, Writer};
use std::collections::HashMap;
use tkd_bitvec::{BitVec, Tombstones, Words};
use tkd_core::dynamic::DynamicPartsRef;
use tkd_core::{BinChoice, CompactionPolicy, Preprocessed, UpdateStats};
use tkd_index::{BinnedBitmapIndex, BitmapIndex};
use tkd_model::{Dataset, DimMask, ObjectId};

// ----- bit vectors --------------------------------------------------------

/// `(pad to 8 · bit length: u64, words: ceil(len/64) × u64)` — the
/// 8-aligned layout (v2) that lets columns load as borrowed views of the
/// file buffer, or at worst by bulk copy.
pub fn encode_bitvec(w: &mut Writer, bv: &BitVec) {
    w.align8();
    w.put_u64(bv.len() as u64);
    w.put_words(bv.as_words());
}

/// Inverse of [`encode_bitvec`]; rejects word counts that outrun the
/// payload *before* allocating ([`Reader::get_word_slab`] bounds-checks
/// the byte range first), and non-canonical padding. With a shared
/// backing attached to `r`, the returned column **borrows** the file
/// buffer (promoted to owned on first mutation).
pub fn decode_bitvec(r: &mut Reader<'_>) -> Result<BitVec, StoreError> {
    r.align8()?;
    let len = r.get_u64()?;
    let len = usize::try_from(len).map_err(|_| r.invalid("bit length exceeds usize"))?;
    match r.get_word_slab(len.div_ceil(64))? {
        Words::Shared(view) => BitVec::from_shared(view, len).map_err(|e| r.invalid(e)),
        Words::Owned(words) => BitVec::from_words(words, len).map_err(|e| r.invalid(e)),
    }
}

// ----- dataset ------------------------------------------------------------

/// `dims u32 · n u64 · pad to 8 · masks n×u64 · values n·dims×f64 ·
/// has_labels u8 [· labels n×str]`.
pub fn encode_dataset(w: &mut Writer, ds: &Dataset) {
    w.put_u32(ds.dims() as u32);
    w.put_u64(ds.len() as u64);
    w.align8();
    for &m in ds.masks() {
        w.put_u64(m.bits());
    }
    for &v in ds.raw_values() {
        w.put_f64(v);
    }
    match ds.labels() {
        None => w.put_u8(0),
        Some(labels) => {
            w.put_u8(1);
            for l in labels {
                w.put_str(l);
            }
        }
    }
}

/// Inverse of [`encode_dataset`], re-validated through
/// [`Dataset::from_raw_parts`] / [`Dataset::from_shared_parts`]. With a
/// shared backing attached to `r`, both slabs (masks and values) are
/// **borrowed** views of the file buffer.
pub fn decode_dataset(r: &mut Reader<'_>) -> Result<Dataset, StoreError> {
    let dims = r.get_u32()? as usize;
    if dims == 0 || dims > tkd_model::MAX_DIMS {
        return Err(r.invalid(format!("bad dimensionality {dims}")));
    }
    let n = r.get_count(8 * (1 + dims))?; // each row needs a mask + dims values
    r.align8()?;
    let mask_words = r.get_word_slab(n)?;
    let value_words = r.get_word_slab(n * dims)?;
    let labels = match r.get_u8()? {
        0 => None,
        1 => {
            let mut ls = Vec::with_capacity(n.min(r.remaining() / 4));
            for _ in 0..n {
                ls.push(r.get_str()?);
            }
            Some(ls)
        }
        other => return Err(r.invalid(format!("bad labels tag {other}"))),
    };
    match (value_words, mask_words) {
        (Words::Shared(values), Words::Shared(masks)) => {
            Dataset::from_shared_parts(dims, values, masks, labels)
        }
        (values, masks) => {
            let masks: Vec<DimMask> = masks
                .as_slice()
                .iter()
                .map(|&w| DimMask::from_bits(w))
                .collect();
            let values: Vec<f64> = values
                .as_slice()
                .iter()
                .map(|&w| f64::from_bits(w))
                .collect();
            Dataset::from_raw_parts(dims, values, masks, labels)
        }
    }
    .map_err(|e| r.invalid(e.to_string()))
}

// ----- bitmap index -------------------------------------------------------

/// `dims u32 · n u64 · live bitvec · per dim (card u64 · values · ncols
/// u64 · columns) · slots n·dims×u32`.
pub fn encode_bitmap(w: &mut Writer, idx: &BitmapIndex) {
    w.put_u32(idx.dims() as u32);
    w.put_u64(idx.n() as u64);
    encode_bitvec(w, idx.live_mask());
    for d in 0..idx.dims() {
        let vals = idx.values(d);
        w.put_u64(vals.len() as u64);
        for &v in vals {
            w.put_f64(v);
        }
        w.put_u64(idx.num_columns(d) as u64);
        for c in 0..idx.num_columns(d) {
            encode_bitvec(w, idx.column(d, c));
        }
    }
    for o in 0..idx.n() {
        for d in 0..idx.dims() {
            w.put_u32(idx.value_slot(o, d));
        }
    }
}

/// Inverse of [`encode_bitmap`], re-validated through
/// [`BitmapIndex::from_store_parts`] (suffix tables recomputed).
pub fn decode_bitmap(r: &mut Reader<'_>) -> Result<BitmapIndex, StoreError> {
    let dims = r.get_u32()? as usize;
    if dims == 0 || dims > tkd_model::MAX_DIMS {
        return Err(r.invalid(format!("bad dimensionality {dims}")));
    }
    let n = r.get_u64()?;
    let n = usize::try_from(n).map_err(|_| r.invalid("n exceeds usize"))?;
    let live = decode_bitvec(r)?;
    if live.len() != n {
        return Err(r.invalid(format!("live mask has {} bits for n={n}", live.len())));
    }
    let mut values = Vec::with_capacity(dims);
    let mut columns = Vec::with_capacity(dims);
    for _ in 0..dims {
        let card = r.get_count(8)?;
        let vals: Vec<f64> = r.get_words(card)?.into_iter().map(f64::from_bits).collect();
        let ncols = r.get_count(8)?; // each column is ≥ 8 bytes (its length)
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            cols.push(decode_bitvec(r)?);
        }
        values.push(vals);
        columns.push(cols);
    }
    let slots_len = n
        .checked_mul(dims)
        .ok_or_else(|| r.invalid("n × dims overflows"))?;
    let mut slots = Vec::with_capacity(slots_len.min(r.remaining() / 4 + 1));
    for _ in 0..slots_len {
        slots.push(r.get_u32()?);
    }
    BitmapIndex::from_store_parts(
        dims,
        values,
        columns,
        slots,
        Tombstones::from_live_mask(live),
    )
    .map_err(|e| r.invalid(e))
}

// ----- binned index -------------------------------------------------------

/// `dims u32 · n u64 · per dim (nbins u64 · boundaries · ncols u64 ·
/// columns · nprobe u64 · (value f64, id u32) pairs) · bins n·dims×u32`.
pub fn encode_binned(w: &mut Writer, idx: &BinnedBitmapIndex) {
    w.put_u32(idx.dims() as u32);
    w.put_u64(idx.n() as u64);
    for d in 0..idx.dims() {
        w.put_u64(idx.num_bins(d) as u64);
        for b in 0..idx.num_bins(d) {
            w.put_f64(idx.bin_upper(d, b as u32 + 1));
        }
        w.put_u64(idx.num_columns(d) as u64);
        for c in 0..idx.num_columns(d) {
            encode_bitvec(w, idx.column(d, c));
        }
        w.put_u64(idx.observed_count(d) as u64);
        for (v, id) in idx.tree_entries(d) {
            w.put_f64(v);
            w.put_u32(id);
        }
    }
    for o in 0..idx.n() {
        for d in 0..idx.dims() {
            w.put_u32(idx.bin_of(o as ObjectId, d).unwrap_or(0));
        }
    }
}

/// Inverse of [`encode_binned`]; probe trees are rebuilt from the sorted
/// entry streams through [`BinnedBitmapIndex::from_store_parts`].
pub fn decode_binned(r: &mut Reader<'_>) -> Result<BinnedBitmapIndex, StoreError> {
    let dims = r.get_u32()? as usize;
    if dims == 0 || dims > tkd_model::MAX_DIMS {
        return Err(r.invalid(format!("bad dimensionality {dims}")));
    }
    let n = r.get_u64()?;
    let n = usize::try_from(n).map_err(|_| r.invalid("n exceeds usize"))?;
    let mut boundaries = Vec::with_capacity(dims);
    let mut columns = Vec::with_capacity(dims);
    let mut probes = Vec::with_capacity(dims);
    for _ in 0..dims {
        let nbins = r.get_count(8)?;
        let bounds: Vec<f64> = r
            .get_words(nbins)?
            .into_iter()
            .map(f64::from_bits)
            .collect();
        let ncols = r.get_count(8)?;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            cols.push(decode_bitvec(r)?);
        }
        let nprobe = r.get_count(12)?; // f64 + u32 per entry
        let mut entries = Vec::with_capacity(nprobe);
        for _ in 0..nprobe {
            let v = r.get_f64()?;
            let id = r.get_u32()?;
            entries.push((v, id));
        }
        boundaries.push(bounds);
        columns.push(cols);
        probes.push(entries);
    }
    let slots_len = n
        .checked_mul(dims)
        .ok_or_else(|| r.invalid("n × dims overflows"))?;
    let mut slots = Vec::with_capacity(slots_len.min(r.remaining() / 4 + 1));
    for _ in 0..slots_len {
        slots.push(r.get_u32()?);
    }
    if columns.first().is_some_and(Vec::is_empty) {
        return Err(r.invalid("dim 0 has no columns"));
    }
    if let Some(col0) = columns.first().and_then(|c| c.first()) {
        if col0.len() != n {
            return Err(r.invalid(format!("column length {} disagrees with n={n}", col0.len())));
        }
    }
    BinnedBitmapIndex::from_store_parts(dims, boundaries, columns, slots, probes)
        .map_err(|e| r.invalid(e))
}

// ----- preprocessed -------------------------------------------------------

/// `n u64 · queue len u64 · (slot u32, score u64) pairs · nsets u64 ·
/// (mask u64 ascending · bitvec) entries`.
pub fn encode_pre(w: &mut Writer, n: usize, pre: &Preprocessed) {
    w.put_u64(n as u64);
    w.put_u64(pre.queue().len() as u64);
    for &(slot, score) in pre.queue() {
        w.put_u32(slot);
        w.put_u64(score as u64);
    }
    let mut keys: Vec<u64> = pre.f_sets().keys().copied().collect();
    keys.sort_unstable(); // canonical: the map's order never leaks
    w.put_u64(keys.len() as u64);
    for k in keys {
        w.put_u64(k);
        encode_bitvec(w, &pre.f_sets()[&k]);
    }
}

/// Inverse of [`encode_pre`]; enforces strictly ascending mask keys (the
/// canonical form) and per-set bit lengths of `n`.
pub fn decode_pre(r: &mut Reader<'_>) -> Result<(usize, Preprocessed), StoreError> {
    let n = r.get_u64()?;
    let n = usize::try_from(n).map_err(|_| r.invalid("n exceeds usize"))?;
    let qlen = r.get_count(12)?;
    let mut queue = Vec::with_capacity(qlen);
    for _ in 0..qlen {
        let slot = r.get_u32()?;
        let score = r.get_u64()?;
        let score = usize::try_from(score).map_err(|_| r.invalid("score exceeds usize"))?;
        queue.push((slot, score));
    }
    let nsets = r.get_count(16)?; // mask u64 + bit length u64 minimum
    let mut f_sets = HashMap::with_capacity(nsets);
    let mut last: Option<u64> = None;
    for _ in 0..nsets {
        let mask = r.get_u64()?;
        if last.is_some_and(|p| p >= mask) {
            return Err(r.invalid("incomparable-set masks are not strictly ascending"));
        }
        last = Some(mask);
        let bv = decode_bitvec(r)?;
        if bv.len() != n {
            return Err(r.invalid(format!(
                "incomparable set of mask {mask:#x} has {} bits for n={n}",
                bv.len()
            )));
        }
        f_sets.insert(mask, bv);
    }
    Ok((n, Preprocessed::from_parts(queue, f_sets)))
}

// ----- dynamic meta -------------------------------------------------------

/// The non-artifact remainder of [`tkd_core::DynamicParts`].
pub struct DynamicMeta {
    /// Slot → stable id.
    pub stable_of: Vec<ObjectId>,
    /// Next stable id.
    pub next_id: ObjectId,
    /// The exact `|Tᵢ|` table.
    pub t: Vec<u32>,
    /// Bin selection.
    pub bins: BinChoice,
    /// Compaction policy.
    pub policy: CompactionPolicy,
    /// Compaction epoch.
    pub epoch: u64,
    /// Lifetime counters.
    pub stats: UpdateStats,
}

/// `next_id u32 · nslots u64 · stable ids u32 · tlen u64 · t u32 · bins
/// (tag u8 + payload) · policy (f64 + u64) · epoch u64 · stats 4×u64`.
pub fn encode_dynamic(w: &mut Writer, parts: &DynamicPartsRef<'_>) {
    w.put_u32(parts.next_id);
    w.put_u64(parts.stable_of.len() as u64);
    for &id in parts.stable_of {
        w.put_u32(id);
    }
    w.put_u64(parts.t.len() as u64);
    for &v in parts.t {
        w.put_u32(v);
    }
    match parts.bins {
        BinChoice::Auto => w.put_u8(0),
        BinChoice::Fixed(x) => {
            w.put_u8(1);
            w.put_u64(*x as u64);
        }
        BinChoice::PerDim(v) => {
            w.put_u8(2);
            w.put_u64(v.len() as u64);
            for &x in v {
                w.put_u64(x as u64);
            }
        }
    }
    w.put_f64(parts.policy.max_tombstone_fraction);
    w.put_u64(parts.policy.min_dead as u64);
    w.put_u64(parts.epoch);
    w.put_u64(parts.stats.inserts as u64);
    w.put_u64(parts.stats.deletes as u64);
    w.put_u64(parts.stats.cell_updates as u64);
    w.put_u64(parts.stats.compactions as u64);
}

/// Inverse of [`encode_dynamic`].
pub fn decode_dynamic(r: &mut Reader<'_>) -> Result<DynamicMeta, StoreError> {
    let next_id = r.get_u32()?;
    let nslots = r.get_count(4)?;
    let mut stable_of = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        stable_of.push(r.get_u32()?);
    }
    let tlen = r.get_count(4)?;
    let mut t = Vec::with_capacity(tlen);
    for _ in 0..tlen {
        t.push(r.get_u32()?);
    }
    let bins = match r.get_u8()? {
        0 => BinChoice::Auto,
        1 => {
            let x = r.get_u64()?;
            BinChoice::Fixed(usize::try_from(x).map_err(|_| r.invalid("bin count overflow"))?)
        }
        2 => {
            let len = r.get_count(8)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let x = r.get_u64()?;
                v.push(usize::try_from(x).map_err(|_| r.invalid("bin count overflow"))?);
            }
            BinChoice::PerDim(v)
        }
        other => return Err(r.invalid(format!("bad bin-choice tag {other}"))),
    };
    let max_tombstone_fraction = r.get_f64()?;
    if max_tombstone_fraction.is_nan() {
        return Err(r.invalid("NaN compaction threshold"));
    }
    let min_dead = r.get_u64()?;
    let min_dead = usize::try_from(min_dead).map_err(|_| r.invalid("min_dead overflow"))?;
    let epoch = r.get_u64()?;
    let mut counters = [0usize; 4];
    for c in &mut counters {
        let raw = r.get_u64()?;
        *c = usize::try_from(raw).map_err(|_| r.invalid("counter overflow"))?;
    }
    Ok(DynamicMeta {
        stable_of,
        next_id,
        t,
        bins,
        policy: CompactionPolicy {
            max_tombstone_fraction,
            min_dead,
        },
        epoch,
        stats: UpdateStats {
            inserts: counters[0],
            deletes: counters[1],
            cell_updates: counters[2],
            compactions: counters[3],
        },
    })
}
