//! The typed error surface of the snapshot format.
//!
//! Every malformed input — truncation at any boundary, flipped bytes in
//! the header, section table, payloads, or checksums, and hostile lengths
//! — must surface as one of these variants. Loading never panics, never
//! allocates ahead of a length check, and never silently accepts a
//! damaged file.

use core::fmt;

/// Which part of a snapshot an error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// The magic / version / section-table region.
    Header,
    /// The serialized [`tkd_model::Dataset`].
    Dataset,
    /// The serialized [`tkd_index::BitmapIndex`].
    BitmapIndex,
    /// The serialized [`tkd_index::BinnedBitmapIndex`].
    BinnedIndex,
    /// The serialized [`tkd_core::Preprocessed`] artifacts.
    Preprocessed,
    /// The serialized dynamic-engine state.
    Dynamic,
    /// A cluster shard manifest (`cluster.manifest`), not a snapshot
    /// section proper but validated with the same discipline.
    Manifest,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Section::Header => "header",
            Section::Dataset => "dataset",
            Section::BitmapIndex => "bitmap-index",
            Section::BinnedIndex => "binned-index",
            Section::Preprocessed => "preprocessed",
            Section::Dynamic => "dynamic",
            Section::Manifest => "manifest",
        })
    }
}

/// Why a snapshot could not be written or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed (path and OS message preserved).
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying OS error, stringified.
        message: String,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    /// Version compatibility is exact in v1: there is no migration path,
    /// rebuild the snapshot with `tkdq build` (see README § Persistence).
    VersionMismatch {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// The input ends before a structure it promised — the length was
    /// validated *before* any allocation sized by it.
    Truncated {
        /// Where the bytes ran out.
        section: Section,
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The section table itself is malformed (bad kind, overlapping or
    /// unordered ranges, impossible offsets).
    BadSectionTable {
        /// What was wrong.
        reason: String,
    },
    /// A payload does not hash to its recorded checksum — bytes were
    /// flipped between write and read.
    ChecksumMismatch {
        /// The damaged section ([`Section::Header`] covers the
        /// header-and-table checksum).
        section: Section,
    },
    /// The bytes parsed but violate a structural invariant of the
    /// decoded type (out-of-range slot, unsorted table, arity mismatch…).
    Invalid {
        /// The offending section.
        section: Section,
        /// The violated invariant.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "{path}: {message}"),
            StoreError::BadMagic => write!(f, "not a TKD snapshot (bad magic)"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}; \
                 re-create the snapshot with `tkdq build`"
            ),
            StoreError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot in {section}: needed {needed} bytes, {available} available"
            ),
            StoreError::BadSectionTable { reason } => {
                write!(f, "malformed section table: {reason}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} (snapshot is corrupt)")
            }
            StoreError::Invalid { section, reason } => {
                write!(f, "invalid {section} section: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
