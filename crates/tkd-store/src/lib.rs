//! Persistent snapshots of the TKD query state — build once, serve many
//! process lifetimes.
//!
//! Every `tkdq` invocation and engine start used to re-pay the full
//! `O(N·d)` bitmap + B+-tree + preprocessing construction. This crate
//! persists the whole maintained state of a
//! [`DynamicEngine`] — dataset, exact
//! [`tkd_index::BitmapIndex`], binned index with probe
//! trees, [`tkd_core::Preprocessed`] artifacts, and the
//! dynamic bookkeeping (tombstones, stable ids, epoch, counters) — in a
//! versioned binary format, and restores it **bit-identically**: a
//! loaded engine answers every query with the same entries, scores, and
//! tie order as the freshly built one (pinned by `tests/persist_*.rs`
//! with the same differential discipline as the parallel and dynamic
//! subsystems).
//!
//! # Format (version 2)
//!
//! ```text
//! magic            8 bytes  "TKDSNAP\0"
//! format_version   u32      2
//! section_count    u32      5
//! section table    5 × { kind u32, pad u32, offset u64, len u64, fnv64 u64 }
//! header checksum  u64      FNV-1a 64 of every byte above
//! payloads         5 sections, each starting 8-byte aligned
//! ```
//!
//! All integers are little-endian. Section kinds (in required order):
//! 1 dataset, 2 bitmap index, 3 binned index, 4 preprocessed,
//! 5 dynamic state. `BitVec` columns are stored as `(bit length, u64
//! word array)` and every word slab (columns, dataset masks/values) is
//! zero-padded to an **8-byte file offset** — v2's one layout change
//! over v1. That alignment is what makes the zero-copy load possible:
//! [`SnapshotBuf`] owns the whole file as one aligned `Arc<[u64]>`
//! buffer, and after the checksums validate, every column and dataset
//! slab is handed out as a *borrowed view* of that buffer (promoted to
//! an owned copy only when first mutated) — load cost is O(validate),
//! not O(copy). B+-tree *node structure* is never stored: probe trees
//! serialize as their sorted entry streams and rebuild deterministically.
//!
//! **Compatibility policy:** exact version match. A snapshot from any
//! other format version fails with [`StoreError::VersionMismatch`] —
//! there is no migration; snapshots are caches, rebuilt with
//! `tkdq build` from the source data.
//!
//! Corruption anywhere — truncation, flipped bytes, hostile length
//! fields — surfaces as a typed [`StoreError`]; hostile lengths are
//! validated against the bytes actually present *before* any allocation.

#![warn(missing_docs)]

mod codec;
mod error;
mod manifest;
mod wire;

pub use error::{Section, StoreError};
pub use manifest::{ClusterManifest, ShardEntry, MANIFEST_MAGIC, MANIFEST_VERSION};
pub use wire::fnv64;

use tkd_core::dynamic::DynamicParts;
use tkd_core::DynamicEngine;
use wire::{Reader, Writer};

/// First eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"TKDSNAP\0";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 2;

/// Section kinds of format v1, in their required file order.
const KINDS: [(u32, Section); 5] = [
    (1, Section::Dataset),
    (2, Section::BitmapIndex),
    (3, Section::BinnedIndex),
    (4, Section::Preprocessed),
    (5, Section::Dynamic),
];

/// Header bytes before the section table.
const HEADER_LEN: usize = 16;
/// Bytes per section-table entry.
const ENTRY_LEN: usize = 32;

/// An owned snapshot buffer that validated loads can **borrow** from.
///
/// The whole file lives in one 8-aligned allocation. On little-endian
/// hosts — where the on-disk word layout and the in-memory `u64` layout
/// coincide — that allocation is an `Arc<[u64]>` and decoding hands out
/// borrowed views of it ([`decode_engine_shared`]); elsewhere it is a
/// plain byte buffer and decoding falls back to copies, bit-identically.
/// Both representations are always compiled; endianness only picks which
/// one a constructor builds.
pub struct SnapshotBuf {
    backing: Backing,
    /// Real file length — the final backing word may carry zero padding.
    byte_len: usize,
}

enum Backing {
    /// 8-aligned word storage: the borrow-capable backing.
    Words(std::sync::Arc<[u64]>),
    /// Plain bytes: the copying fallback (big-endian hosts).
    Bytes(Vec<u8>),
}

impl SnapshotBuf {
    /// Read the snapshot file at `path` into a fresh aligned buffer —
    /// one disk read straight into the allocation the engine will
    /// borrow from, no staging copy.
    ///
    /// # Errors
    /// [`StoreError::Io`] with the path and OS message.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let io_err = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if cfg!(target_endian = "big") {
            return Ok(SnapshotBuf::from_byte_vec(
                std::fs::read(path).map_err(io_err)?,
            ));
        }
        let mut f = std::fs::File::open(path).map_err(io_err)?;
        let byte_len = f.metadata().map_err(io_err)?.len();
        let byte_len = usize::try_from(byte_len).map_err(|_| StoreError::Io {
            path: path.display().to_string(),
            message: "file exceeds address space".into(),
        })?;
        let words = read_aligned(&mut f, byte_len).map_err(io_err)?;
        Ok(SnapshotBuf {
            backing: Backing::Words(words),
            byte_len,
        })
    }

    /// Adopt already-encoded snapshot bytes (one copy into an aligned
    /// buffer on little-endian hosts — useful for tests and in-memory
    /// pipelines; [`SnapshotBuf::open`] avoids even that copy).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        if cfg!(target_endian = "big") {
            return SnapshotBuf::from_byte_vec(bytes);
        }
        let byte_len = bytes.len();
        let words = read_aligned(&mut &bytes[..], byte_len).expect("in-memory read");
        SnapshotBuf {
            backing: Backing::Words(words),
            byte_len,
        }
    }

    fn from_byte_vec(bytes: Vec<u8>) -> Self {
        let byte_len = bytes.len();
        SnapshotBuf {
            backing: Backing::Bytes(bytes),
            byte_len,
        }
    }

    /// The snapshot bytes, exactly as on disk.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            // SAFETY: u64 storage viewed as initialized bytes, truncated
            // to the real file length (the final word's tail is padding).
            Backing::Words(w) => unsafe {
                std::slice::from_raw_parts(w.as_ptr().cast::<u8>(), self.byte_len)
            },
            Backing::Bytes(b) => b,
        }
    }

    /// The aligned word backing, when this buffer can lend one.
    fn words(&self) -> Option<&std::sync::Arc<[u64]>> {
        match &self.backing {
            Backing::Words(w) => Some(w),
            Backing::Bytes(_) => None,
        }
    }
}

/// Read exactly `byte_len` bytes from `src` into a freshly allocated
/// `Arc<[u64]>` (tail of the last word zeroed) — the one allocation a
/// zero-copy load ever makes for payload data.
fn read_aligned(
    src: &mut impl std::io::Read,
    byte_len: usize,
) -> std::io::Result<std::sync::Arc<[u64]>> {
    let nwords = byte_len.div_ceil(8);
    let mut arc = std::sync::Arc::new_uninit_slice(nwords);
    let slab = std::sync::Arc::get_mut(&mut arc).expect("freshly allocated, uniquely owned");
    // SAFETY: the MaybeUninit<u64> storage is reinterpreted as bytes; the
    // write_bytes zeroes all nwords*8 of them (covering the final word's
    // tail beyond byte_len), then read_exact overwrites the first
    // byte_len. Every word is fully initialized afterwards.
    unsafe {
        let p = slab.as_mut_ptr().cast::<u8>();
        std::ptr::write_bytes(p, 0, nwords * 8);
        src.read_exact(std::slice::from_raw_parts_mut(p, byte_len))?;
    }
    // SAFETY: all bytes of all words initialized above.
    Ok(unsafe { arc.assume_init() })
}

/// Serialize the engine's full state to snapshot bytes. Takes `&mut`
/// to flush the deferred queue re-sort first, which makes the encoding
/// of a given logical state deterministic (the golden-file guarantee:
/// `encode(decode(b)) == b`).
pub fn encode_engine(engine: &mut DynamicEngine) -> Vec<u8> {
    // Borrowed view of the engine's state, streamed into ONE buffer:
    // the section table goes down as placeholders, each payload is
    // encoded in place right after it, and offsets/lengths/checksums
    // are backpatched — peak memory is the engine plus the final
    // snapshot bytes, with no per-section staging copies.
    let parts = engine.store_parts_ref();
    let table_end = HEADER_LEN + KINDS.len() * ENTRY_LEN + 8;
    let mut w = Writer::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(KINDS.len() as u32);
    for (kind, _) in KINDS {
        w.put_u32(kind);
        w.put_u32(0); // reserved
        w.put_u64(0); // offset, backpatched
        w.put_u64(0); // length, backpatched
        w.put_u64(0); // checksum, backpatched
    }
    w.put_u64(0); // header checksum, backpatched
    debug_assert_eq!(w.len(), table_end);
    for (i, (_, section)) in KINDS.iter().enumerate() {
        let offset = w.len();
        debug_assert!(offset.is_multiple_of(8));
        match section {
            Section::Dataset => codec::encode_dataset(&mut w, parts.ds),
            Section::BitmapIndex => codec::encode_bitmap(&mut w, parts.index),
            Section::BinnedIndex => codec::encode_binned(&mut w, parts.binned),
            Section::Preprocessed => codec::encode_pre(&mut w, parts.ds.len(), parts.pre),
            Section::Dynamic => codec::encode_dynamic(&mut w, &parts),
            Section::Header | Section::Manifest => unreachable!("not a payload section"),
        }
        let len = w.len() - offset;
        let checksum = fnv64(&w.as_bytes()[offset..]);
        let pad = len.div_ceil(8) * 8 - len;
        w.put_bytes(&[0u8; 8][..pad]);
        let e = HEADER_LEN + i * ENTRY_LEN;
        w.patch_u64(e + 8, offset as u64);
        w.patch_u64(e + 16, len as u64);
        w.patch_u64(e + 24, checksum);
    }
    let header_sum = fnv64(&w.as_bytes()[..table_end - 8]);
    w.patch_u64(table_end - 8, header_sum);
    w.into_bytes()
}

/// Restore an engine from snapshot bytes — the inverse of
/// [`encode_engine`], with integrity (checksums) and structural
/// invariants re-validated at every layer. This is the **copying**
/// decode: every column and slab is materialized as owned storage. For
/// the zero-copy path, load through a [`SnapshotBuf`] (or just
/// [`load_engine`], which does).
///
/// # Errors
/// A typed [`StoreError`] for any malformed input; see the crate docs.
pub fn decode_engine(bytes: &[u8]) -> Result<DynamicEngine, StoreError> {
    decode_engine_inner(bytes, None)
}

/// Restore an engine from an owned snapshot buffer, **borrowing** every
/// `BitVec` column and dataset slab straight out of the buffer instead
/// of copying (little-endian hosts; elsewhere this decodes identically
/// to [`decode_engine`]). Validation — header, section table, and every
/// section checksum — is exactly the copying path's; only the storage of
/// the decoded words differs, and the parity suites pin the two results
/// bit-identical.
///
/// The returned engine holds `Arc` references into `buf`'s buffer;
/// mutations promote the touched storage to owned copies
/// (copy-on-write), and the buffer is freed when the last borrower is
/// dropped or promoted.
///
/// # Errors
/// A typed [`StoreError`] for any malformed input; see the crate docs.
pub fn decode_engine_shared(buf: &SnapshotBuf) -> Result<DynamicEngine, StoreError> {
    decode_engine_inner(buf.bytes(), buf.words())
}

fn decode_engine_inner(
    bytes: &[u8],
    backing: Option<&std::sync::Arc<[u64]>>,
) -> Result<DynamicEngine, StoreError> {
    let need = |n: usize| -> Result<(), StoreError> {
        if bytes.len() < n {
            Err(StoreError::Truncated {
                section: Section::Header,
                needed: n as u64,
                available: bytes.len() as u64,
            })
        } else {
            Ok(())
        }
    };
    need(HEADER_LEN)?;
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if count != KINDS.len() {
        return Err(StoreError::BadSectionTable {
            reason: format!("v2 requires {} sections, found {count}", KINDS.len()),
        });
    }
    let table_end = HEADER_LEN + count * ENTRY_LEN + 8;
    need(table_end)?;
    let stored_sum =
        u64::from_le_bytes(bytes[table_end - 8..table_end].try_into().expect("8 bytes"));
    if fnv64(&bytes[..table_end - 8]) != stored_sum {
        return Err(StoreError::ChecksumMismatch {
            section: Section::Header,
        });
    }

    // Parse and sanity-check the table before touching any payload.
    let mut ranges = Vec::with_capacity(count);
    let mut expected_offset = table_end as u64;
    for (i, &(kind, section)) in KINDS.iter().enumerate() {
        let e = HEADER_LEN + i * ENTRY_LEN;
        let entry = &bytes[e..e + ENTRY_LEN];
        let got_kind = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
        let pad = u32::from_le_bytes(entry[4..8].try_into().expect("4 bytes"));
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
        if got_kind != kind {
            return Err(StoreError::BadSectionTable {
                reason: format!("entry {i} has kind {got_kind}, expected {kind}"),
            });
        }
        if pad != 0 {
            return Err(StoreError::BadSectionTable {
                reason: format!("entry {i} has nonzero reserved field"),
            });
        }
        if offset != expected_offset {
            return Err(StoreError::BadSectionTable {
                reason: format!("entry {i} starts at {offset}, expected {expected_offset}"),
            });
        }
        let end = offset.checked_add(len).ok_or(StoreError::BadSectionTable {
            reason: format!("entry {i} length overflows"),
        })?;
        if end > bytes.len() as u64 {
            return Err(StoreError::Truncated {
                section,
                needed: end,
                available: bytes.len() as u64,
            });
        }
        ranges.push((section, offset as usize, len as usize, checksum));
        expected_offset = end.div_ceil(8) * 8;
    }
    if expected_offset != bytes.len() as u64 {
        return Err(StoreError::BadSectionTable {
            reason: format!(
                "file has {} bytes, sections end at {expected_offset}",
                bytes.len()
            ),
        });
    }
    // Padding gaps must be zero (canonical form).
    for &(section, offset, len, _) in &ranges {
        let end = offset + len;
        let padded = len.div_ceil(8) * 8 + offset;
        if bytes[end..padded.min(bytes.len())].iter().any(|&b| b != 0) {
            return Err(StoreError::Invalid {
                section,
                reason: "nonzero inter-section padding".into(),
            });
        }
    }
    // Verify every checksum before decoding anything.
    for &(section, offset, len, checksum) in &ranges {
        if fnv64(&bytes[offset..offset + len]) != checksum {
            return Err(StoreError::ChecksumMismatch { section });
        }
    }

    let reader = |i: usize| -> Reader<'_> {
        let (section, offset, len, _) = ranges[i];
        let payload = &bytes[offset..offset + len];
        match backing {
            Some(file) => Reader::with_backing(payload, section, file.clone(), offset),
            None => Reader::new(payload, section),
        }
    };
    let mut r = reader(0);
    let ds = codec::decode_dataset(&mut r)?;
    r.finish()?;
    let mut r = reader(1);
    let index = codec::decode_bitmap(&mut r)?;
    r.finish()?;
    let mut r = reader(2);
    let binned = codec::decode_binned(&mut r)?;
    r.finish()?;
    let mut r = reader(3);
    let (pre_n, pre) = codec::decode_pre(&mut r)?;
    r.finish()?;
    if pre_n != ds.len() {
        return Err(StoreError::Invalid {
            section: Section::Preprocessed,
            reason: format!(
                "preprocessed n={pre_n} disagrees with dataset n={}",
                ds.len()
            ),
        });
    }
    let mut r = reader(4);
    let meta = codec::decode_dynamic(&mut r)?;
    r.finish()?;

    DynamicEngine::from_store_parts(DynamicParts {
        ds,
        stable_of: meta.stable_of,
        next_id: meta.next_id,
        index,
        binned,
        pre,
        t: meta.t,
        bins: meta.bins,
        policy: meta.policy,
        epoch: meta.epoch,
        stats: meta.stats,
    })
    .map_err(|reason| StoreError::Invalid {
        section: Section::Dynamic,
        reason,
    })
}

/// [`encode_engine`] straight to a file. Returns the byte count written.
///
/// The write is **atomic and durable**: bytes go to a fresh temporary
/// file in the target's directory, are fsynced, and the temp file is
/// then renamed over the target. A crash mid-write (power loss,
/// SIGKILL, full disk) leaves the previous snapshot intact — the sync
/// before the rename is what keeps that true across power loss, where
/// an unsynced rename could be journaled ahead of the data blocks.
/// This matters for `tkdq update --index`, where the snapshot being
/// rewritten holds state (applied ops, the stable-id counter) that
/// exists nowhere else.
///
/// # Errors
/// [`StoreError::Io`] with the path and OS message.
pub fn save_engine(
    path: impl AsRef<std::path::Path>,
    engine: &mut DynamicEngine,
) -> Result<u64, StoreError> {
    atomic_rewrite(path, &encode_engine(engine))
}

/// Atomically and durably replace the file at `path` with `bytes` — the
/// rewrite hook behind [`save_engine`], public so callers that already
/// hold encoded snapshot bytes (the network server's single-writer
/// update path, the stress harnesses) can rewrite without re-encoding.
/// Returns the byte count written.
///
/// # Errors
/// [`StoreError::Io`] with the path and OS message.
pub fn atomic_rewrite(path: impl AsRef<std::path::Path>, bytes: &[u8]) -> Result<u64, StoreError> {
    use std::io::Write as _;
    let path = path.as_ref();
    let io_err = |p: &std::path::Path, e: std::io::Error| StoreError::Io {
        path: p.display().to_string(),
        message: e.to_string(),
    };
    let mut tmp = path.to_path_buf();
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "snapshot".into());
    name.push(format!(".tmp.{}", std::process::id()));
    tmp.set_file_name(name);
    let write_synced = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    };
    write_synced().map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        io_err(&tmp, e)
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        io_err(path, e)
    })?;
    // Make the rename itself durable where directory handles can sync
    // (best-effort: not all platforms/filesystems allow it).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(bytes.len() as u64)
}

/// Load an engine straight from a file — the **zero-copy** path: the
/// file is read once into an owned, 8-aligned [`SnapshotBuf`], and the
/// engine's columns and dataset slabs borrow that buffer (see
/// [`decode_engine_shared`]).
///
/// # Errors
/// [`StoreError::Io`] for filesystem failures, otherwise the decode
/// errors of [`decode_engine`].
pub fn load_engine(path: impl AsRef<std::path::Path>) -> Result<DynamicEngine, StoreError> {
    decode_engine_shared(&SnapshotBuf::open(path)?)
}

/// Byte offsets of every section boundary in `bytes` (header end, each
/// payload start and end) — the corruption harness truncates at exactly
/// these places. Returns an empty list when the header is unreadable.
pub fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut cuts = vec![0, HEADER_LEN.min(bytes.len())];
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return cuts;
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let table_end = HEADER_LEN + count * ENTRY_LEN + 8;
    cuts.push(table_end.min(bytes.len()));
    for i in 0..count {
        let e = HEADER_LEN + i * ENTRY_LEN;
        if e + ENTRY_LEN > bytes.len() {
            break;
        }
        let entry = &bytes[e..e + ENTRY_LEN];
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes")) as usize;
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes")) as usize;
        cuts.push(offset.min(bytes.len()));
        cuts.push(offset.saturating_add(len).min(bytes.len()));
    }
    cuts.push(bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkd_core::EngineQuery;
    use tkd_model::fixtures;

    #[test]
    fn fig3_roundtrip_is_byte_stable_and_query_identical() {
        let mut engine = DynamicEngine::new(fixtures::fig3_sample());
        let bytes = encode_engine(&mut engine);
        let mut loaded = decode_engine(&bytes).expect("own bytes load");
        // Canonical: re-serialization is byte-identical.
        assert_eq!(encode_engine(&mut loaded), bytes);
        // And the loaded engine answers the running example identically.
        let fresh = engine.query(&EngineQuery::new(2)).unwrap();
        let resumed = loaded.query(&EngineQuery::new(2)).unwrap();
        assert_eq!(fresh.entries(), resumed.entries());
        assert_eq!(resumed.kth_score(), Some(16));
    }

    #[test]
    fn version_bump_and_magic_are_rejected() {
        let mut engine = DynamicEngine::new(fixtures::fig3_sample());
        let bytes = encode_engine(&mut engine);
        let mut wrong_version = bytes.clone();
        wrong_version[8] = FORMAT_VERSION as u8 + 1; // format_version LE low byte
        assert_eq!(
            decode_engine(&wrong_version).unwrap_err(),
            StoreError::VersionMismatch {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION
            }
        );
        let mut wrong_magic = bytes;
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            decode_engine(&wrong_magic).unwrap_err(),
            StoreError::BadMagic
        );
        assert_eq!(
            decode_engine(b"").unwrap_err(),
            StoreError::Truncated {
                section: Section::Header,
                needed: 16,
                available: 0
            }
        );
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let mut engine = DynamicEngine::new(fixtures::fig3_sample());
        let path = std::env::temp_dir().join("tkd_store_smoke.tkdsnap");
        let written = save_engine(&path, &mut engine).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let mut loaded = load_engine(&path).unwrap();
        assert_eq!(
            loaded.query(&EngineQuery::new(2)).unwrap().kth_score(),
            Some(16)
        );
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_engine(&path).unwrap_err(),
            StoreError::Io { .. }
        ));
    }

    #[test]
    fn boundaries_cover_header_table_and_sections() {
        let mut engine = DynamicEngine::new(fixtures::fig3_sample());
        let bytes = encode_engine(&mut engine);
        let cuts = section_boundaries(&bytes);
        // Adjacent cuts collapse when a section's padded end coincides
        // with the next offset (always, now that v2 aligns slabs), so
        // the distinct count is at least one per section plus the
        // header/table/EOF marks.
        assert!(cuts.len() >= 3 + KINDS.len());
        assert_eq!(*cuts.first().unwrap(), 0);
        assert!(cuts.iter().all(|&c| c <= bytes.len()));
        assert_eq!(*cuts.last().unwrap(), bytes.len());
    }
}
