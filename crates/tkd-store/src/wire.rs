//! Little-endian wire primitives: an append-only [`Writer`] and a
//! bounds-checked [`Reader`].
//!
//! Every `Reader` length check happens **before** the allocation it
//! guards, so a hostile length field can never trigger an OOM abort —
//! it is rejected against the bytes actually present. Word arrays
//! (`u64` sequences, the storage of every `BitVec`) are copied in bulk
//! from the byte buffer, never decoded bit by bit.

use crate::error::{Section, StoreError};
use std::sync::Arc;
use tkd_bitvec::{SharedWords, Words};

// The word-folded FNV-1a checksum lives in `tkd_bitvec::hash` (the
// dependency-free substrate crate) so the store and the serve protocol
// share one definition; re-exported here for the codec and the public
// crate API.
pub use tkd_bitvec::fnv64;

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far (e.g. to checksum a prefix).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE bits, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u64` word array (bulk, LE).
    pub fn put_words(&mut self, words: &[u64]) {
        self.buf.reserve(words.len() * 8);
        for &w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Overwrite 8 bytes at `pos` with a `u64`, little-endian — the
    /// backpatch primitive: the snapshot writer lays the section table
    /// down as placeholders, streams the payloads into the same buffer,
    /// then patches offsets/lengths/checksums in place (single buffer,
    /// no payload staging copies).
    ///
    /// # Panics
    /// Panics if `pos + 8` exceeds the bytes written so far.
    pub fn patch_u64(&mut self, pos: usize, v: u64) {
        self.buf[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Zero-pad to the next 8-byte boundary (no-op when already
    /// aligned). Format v2 aligns every word slab this way so a loader
    /// that owns the file buffer as `u64` words can hand out borrowed
    /// views instead of copying.
    pub fn align8(&mut self) {
        let pad = (8 - self.buf.len() % 8) % 8;
        self.buf.extend_from_slice(&[0u8; 8][..pad]);
    }

    /// Append a length-prefixed UTF-8 string (`u32` length).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("label length fits u32"));
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian cursor over one section's payload.
///
/// A reader may additionally carry a **shared backing**: the whole
/// snapshot file as one `Arc<[u64]>` plus the byte offset of this
/// payload inside it. With a backing attached, [`Reader::get_word_slab`]
/// returns borrowed [`Words`] views into that buffer (zero-copy) instead
/// of copying; without one it degrades to plain copies.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: Section,
    /// `(file words, byte offset of buf[0] within the file)`.
    backing: Option<(Arc<[u64]>, usize)>,
}

impl<'a> Reader<'a> {
    /// Read `buf` as the payload of `section` (errors carry the label).
    pub fn new(buf: &'a [u8], section: Section) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
            backing: None,
        }
    }

    /// Like [`Reader::new`], but able to hand out borrowed word slabs:
    /// `file` is the whole snapshot as aligned words and `base` is the
    /// byte offset of `buf[0]` within it. `base` must be 8-aligned (v2
    /// sections always are) or slabs silently fall back to copies.
    pub fn with_backing(buf: &'a [u8], section: Section, file: Arc<[u64]>, base: usize) -> Self {
        debug_assert!(base.is_multiple_of(8), "section payloads start 8-aligned");
        Reader {
            buf,
            pos: 0,
            section,
            backing: Some((file, base)),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail with [`StoreError::Truncated`] unless `n` more bytes exist.
    fn need(&self, n: usize) -> Result<(), StoreError> {
        if self.remaining() < n {
            Err(StoreError::Truncated {
                section: self.section,
                needed: n as u64,
                available: self.remaining() as u64,
            })
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// A `u32`, little-endian.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A `u64`, little-endian.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// An `f64` from raw IEEE bits.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// A `u64` length field validated to describe at most
    /// `remaining / elem_bytes` elements — the pre-allocation guard: a
    /// hostile count is rejected here, before any `Vec::with_capacity`.
    pub fn get_count(&mut self, elem_bytes: usize) -> Result<usize, StoreError> {
        let raw = self.get_u64()?;
        let count = usize::try_from(raw).map_err(|_| self.invalid("count exceeds usize"))?;
        let bytes = count
            .checked_mul(elem_bytes)
            .ok_or_else(|| self.invalid("count overflows"))?;
        self.need(bytes)?;
        Ok(count)
    }

    /// A `u64` word array of exactly `count` words (bulk copy; call
    /// [`Reader::get_count`] first to validate the count).
    pub fn get_words(&mut self, count: usize) -> Result<Vec<u64>, StoreError> {
        let bytes = count
            .checked_mul(8)
            .ok_or_else(|| self.invalid("word count overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Consume zero padding up to the next 8-byte boundary. Nonzero pad
    /// bytes are corruption (the canonical form zero-fills them), and on
    /// the borrow path tolerating them would let a slab start misaligned.
    pub fn align8(&mut self) -> Result<(), StoreError> {
        let pad = (8 - self.pos % 8) % 8;
        if self.take(pad)?.iter().any(|&b| b != 0) {
            return Err(self.invalid("nonzero alignment padding"));
        }
        Ok(())
    }

    /// A `u64` word slab of exactly `count` words, **borrowed** from the
    /// shared file buffer when possible (backing attached, slab 8-aligned
    /// in the file, little-endian host — so the file bytes already *are*
    /// the in-memory words) and copied otherwise. Callers must
    /// [`Reader::align8`] first; v2 writers aligned every slab, so on the
    /// zero-copy load path this never copies.
    pub fn get_word_slab(&mut self, count: usize) -> Result<Words, StoreError> {
        if let Some((file, base)) = &self.backing {
            let abs = base + self.pos;
            if abs.is_multiple_of(8) && cfg!(target_endian = "little") {
                let bytes = count
                    .checked_mul(8)
                    .ok_or_else(|| self.invalid("word count overflows"))?;
                self.need(bytes)?;
                if let Some(view) = SharedWords::new(file.clone(), abs / 8, count) {
                    self.pos += bytes;
                    return Ok(Words::Shared(view));
                }
            }
        }
        self.get_words(count).map(Words::Owned)
    }

    /// A length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.invalid("label is not UTF-8"))
    }

    /// Build an [`StoreError::Invalid`] for this section.
    pub fn invalid(&self, reason: impl Into<String>) -> StoreError {
        StoreError::Invalid {
            section: self.section,
            reason: reason.into(),
        }
    }

    /// Require the payload to be fully consumed — trailing junk would
    /// make re-serialization non-canonical, so it is corruption.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(self.invalid(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Sub-word inputs hash exactly like standard FNV-1a 64.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        // Word-wide folding: sensitive to every bit and to truncation.
        let base: Vec<u8> = (0u8..64).collect();
        let h = fnv64(&base);
        for i in [0usize, 7, 8, 31, 63] {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv64(&flipped), h, "flip at {i}");
        }
        assert_ne!(fnv64(&base[..63]), h);
        assert_ne!(fnv64(&base[..56]), h);
    }

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_words(&[1, 2, 3]);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, Section::Header);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_words(3).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn hostile_lengths_fail_before_allocation() {
        // A count field claiming u64::MAX elements must be rejected by
        // comparing against the bytes present, not by allocating.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, Section::Dataset);
        let err = r.get_count(8).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::Invalid { .. }
            ),
            "{err:?}"
        );
        // Same for string lengths.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, Section::Dataset);
        assert!(matches!(
            r.get_str().unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, Section::Preprocessed);
        let _ = r.get_u32().unwrap();
        assert!(matches!(
            r.finish().unwrap_err(),
            StoreError::Invalid { .. }
        ));
    }
}
