//! The corruption harness: deterministic fuzzing of the snapshot loader.
//!
//! Every damaged input — truncation at every byte of the small snapshot
//! and at every section boundary of the large one, byte flips at seeded
//! offsets across header, section table, checksums, payloads, and
//! padding, and hostile length fields with *fixed-up* checksums — must
//! come back as a typed [`StoreError`]: no panic, no OOM-abort, no
//! silent load. Out-of-range lengths are rejected against the bytes
//! actually present, before any allocation they would size.

use tkd_core::{DynamicEngine, EngineQuery};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::fixtures;
use tkd_store::{
    decode_engine, decode_engine_shared, encode_engine, fnv64, section_boundaries, SnapshotBuf,
    StoreError,
};

/// Splitmix-style deterministic offsets.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

fn small_snapshot() -> Vec<u8> {
    encode_engine(&mut DynamicEngine::new(fixtures::fig3_sample()))
}

fn large_snapshot() -> Vec<u8> {
    let ds = generate(&SyntheticConfig {
        n: 600,
        dims: 4,
        cardinality: 40,
        missing_rate: 0.3,
        distribution: Distribution::Independent,
        seed: 9,
    });
    let mut engine = DynamicEngine::new(ds);
    // Tombstones and a mixed history make every section non-trivial.
    engine.insert(&[Some(1.0), None, Some(2.0), None]).unwrap();
    engine.delete(3).unwrap();
    engine.delete(77).unwrap();
    encode_engine(&mut engine)
}

/// Recompute every section checksum and the header checksum so tampered
/// *content* survives the integrity layer and must be caught by the
/// structural validation behind it.
fn fix_checksums(bytes: &mut [u8]) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..count {
        let e = 16 + i * 32;
        let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
        if offset.saturating_add(len) <= bytes.len() {
            let sum = fnv64(&bytes[offset..offset + len]);
            bytes[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
        }
    }
    let table_end = 16 + count * 32 + 8;
    let sum = fnv64(&bytes[..table_end - 8]);
    bytes[table_end - 8..table_end].copy_from_slice(&sum.to_le_bytes());
}

/// Decode must fail with a typed error that also renders — on **both**
/// load paths: the copying decode and the zero-copy (borrowed) decode
/// must reject the same damage with the same typed error; misaligned or
/// truncated buffers on the borrow path never become UB or panics.
#[track_caller]
fn assert_rejected(bytes: &[u8], what: &str) {
    let copied = match decode_engine(bytes) {
        Ok(_) => panic!("{what}: corrupted snapshot loaded silently"),
        Err(e) => {
            assert!(!e.to_string().is_empty(), "{what}: empty error message");
            e
        }
    };
    match decode_engine_shared(&SnapshotBuf::from_bytes(bytes.to_vec())) {
        Ok(_) => panic!("{what}: corrupted snapshot loaded silently on the borrow path"),
        Err(e) => assert_eq!(e, copied, "{what}: borrow path error diverges"),
    }
}

#[test]
fn truncation_at_every_byte_of_the_small_snapshot() {
    let bytes = small_snapshot();
    for cut in 0..bytes.len() {
        assert_rejected(&bytes[..cut], &format!("truncate at {cut}"));
    }
    // The untruncated bytes do load — the harness is not vacuous.
    assert!(decode_engine(&bytes).is_ok());
}

#[test]
fn truncation_at_every_section_boundary_of_the_large_snapshot() {
    let bytes = large_snapshot();
    let cuts = section_boundaries(&bytes);
    // v2 aligns slabs, so section ends usually coincide with the next
    // offset and dedup to one cut: header, table, 5 section starts, EOF.
    assert!(cuts.len() >= 8, "boundary enumeration looks too small");
    for &cut in &cuts {
        if cut == bytes.len() {
            continue;
        }
        // At the boundary and one byte to either side.
        for cut in [cut.saturating_sub(1), cut, cut + 1] {
            assert_rejected(&bytes[..cut], &format!("truncate at boundary {cut}"));
        }
    }
}

#[test]
fn byte_flips_at_seeded_offsets_never_load() {
    let bytes = large_snapshot();
    let mut rng = Mix(0xC0FFEE);
    // Seeded offsets across the whole file…
    let mut offsets: Vec<usize> = (0..300)
        .map(|_| (rng.next() as usize) % bytes.len())
        .collect();
    // …plus every header byte, the full section table, each recorded
    // checksum field, and each payload's first/last byte.
    offsets.extend(0..16);
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_end = 16 + count * 32 + 8;
    offsets.extend(16..table_end);
    for i in 0..count {
        let e = 16 + i * 32;
        let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
        offsets.push(offset);
        if len > 0 {
            offsets.push(offset + len - 1);
        }
        // Padding bytes after the payload, when present.
        if !len.is_multiple_of(8) {
            offsets.push(offset + len);
        }
    }
    for off in offsets {
        let mut damaged = bytes.clone();
        let mask = (rng.next() % 255 + 1) as u8; // never a no-op flip
        damaged[off] ^= mask;
        assert_rejected(&damaged, &format!("flip at {off} (mask {mask:#x})"));
    }
}

#[test]
fn hostile_lengths_are_rejected_before_allocation() {
    let bytes = large_snapshot();
    // Section-table length of u64::MAX (header checksum fixed so the
    // table parse proceeds to the bounds check).
    {
        let mut damaged = bytes.clone();
        damaged[16 + 16..16 + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        fix_checksums(&mut damaged);
        assert!(matches!(
            decode_engine(&damaged).unwrap_err(),
            StoreError::Truncated { .. } | StoreError::BadSectionTable { .. }
        ));
    }
    // Dataset object count of u64::MAX inside a checksum-valid payload:
    // must die at the pre-allocation bounds check, not in an allocator.
    {
        let mut damaged = bytes.clone();
        let ds_off = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        damaged[ds_off + 4..ds_off + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        fix_checksums(&mut damaged);
        assert!(matches!(
            decode_engine(&damaged).unwrap_err(),
            StoreError::Truncated { .. } | StoreError::Invalid { .. }
        ));
    }
    // A BitVec bit length of u64::MAX inside the bitmap payload (the
    // live mask's length field sits right after dims + n).
    {
        let mut damaged = bytes.clone();
        let e = 16 + 32; // entry 1: bitmap index
        let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
        damaged[off + 12..off + 20].copy_from_slice(&u64::MAX.to_le_bytes());
        fix_checksums(&mut damaged);
        assert!(matches!(
            decode_engine(&damaged).unwrap_err(),
            StoreError::Truncated { .. } | StoreError::Invalid { .. }
        ));
    }
}

#[test]
fn content_tampering_behind_valid_checksums_is_caught_structurally() {
    let bytes = large_snapshot();
    let dynamic_entry = 16 + 4 * 32;
    let dyn_off = u64::from_le_bytes(
        bytes[dynamic_entry + 8..dynamic_entry + 16]
            .try_into()
            .unwrap(),
    ) as usize;
    // Swap two stable ids (they must be strictly increasing): bytes
    // dyn_off+4 is the slot count, ids follow.
    let mut damaged = bytes.clone();
    let ids_at = dyn_off + 12;
    let (a, b) = (ids_at, ids_at + 4);
    for i in 0..4 {
        damaged.swap(a + i, b + i);
    }
    fix_checksums(&mut damaged);
    match decode_engine(&damaged) {
        Err(StoreError::Invalid { .. }) => {}
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn nonzero_alignment_padding_is_rejected_on_both_paths() {
    // v2 zero-pads each word slab to an 8-byte offset; a nonzero pad
    // byte (checksums fixed up so integrity passes) must be caught by
    // the structural layer on the copying AND the borrow path — the
    // borrow path must never hand out a slab whose canonical alignment
    // was faked.
    let bytes = large_snapshot();
    // Dataset section: dims u32 + n u64 = 12 bytes, then 4 pad bytes
    // before the mask slab.
    let ds_off = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    for pad in 0..4 {
        let mut damaged = bytes.clone();
        damaged[ds_off + 12 + pad] = 0xAB;
        fix_checksums(&mut damaged);
        match decode_engine(&damaged) {
            Err(StoreError::Invalid { .. }) => {}
            other => panic!("pad byte {pad}: expected Invalid, got {other:?}"),
        }
        match decode_engine_shared(&SnapshotBuf::from_bytes(damaged)) {
            Err(StoreError::Invalid { .. }) => {}
            other => panic!("pad byte {pad} (borrowed): expected Invalid, got {other:?}"),
        }
    }
}

#[test]
fn snapshot_buf_tolerates_ragged_lengths() {
    // SnapshotBuf owns buffers of any byte length (the last backing
    // word may be partial); decoding through it must behave exactly
    // like the byte-slice decode for every ragged tail.
    let bytes = small_snapshot();
    for extra in 1..9 {
        let mut padded = bytes.clone();
        padded.extend(std::iter::repeat_n(0u8, extra));
        let buf = SnapshotBuf::from_bytes(padded.clone());
        assert_eq!(buf.bytes(), &padded[..]);
        // Trailing bytes are corruption — both paths agree on the error.
        assert_eq!(
            decode_engine_shared(&buf).unwrap_err(),
            decode_engine(&padded).unwrap_err(),
            "extra={extra}"
        );
    }
}

#[test]
fn loaded_large_snapshot_still_answers() {
    // Sanity companion: the harness's base snapshot is healthy.
    let bytes = large_snapshot();
    let mut engine = decode_engine(&bytes).expect("healthy snapshot");
    let r = engine.query(&EngineQuery::new(5)).expect("BIG supported");
    assert_eq!(r.len(), 5);
}
