//! Borrowed-vs-copied load parity: the zero-copy decode
//! ([`decode_engine_shared`]) must be **bit-identical** — entries,
//! scores, tie order, and re-encoded bytes — to the copying decode
//! ([`decode_engine`]) and to the freshly built engine it snapshots,
//! and a borrowed engine must *stay* correct through the copy-on-write
//! promotion a mutation triggers (load → mutate → compact), ending
//! fully owned.

use proptest::prelude::*;
use tkd_core::dynamic::{CompactionPolicy, DynamicOptions};
use tkd_core::{Algorithm, BinChoice, DynamicEngine, EngineQuery};
use tkd_data::synthetic::{generate, Distribution, SyntheticConfig};
use tkd_model::{Dataset, ObjectId};
use tkd_store::{decode_engine, decode_engine_shared, encode_engine, SnapshotBuf};

fn entries(engine: &mut DynamicEngine, k: usize, alg: Algorithm) -> Vec<(ObjectId, usize)> {
    engine
        .query(&EngineQuery::new(k).algorithm(alg))
        .expect("BIG/IBIG supported")
        .iter()
        .map(|e| (e.id, e.score))
        .collect()
}

fn synthetic(n: usize, dims: usize, missing: f64, seed: u64) -> Dataset {
    generate(&SyntheticConfig {
        n,
        dims,
        cardinality: 25,
        missing_rate: missing,
        distribution: Distribution::Independent,
        seed,
    })
}

/// Pin a borrowed-load engine to the copied-load engine and the fresh
/// engine across an edge-heavy k grid and both algorithms.
fn assert_three_way_parity(fresh: &mut DynamicEngine, tag: &str) {
    let bytes = encode_engine(fresh);
    let mut copied = decode_engine(&bytes).expect("copied load");
    let buf = SnapshotBuf::from_bytes(bytes.clone());
    let mut borrowed = decode_engine_shared(&buf).expect("borrowed load");

    // The borrowed engine really is serving borrowed storage, fully.
    let report = borrowed.storage_report();
    assert!(report.is_borrowed(), "{tag}: load did not borrow");
    assert_eq!(
        report.borrowed_columns, report.total_columns,
        "{tag}: some columns were copied on the zero-copy path"
    );
    assert!(report.dataset_borrowed, "{tag}: dataset slabs were copied");
    // The copied engine owns everything.
    assert!(
        !copied.storage_report().is_borrowed(),
        "{tag}: copied load borrowed"
    );

    let n = fresh.len();
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [0usize, 1, 2, n.saturating_sub(1), n, n + 3] {
            let want = entries(fresh, k, alg);
            assert_eq!(
                entries(&mut copied, k, alg),
                want,
                "{tag}: copied {alg:?} k={k}"
            );
            assert_eq!(
                entries(&mut borrowed, k, alg),
                want,
                "{tag}: borrowed {alg:?} k={k}"
            );
        }
    }
    // Queries promote nothing: the borrowed engine is still borrowed…
    assert!(
        borrowed.storage_report().is_borrowed(),
        "{tag}: queries promoted storage"
    );
    // …and re-encodes to the identical canonical bytes.
    assert_eq!(encode_engine(&mut borrowed), bytes, "{tag}: re-encode");
}

#[test]
fn borrowed_load_matches_copied_load_and_fresh_build() {
    for (n, dims, missing, seed) in [
        (60usize, 3usize, 0.1, 11u64),
        (120, 4, 0.3, 12),
        (200, 5, 0.6, 13),
    ] {
        let mut fresh = DynamicEngine::new(synthetic(n, dims, missing, seed));
        assert_three_way_parity(&mut fresh, &format!("n={n} d={dims} miss={missing}"));
    }
}

#[test]
fn mutation_promotes_and_stays_bit_identical_through_compaction() {
    let mut fresh = DynamicEngine::with_options(
        synthetic(80, 3, 0.3, 21),
        DynamicOptions {
            bins: BinChoice::Fixed(4),
            policy: CompactionPolicy::never(),
        },
    );
    let bytes = encode_engine(&mut fresh);
    let mut copied = decode_engine(&bytes).expect("copied load");
    let buf = SnapshotBuf::from_bytes(bytes);
    let mut borrowed = decode_engine_shared(&buf).expect("borrowed load");
    assert!(borrowed.storage_report().is_borrowed());

    // The same op batch on both engines: inserts, deletes, cell updates —
    // each forcing copy-on-write promotion of the storage it touches.
    let ops: Vec<(&str, usize)> = vec![
        ("insert", 0),
        ("delete", 7),
        ("update", 3),
        ("insert", 0),
        ("delete", 41),
        ("update", 19),
    ];
    for engine in [&mut copied, &mut borrowed] {
        for (op, arg) in &ops {
            match *op {
                "insert" => {
                    engine
                        .insert(&[Some(3.0), None, Some(1.0)])
                        .expect("valid row");
                }
                "delete" => engine.delete(*arg as ObjectId).expect("live id"),
                "update" => engine
                    .update_value(*arg as ObjectId, 1, Some(9.0))
                    .expect("valid update"),
                _ => unreachable!(),
            }
        }
    }
    // Promotion happened and left the two engines bit-identical.
    let mid = borrowed.storage_report();
    assert!(
        mid.borrowed_columns < mid.total_columns || !mid.dataset_borrowed,
        "mutations promoted nothing"
    );
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [1usize, 5, 40, 100] {
            assert_eq!(
                entries(&mut borrowed, k, alg),
                entries(&mut copied, k, alg),
                "post-mutate {alg:?} k={k}"
            );
        }
    }
    // Compaction rebuilds every artifact: nothing borrows the buffer
    // any more (the snapshot can be dropped), parity still holds.
    borrowed.compact_now();
    copied.compact_now();
    let after = borrowed.storage_report();
    assert!(
        !after.is_borrowed(),
        "compaction left borrowed storage: {after:?}"
    );
    assert_eq!(after.borrowed_columns, 0);
    for alg in [Algorithm::Big, Algorithm::Ibig] {
        for k in [1usize, 5, 40, 100] {
            assert_eq!(
                entries(&mut borrowed, k, alg),
                entries(&mut copied, k, alg),
                "post-compact {alg:?} k={k}"
            );
        }
    }
    assert_eq!(
        encode_engine(&mut borrowed),
        encode_engine(&mut copied),
        "post-compact snapshots diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form: arbitrary small datasets round-trip through the
    /// borrow path with full entry/score/tie-order parity against the
    /// copying path, and identical canonical re-encodings.
    #[test]
    fn arbitrary_datasets_borrowed_copied_parity(
        rows in proptest::collection::vec(
            proptest::collection::vec(
                proptest::option::weighted(0.65, (0u8..6).prop_map(f64::from)),
                3,
            )
            .prop_filter("at least one observed", |r| r.iter().any(Option::is_some)),
            1..30,
        ),
        bins in 1usize..6,
        k in 0usize..12,
    ) {
        let ds = Dataset::from_rows(3, &rows).expect("valid rows");
        let mut fresh = DynamicEngine::with_options(
            ds,
            DynamicOptions {
                bins: BinChoice::Fixed(bins),
                policy: CompactionPolicy::default(),
            },
        );
        let bytes = encode_engine(&mut fresh);
        let mut copied = decode_engine(&bytes).expect("copied load");
        let buf = SnapshotBuf::from_bytes(bytes.clone());
        let mut borrowed = decode_engine_shared(&buf).expect("borrowed load");
        prop_assert!(borrowed.storage_report().is_borrowed());
        prop_assert_eq!(encode_engine(&mut borrowed), bytes);
        for alg in [Algorithm::Big, Algorithm::Ibig] {
            prop_assert_eq!(
                entries(&mut borrowed, k, alg),
                entries(&mut copied, k, alg),
                "{:?}", alg
            );
            prop_assert_eq!(
                entries(&mut borrowed, k, alg),
                entries(&mut fresh, k, alg),
                "fresh {:?}", alg
            );
        }
    }
}
