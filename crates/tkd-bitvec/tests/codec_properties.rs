//! Property-based equivalence of the compressed codecs against dense
//! boolean algebra, over adversarial bit patterns.

use proptest::prelude::*;
use tkd_bitvec::{BitVec, CompressedBitmap, Concise, Wah};

/// Random bit vectors biased towards compressible shapes: long runs,
/// sparse bits, block-aligned patterns — the regimes where fill/mixed-fill
/// encodings do real work — plus fully random noise.
fn bitvec_strategy() -> impl Strategy<Value = BitVec> {
    let len = 0usize..600;
    prop_oneof![
        // Uniform random density.
        (len.clone(), 0.0f64..1.0).prop_flat_map(|(n, p)| {
            proptest::collection::vec(proptest::bool::weighted(p.clamp(0.01, 0.99)), n).prop_map(
                move |bits| {
                    let mut b = BitVec::zeros(bits.len());
                    for (i, set) in bits.iter().enumerate() {
                        if *set {
                            b.set(i);
                        }
                    }
                    b
                },
            )
        }),
        // Long homogeneous runs with occasional dirty bits (mixed-fill bait).
        (1usize..20, any::<u64>()).prop_map(|(blocks, seed)| {
            let n = blocks * 31;
            let mut b = if seed % 2 == 0 {
                BitVec::zeros(n)
            } else {
                BitVec::ones(n)
            };
            let mut s = seed;
            for _ in 0..(seed % 4) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i = (s >> 33) as usize % n;
                if seed % 2 == 0 {
                    b.set(i);
                } else {
                    b.clear(i);
                }
            }
            b
        }),
        // Exactly-one-block patterns around the 31-bit boundary.
        (0usize..64).prop_map(|i| BitVec::from_indices(64, [i.min(63)])),
    ]
}

fn paired() -> impl Strategy<Value = (BitVec, BitVec)> {
    bitvec_strategy().prop_flat_map(|a| {
        let n = a.len();
        (Just(a), bitvec_strategy().prop_map(move |b| resize(&b, n)))
    })
}

fn resize(b: &BitVec, n: usize) -> BitVec {
    let mut out = BitVec::zeros(n);
    for i in b.iter_ones() {
        if i < n {
            out.set(i);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wah_roundtrip(b in bitvec_strategy()) {
        let w = Wah::compress(&b);
        prop_assert_eq!(w.decompress(), b.clone());
        prop_assert_eq!(w.count_ones(), b.count_ones());
        prop_assert_eq!(w.len(), b.len());
    }

    #[test]
    fn concise_roundtrip(b in bitvec_strategy()) {
        let c = Concise::compress(&b);
        prop_assert_eq!(c.decompress(), b.clone());
        prop_assert_eq!(c.count_ones(), b.count_ones());
        prop_assert_eq!(c.len(), b.len());
    }

    #[test]
    fn boolean_algebra_matches_dense((a, b) in paired()) {
        let dense_and = a.and(&b);
        let dense_or = a.or(&b);
        let (wa, wb) = (Wah::compress(&a), Wah::compress(&b));
        prop_assert_eq!(wa.and(&wb).decompress(), dense_and.clone());
        prop_assert_eq!(wa.or(&wb).decompress(), dense_or.clone());
        prop_assert_eq!(wa.and_count(&wb), a.and_count(&b));
        let (ca, cb) = (Concise::compress(&a), Concise::compress(&b));
        prop_assert_eq!(ca.and(&cb).decompress(), dense_and);
        prop_assert_eq!(ca.or(&cb).decompress(), dense_or);
        prop_assert_eq!(ca.and_count(&cb), a.and_count(&b));
    }

    #[test]
    fn and_is_commutative_and_idempotent((a, b) in paired()) {
        let (ca, cb) = (Concise::compress(&a), Concise::compress(&b));
        prop_assert_eq!(ca.and(&cb).decompress(), cb.and(&ca).decompress());
        prop_assert_eq!(ca.and(&ca).decompress(), a.clone());
        prop_assert_eq!(ca.or(&ca).decompress(), a);
    }

    #[test]
    fn compression_never_corrupts_operations_chained((a, b) in paired()) {
        // (a AND b) OR a == a, on the compressed forms end to end.
        let (ca, cb) = (Concise::compress(&a), Concise::compress(&b));
        let back = ca.and(&cb).or(&ca);
        prop_assert_eq!(back.decompress(), a);
    }

    #[test]
    fn concise_never_larger_than_wah_plus_slack(b in bitvec_strategy()) {
        // CONCISE's mixed fills strictly generalize WAH's fills; its output
        // can never exceed WAH's word count (both fall back to literals).
        let w = Wah::compress(&b);
        let c = Concise::compress(&b);
        prop_assert!(c.words() <= w.words(), "CONCISE {} > WAH {}", c.words(), w.words());
    }

    #[test]
    fn dense_iter_ones_sorted_unique(b in bitvec_strategy()) {
        let ones: Vec<usize> = b.iter_ones().collect();
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(ones.len(), b.count_ones());
        for i in ones {
            prop_assert!(b.get(i));
        }
    }

    #[test]
    fn subset_and_andnot_relations((a, b) in paired()) {
        let inter = a.and(&b);
        prop_assert!(inter.is_subset_of(&a));
        prop_assert!(inter.is_subset_of(&b));
        let diff = a.and_not(&b);
        prop_assert!(diff.is_subset_of(&a));
        prop_assert_eq!(diff.and_count(&b), 0);
        prop_assert_eq!(diff.count_ones() + inter.count_ones(), a.count_ones());
    }
}
