//! Build-script probe for `std::simd`.
//!
//! The `simd` cargo feature asks for explicit `std::simd` lanes in the
//! popcount kernels, but `std::simd` is still nightly-only. Rather than
//! failing the build on stable, this script test-compiles a snippet that
//! uses exactly the APIs the kernels need (`u64x8`, `SimdUint::count_ones`,
//! `reduce_sum`, `from_slice`) with the same `rustc` cargo is driving, and
//! only emits `cfg(has_portable_simd)` when that compiles. On stable the
//! probe fails (feature gate) and the portable fallback is used, so
//! `--features simd` builds everywhere — a graceful skip, not an error.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const PROBE: &str = r#"
#![feature(portable_simd)]
#![crate_type = "lib"]
use std::simd::{num::SimdUint, u64x8};
pub fn probe(a: &[u64], b: &[u64]) -> u64 {
    let mut acc = u64x8::splat(0);
    if a.len() >= 8 && b.len() >= 8 {
        let t = u64x8::from_slice(&a[..8]) & !u64x8::from_slice(&b[..8]);
        acc += t.count_ones();
    }
    acc.reduce_sum()
}
"#;

fn probe_compiles(out_dir: &Path) -> bool {
    let src = out_dir.join("portable_simd_probe.rs");
    if fs::write(&src, PROBE).is_err() {
        return false;
    }
    let rustc = env::var_os("RUSTC").unwrap_or_else(|| "rustc".into());
    let mut cmd = Command::new(rustc);
    cmd.arg(&src)
        .arg("--emit=metadata")
        .arg("--edition=2021")
        .arg("-o")
        .arg(out_dir.join("portable_simd_probe.out"));
    // Honor a bootstrap/wrapper if cargo set one (e.g. sccache).
    if let Some(wrapper) = env::var_os("RUSTC_WRAPPER") {
        if !wrapper.is_empty() {
            let mut wrapped = Command::new(wrapper);
            wrapped.arg(cmd.get_program());
            for a in cmd.get_args() {
                wrapped.arg(a);
            }
            cmd = wrapped;
        }
    }
    matches!(cmd.output(), Ok(out) if out.status.success())
}

fn main() {
    // Always declare the cfg so `-D warnings` + check-cfg stays clean
    // whether or not the feature is enabled.
    println!("cargo::rustc-check-cfg=cfg(has_portable_simd)");
    println!("cargo::rerun-if-changed=build.rs");
    if env::var_os("CARGO_FEATURE_SIMD").is_none() {
        return;
    }
    let out_dir = PathBuf::from(env::var_os("OUT_DIR").expect("cargo sets OUT_DIR"));
    if probe_compiles(&out_dir) {
        println!("cargo::rustc-cfg=has_portable_simd");
    }
}
