//! Borrowed-or-owned word storage for zero-copy snapshot loads.
//!
//! A snapshot is one contiguous, 8-aligned buffer. Loading it the obvious
//! way copies every column's words into a fresh `Vec<u64>` — O(bytes) work
//! that dominates cold start. [`SharedWords`] instead is a checked range
//! view into one shared `Arc<[u64]>` backing buffer, and [`Words`] is the
//! `Cow`-like storage enum that lets a `BitVec` (or a dataset slab) either
//! own its words or borrow them from that buffer, promoting to owned the
//! first time it is mutated.
//!
//! The `Arc` (rather than a lifetime) keeps loaded engines `'static` and
//! cheap to share across query workers; the buffer is freed when the last
//! borrower is dropped or promoted.

use std::sync::Arc;

/// A checked sub-range of a shared, 8-aligned word buffer.
///
/// Equality compares the viewed words, not buffer identity.
#[derive(Clone)]
pub struct SharedWords {
    buf: Arc<[u64]>,
    start: usize,
    len: usize,
}

impl SharedWords {
    /// View `buf[start .. start + len]`. Returns `None` if the range is
    /// out of bounds (callers translate that into their own typed error).
    pub fn new(buf: Arc<[u64]>, start: usize, len: usize) -> Option<Self> {
        let end = start.checked_add(len)?;
        if end > buf.len() {
            return None;
        }
        Some(SharedWords { buf, start, len })
    }

    /// The viewed words.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.buf[self.start..self.start + self.len]
    }

    /// The viewed words reinterpreted as IEEE-754 doubles — the dataset
    /// value slab is stored as raw `f64` bit patterns in snapshot files.
    #[inline]
    pub fn as_f64s(&self) -> &[f64] {
        let w = self.as_words();
        // SAFETY: u64 and f64 have identical size and alignment, and every
        // 64-bit pattern is a valid f64 (NaN payloads included). The view
        // borrows `self`, so the backing Arc outlives it.
        unsafe { std::slice::from_raw_parts(w.as_ptr().cast::<f64>(), w.len()) }
    }

    /// Number of words in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the view empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for SharedWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedWords[{}..{} of {}]",
            self.start,
            self.start + self.len,
            self.buf.len()
        )
    }
}

impl PartialEq for SharedWords {
    fn eq(&self, other: &Self) -> bool {
        self.as_words() == other.as_words()
    }
}

impl Eq for SharedWords {}

/// `Cow`-like word storage: either an owned `Vec<u64>` or a borrowed view
/// of a shared snapshot buffer.
///
/// All reads go through [`Words::as_slice`]; the first mutation goes
/// through [`Words::to_mut`], which promotes a shared view to an owned
/// copy (copy-on-write). Equality and hashing are over the logical word
/// sequence, so a borrowed and an owned storage with the same words are
/// interchangeable.
#[derive(Clone, Debug)]
pub enum Words {
    /// Heap-owned storage — the only variant that can be mutated in place.
    Owned(Vec<u64>),
    /// Borrowed view of a shared snapshot buffer.
    Shared(SharedWords),
}

impl Words {
    /// The stored words.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            Words::Owned(v) => v,
            Words::Shared(s) => s.as_words(),
        }
    }

    /// Does this storage borrow a shared snapshot buffer?
    #[inline]
    pub fn is_shared(&self) -> bool {
        matches!(self, Words::Shared(_))
    }

    /// Number of words.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Words::Owned(v) => v.len(),
            Words::Shared(s) => s.len(),
        }
    }

    /// Is the storage empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable access, promoting a shared view to an owned copy first
    /// (the copy-on-write step). After this call the storage is `Owned`.
    #[inline]
    pub fn to_mut(&mut self) -> &mut Vec<u64> {
        if let Words::Shared(s) = self {
            *self = Words::Owned(s.as_words().to_vec());
        }
        match self {
            Words::Owned(v) => v,
            // Just replaced above.
            Words::Shared(_) => unreachable!("shared storage survived promotion"),
        }
    }
}

impl From<Vec<u64>> for Words {
    fn from(v: Vec<u64>) -> Self {
        Words::Owned(v)
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Words {}

impl std::hash::Hash for Words {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backing(n: usize) -> Arc<[u64]> {
        (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect()
    }

    #[test]
    fn shared_view_is_bounds_checked() {
        let buf = backing(10);
        assert!(SharedWords::new(buf.clone(), 0, 10).is_some());
        assert!(SharedWords::new(buf.clone(), 10, 0).is_some());
        assert!(SharedWords::new(buf.clone(), 3, 7).is_some());
        assert!(SharedWords::new(buf.clone(), 3, 8).is_none());
        assert!(SharedWords::new(buf.clone(), 11, 0).is_none());
        assert!(SharedWords::new(buf, usize::MAX, 2).is_none());
    }

    #[test]
    fn shared_view_reads_the_range() {
        let buf = backing(8);
        let s = SharedWords::new(buf.clone(), 2, 3).unwrap();
        assert_eq!(s.as_words(), &buf[2..5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_f64s().len(), 3);
        assert_eq!(s.as_f64s()[1].to_bits(), buf[3]);
    }

    #[test]
    fn promotion_copies_once_and_detaches() {
        let buf = backing(4);
        let mut w = Words::Shared(SharedWords::new(buf.clone(), 0, 4).unwrap());
        assert!(w.is_shared());
        assert_eq!(w.as_slice(), &buf[..]);
        w.to_mut()[0] = 999;
        assert!(!w.is_shared());
        assert_eq!(w.as_slice()[0], 999);
        // The backing buffer is untouched.
        assert_eq!(buf[0], 0);
        // Further mutation does not re-copy (already owned).
        w.to_mut().push(1);
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn equality_and_hash_ignore_storage_variant() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let buf = backing(6);
        let shared = Words::Shared(SharedWords::new(buf.clone(), 1, 4).unwrap());
        let owned = Words::Owned(buf[1..5].to_vec());
        assert_eq!(shared, owned);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        shared.hash(&mut h1);
        owned.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
