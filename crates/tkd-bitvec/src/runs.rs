//! Shared run-level machinery for the compressed codecs.
//!
//! Both WAH and CONCISE segment a bit vector into **31-bit blocks** and
//! represent maximal runs of all-zero / all-one blocks as *fill* words and
//! everything else as *literal* words. This module provides the common
//! block segmentation, a run-stream abstraction, and generic run-merge
//! algorithms (AND, OR, popcount) that both codecs reuse — the codecs then
//! only differ in their 32-bit word encodings.

use crate::BitVec;

/// Number of payload bits per compressed block (both codecs use 31, leaving
/// one bit of each 32-bit word as a tag).
pub const BLOCK_BITS: usize = 31;

/// Mask of a full 31-bit block.
pub const BLOCK_MASK: u32 = (1 << BLOCK_BITS) - 1;

/// A maximal homogeneous piece of a bit vector, in block units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Run {
    /// `blocks` consecutive blocks that are all-zero (`ones = false`) or
    /// all-one (`ones = true`).
    Fill {
        /// Fill bit value.
        ones: bool,
        /// Number of consecutive 31-bit blocks, `>= 1`.
        blocks: u64,
    },
    /// One block with mixed content (the 31 payload bits, low-aligned).
    Literal(u32),
}

/// Split a dense bit vector into 31-bit blocks, low bits first. The final
/// block is zero-padded.
pub fn blocks_of(bits: &BitVec) -> Vec<u32> {
    let nblocks = bits.len().div_ceil(BLOCK_BITS);
    let words = bits.as_words();
    let mut out = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let start = b * BLOCK_BITS;
        let w = start / 64;
        let off = start % 64;
        let mut v = (words[w] >> off) as u128;
        if off + BLOCK_BITS > 64 && w + 1 < words.len() {
            v |= (words[w + 1] as u128) << (64 - off);
        }
        out.push((v as u32) & BLOCK_MASK);
    }
    out
}

/// Reassemble a dense bit vector of logical length `len` from 31-bit blocks
/// (test oracle for the word-level [`decompress_runs_into`]).
///
/// # Panics
/// Panics if the blocks cover fewer bits than `len`.
#[cfg(test)]
pub fn bits_from_blocks(blocks: &[u32], len: usize) -> BitVec {
    assert!(
        blocks.len() * BLOCK_BITS >= len,
        "not enough blocks for {len} bits"
    );
    let mut out = BitVec::zeros(len);
    for (b, &blk) in blocks.iter().enumerate() {
        let mut v = blk;
        while v != 0 {
            let bit = v.trailing_zeros() as usize;
            v &= v - 1;
            let idx = b * BLOCK_BITS + bit;
            if idx < len {
                out.set(idx);
            }
        }
    }
    out
}

/// Turn a block sequence into maximal runs.
pub fn runs_from_blocks(blocks: &[u32]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for &blk in blocks {
        let this = match blk {
            0 => Run::Fill {
                ones: false,
                blocks: 1,
            },
            BLOCK_MASK => Run::Fill {
                ones: true,
                blocks: 1,
            },
            other => Run::Literal(other),
        };
        match (out.last_mut(), this) {
            (Some(Run::Fill { ones: a, blocks: n }), Run::Fill { ones: b, blocks: 1 })
                if *a == b =>
            {
                *n += 1
            }
            (_, run) => out.push(run),
        }
    }
    out
}

/// A consumable stream of runs with partial-run consumption, used by the
/// merge algorithms.
pub struct RunStream<I: Iterator<Item = Run>> {
    iter: I,
    /// Current run with its remaining block count.
    head: Option<Run>,
}

impl<I: Iterator<Item = Run>> RunStream<I> {
    /// Wrap an iterator of runs.
    pub fn new(iter: I) -> Self {
        let mut s = RunStream { iter, head: None };
        s.refill();
        s
    }

    fn refill(&mut self) {
        if self.head.is_none() {
            self.head = self.iter.next();
        }
    }

    /// Remaining blocks of the current head run (0 when exhausted).
    pub fn head_blocks(&self) -> u64 {
        match self.head {
            Some(Run::Fill { blocks, .. }) => blocks,
            Some(Run::Literal(_)) => 1,
            None => 0,
        }
    }

    /// Current head run, if any.
    pub fn head(&self) -> Option<Run> {
        self.head
    }

    /// Consume `n` blocks from the head run (`n` must not exceed
    /// [`RunStream::head_blocks`]).
    pub fn consume(&mut self, n: u64) {
        match &mut self.head {
            Some(Run::Fill { blocks, .. }) => {
                debug_assert!(n <= *blocks);
                *blocks -= n;
                if *blocks == 0 {
                    self.head = None;
                }
            }
            Some(Run::Literal(_)) => {
                debug_assert_eq!(n, 1);
                self.head = None;
            }
            None => debug_assert_eq!(n, 0),
        }
        self.refill();
    }
}

/// A sink that accumulates runs, merging adjacent compatible fills.
#[derive(Default)]
pub struct RunBuf {
    runs: Vec<Run>,
}

impl RunBuf {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a run, canonicalizing (literal 0 / literal all-ones become
    /// fills; adjacent same-bit fills merge).
    pub fn push(&mut self, run: Run) {
        let run = match run {
            Run::Literal(0) => Run::Fill {
                ones: false,
                blocks: 1,
            },
            Run::Literal(BLOCK_MASK) => Run::Fill {
                ones: true,
                blocks: 1,
            },
            r => r,
        };
        match (self.runs.last_mut(), run) {
            (Some(Run::Fill { ones: a, blocks: n }), Run::Fill { ones: b, blocks: m })
                if *a == b =>
            {
                *n += m;
            }
            (_, r) => self.runs.push(r),
        }
    }

    /// The accumulated runs.
    pub fn into_runs(self) -> Vec<Run> {
        self.runs
    }
}

/// Set bits `[start, end)` in a word array.
fn set_bit_range(words: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (sw, sb) = (start / 64, start % 64);
    let (ew, eb) = (end / 64, end % 64);
    if sw == ew {
        words[sw] |= ((1u64 << (eb - sb)) - 1) << sb;
    } else {
        words[sw] |= !0u64 << sb;
        for w in words.iter_mut().take(ew).skip(sw + 1) {
            *w = !0;
        }
        if eb > 0 {
            words[ew] |= (1u64 << eb) - 1;
        }
    }
}

/// Clear bits `[start, end)` in a word array.
fn clear_bit_range(words: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (sw, sb) = (start / 64, start % 64);
    let (ew, eb) = (end / 64, end % 64);
    if sw == ew {
        words[sw] &= !(((1u64 << (eb - sb)) - 1) << sb);
    } else {
        words[sw] &= !(!0u64 << sb);
        for w in words.iter_mut().take(ew).skip(sw + 1) {
            *w = 0;
        }
        if eb > 0 {
            words[ew] &= !((1u64 << eb) - 1);
        }
    }
}

/// Decompress a run stream into a caller-owned dense buffer, entirely at
/// word level. `dst`'s previous contents are overwritten; runs beyond
/// `dst.len()` (final-block padding) are clipped.
pub fn decompress_runs_into(runs: impl Iterator<Item = Run>, dst: &mut BitVec) {
    let len = dst.len();
    let words = dst.words_mut();
    words.fill(0);
    let total_bits = words.len() * 64;
    let mut bit = 0usize;
    for run in runs {
        match run {
            Run::Fill { ones, blocks } => {
                let nbits = blocks as usize * BLOCK_BITS;
                if ones {
                    set_bit_range(words, bit.min(total_bits), (bit + nbits).min(total_bits));
                }
                bit += nbits;
            }
            Run::Literal(x) => {
                if bit < total_bits {
                    let w = bit / 64;
                    let off = bit % 64;
                    words[w] |= (x as u64) << off;
                    if off + BLOCK_BITS > 64 && w + 1 < words.len() {
                        words[w + 1] |= (x as u64) >> (64 - off);
                    }
                }
                bit += BLOCK_BITS;
            }
        }
    }
    debug_assert!(bit >= len, "run stream covers only {bit} of {len} bits");
    dst.fix_tail();
}

/// AND a run stream into a dense buffer in place (`dst &= runs`), without
/// materializing the compressed side — the hot kernel behind
/// `CompressedColumns::and_selected_into`. One-fills touch nothing,
/// zero-fills clear whole word spans, literals AND a 31-bit window.
pub fn and_runs_into_dense(runs: impl Iterator<Item = Run>, dst: &mut BitVec) {
    let len = dst.len();
    let words = dst.words_mut();
    let total_bits = words.len() * 64;
    let mut bit = 0usize;
    for run in runs {
        match run {
            Run::Fill { ones: true, blocks } => bit += blocks as usize * BLOCK_BITS,
            Run::Fill {
                ones: false,
                blocks,
            } => {
                let nbits = blocks as usize * BLOCK_BITS;
                clear_bit_range(words, bit.min(total_bits), (bit + nbits).min(total_bits));
                bit += nbits;
            }
            Run::Literal(x) => {
                if bit < total_bits {
                    let inv = (!x as u64) & BLOCK_MASK as u64;
                    let w = bit / 64;
                    let off = bit % 64;
                    words[w] &= !(inv << off);
                    if off + BLOCK_BITS > 64 && w + 1 < words.len() {
                        words[w + 1] &= !(inv >> (64 - off));
                    }
                }
                bit += BLOCK_BITS;
            }
        }
    }
    debug_assert!(bit >= len, "run stream covers only {bit} of {len} bits");
}

/// Generic binary merge of two equal-length run streams.
///
/// `lit_op` combines two literal blocks; `fill_short_circuit` says, for a
/// fill with the given bit on one side, whether the output over the overlap
/// is a fill of a known bit (`Some(bit)`) or a copy of the other side
/// (`None`). For AND: zero-fill → `Some(false)`, one-fill → `None`. For OR:
/// one-fill → `Some(true)`, zero-fill → `None`.
fn merge<A, B>(
    a: RunStream<A>,
    b: RunStream<B>,
    lit_op: impl Fn(u32, u32) -> u32,
    fill_short_circuit: impl Fn(bool) -> Option<bool>,
) -> Vec<Run>
where
    A: Iterator<Item = Run>,
    B: Iterator<Item = Run>,
{
    let mut a = a;
    let mut b = b;
    let mut out = RunBuf::new();
    loop {
        let (ha, hb) = (a.head(), b.head());
        let (ha, hb) = match (ha, hb) {
            (None, None) => break,
            (Some(x), Some(y)) => (x, y),
            _ => panic!("run streams of unequal length"),
        };
        let take = a.head_blocks().min(b.head_blocks());
        debug_assert!(take >= 1);
        match (ha, hb) {
            (Run::Literal(x), Run::Literal(y)) => {
                out.push(Run::Literal(lit_op(x, y) & BLOCK_MASK));
                a.consume(1);
                b.consume(1);
            }
            (Run::Fill { ones, .. }, other) => {
                match fill_short_circuit(ones) {
                    Some(bit) => {
                        out.push(Run::Fill {
                            ones: bit,
                            blocks: take,
                        });
                        a.consume(take);
                        b.consume(take);
                    }
                    None => {
                        // Output copies the other side over the overlap.
                        match other {
                            Run::Literal(y) => {
                                out.push(Run::Literal(y));
                                a.consume(1);
                                b.consume(1);
                            }
                            Run::Fill { ones: ob, .. } => {
                                out.push(Run::Fill {
                                    ones: ob,
                                    blocks: take,
                                });
                                a.consume(take);
                                b.consume(take);
                            }
                        }
                    }
                }
            }
            (Run::Literal(x), Run::Fill { ones, .. }) => match fill_short_circuit(ones) {
                Some(bit) => {
                    out.push(Run::Fill {
                        ones: bit,
                        blocks: take,
                    });
                    a.consume(take);
                    b.consume(take);
                }
                None => {
                    out.push(Run::Literal(x));
                    a.consume(1);
                    b.consume(1);
                }
            },
        }
    }
    out.into_runs()
}

/// AND of two equal-length run streams.
pub fn and_runs<A, B>(a: RunStream<A>, b: RunStream<B>) -> Vec<Run>
where
    A: Iterator<Item = Run>,
    B: Iterator<Item = Run>,
{
    merge(
        a,
        b,
        |x, y| x & y,
        |ones| if ones { None } else { Some(false) },
    )
}

/// OR of two equal-length run streams.
pub fn or_runs<A, B>(a: RunStream<A>, b: RunStream<B>) -> Vec<Run>
where
    A: Iterator<Item = Run>,
    B: Iterator<Item = Run>,
{
    merge(
        a,
        b,
        |x, y| x | y,
        |ones| if ones { Some(true) } else { None },
    )
}

/// Popcount of a run stream, with the final block's padding excluded
/// (`len` is the logical bit length).
pub fn count_ones_runs<I: Iterator<Item = Run>>(runs: I, len: usize) -> usize {
    let mut total: usize = 0;
    let mut bit_pos: usize = 0;
    for run in runs {
        match run {
            Run::Fill { ones, blocks } => {
                let nbits = blocks as usize * BLOCK_BITS;
                if ones {
                    // Clip the final fill to the logical length.
                    let end = (bit_pos + nbits).min(len);
                    total += end.saturating_sub(bit_pos);
                }
                bit_pos += nbits;
            }
            Run::Literal(x) => {
                total += x.count_ones() as usize;
                bit_pos += BLOCK_BITS;
            }
        }
    }
    total
}

/// Popcount of the AND of two run streams without materializing it.
pub fn and_count_runs<A, B>(a: RunStream<A>, b: RunStream<B>, len: usize) -> usize
where
    A: Iterator<Item = Run>,
    B: Iterator<Item = Run>,
{
    let mut a = a;
    let mut b = b;
    let mut total = 0usize;
    let mut bit_pos = 0usize;
    loop {
        let (ha, hb) = match (a.head(), b.head()) {
            (None, None) => break,
            (Some(x), Some(y)) => (x, y),
            _ => panic!("run streams of unequal length"),
        };
        let take = a.head_blocks().min(b.head_blocks());
        match (ha, hb) {
            (Run::Fill { ones: false, .. }, _) | (_, Run::Fill { ones: false, .. }) => {
                bit_pos += take as usize * BLOCK_BITS;
                a.consume(take);
                b.consume(take);
            }
            (Run::Fill { ones: true, .. }, Run::Fill { ones: true, .. }) => {
                let nbits = take as usize * BLOCK_BITS;
                let end = (bit_pos + nbits).min(len);
                total += end.saturating_sub(bit_pos);
                bit_pos += nbits;
                a.consume(take);
                b.consume(take);
            }
            (Run::Fill { ones: true, .. }, Run::Literal(y)) => {
                total += y.count_ones() as usize;
                bit_pos += BLOCK_BITS;
                a.consume(1);
                b.consume(1);
            }
            (Run::Literal(x), Run::Fill { ones: true, .. }) => {
                total += x.count_ones() as usize;
                bit_pos += BLOCK_BITS;
                a.consume(1);
                b.consume(1);
            }
            (Run::Literal(x), Run::Literal(y)) => {
                total += (x & y).count_ones() as usize;
                bit_pos += BLOCK_BITS;
                a.consume(1);
                b.consume(1);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(bits: &BitVec) -> Vec<Run> {
        runs_from_blocks(&blocks_of(bits))
    }

    #[test]
    fn blocks_roundtrip() {
        let mut b = BitVec::zeros(100);
        for i in [0, 30, 31, 61, 62, 63, 64, 99] {
            b.set(i);
        }
        let blocks = blocks_of(&b);
        assert_eq!(blocks.len(), 4); // ceil(100/31)
        assert_eq!(bits_from_blocks(&blocks, 100), b);
    }

    #[test]
    fn blocks_of_ones_are_full() {
        let b = BitVec::ones(62);
        let blocks = blocks_of(&b);
        assert_eq!(blocks, vec![BLOCK_MASK, BLOCK_MASK]);
    }

    #[test]
    fn runs_merge_adjacent_fills() {
        let b = BitVec::zeros(31 * 5);
        let runs = rt(&b);
        assert_eq!(
            runs,
            vec![Run::Fill {
                ones: false,
                blocks: 5
            }]
        );
        let b = BitVec::ones(31 * 3);
        assert_eq!(
            rt(&b),
            vec![Run::Fill {
                ones: true,
                blocks: 3
            }]
        );
    }

    #[test]
    fn runs_literal_between_fills() {
        let mut b = BitVec::zeros(31 * 3);
        b.set(31 + 4); // middle block mixed
        let runs = rt(&b);
        assert_eq!(
            runs,
            vec![
                Run::Fill {
                    ones: false,
                    blocks: 1
                },
                Run::Literal(1 << 4),
                Run::Fill {
                    ones: false,
                    blocks: 1
                },
            ]
        );
    }

    #[test]
    fn and_or_match_dense() {
        let a = BitVec::from_indices(200, (0..200).step_by(3));
        let b = BitVec::from_indices(200, (0..200).step_by(5));
        let and = and_runs(
            RunStream::new(rt(&a).into_iter()),
            RunStream::new(rt(&b).into_iter()),
        );
        let or = or_runs(
            RunStream::new(rt(&a).into_iter()),
            RunStream::new(rt(&b).into_iter()),
        );
        let nblocks = 200usize.div_ceil(BLOCK_BITS);
        let expand = |runs: Vec<Run>| {
            let mut blocks = Vec::new();
            for r in runs {
                match r {
                    Run::Fill { ones, blocks: n } => blocks.extend(std::iter::repeat_n(
                        if ones { BLOCK_MASK } else { 0 },
                        n as usize,
                    )),
                    Run::Literal(x) => blocks.push(x),
                }
            }
            assert_eq!(blocks.len(), nblocks);
            bits_from_blocks(&blocks, 200)
        };
        assert_eq!(expand(and), a.and(&b));
        assert_eq!(expand(or), a.or(&b));
    }

    #[test]
    fn count_ones_clips_padding() {
        // 40 bits of ones: blocks = [ones, literal(9 ones)] but runs_from_
        // blocks sees the second block as literal; count must be exactly 40.
        let b = BitVec::ones(40);
        assert_eq!(count_ones_runs(rt(&b).into_iter(), 40), 40);
        // All-ones multiple of 31 with padding beyond len: force fill run
        // longer than len.
        let runs = vec![Run::Fill {
            ones: true,
            blocks: 2,
        }];
        assert_eq!(count_ones_runs(runs.into_iter(), 40), 40);
    }

    #[test]
    fn and_count_matches_dense() {
        let a = BitVec::from_indices(500, (0..500).step_by(2));
        let b = BitVec::from_indices(500, (0..500).step_by(7));
        let got = and_count_runs(
            RunStream::new(rt(&a).into_iter()),
            RunStream::new(rt(&b).into_iter()),
            500,
        );
        assert_eq!(got, a.and_count(&b));
    }

    #[test]
    fn decompress_into_matches_bits_from_blocks() {
        for len in [0usize, 1, 31, 40, 62, 64, 93, 100, 200, 500] {
            let mut b = BitVec::zeros(len);
            for i in (0..len).step_by(3) {
                b.set(i);
            }
            let mut dst = BitVec::ones(len); // stale contents
            decompress_runs_into(rt(&b).into_iter(), &mut dst);
            assert_eq!(dst, b, "len {len}");
        }
        // Long fills (both polarities) spanning many words.
        let ones = BitVec::ones(400);
        let mut dst = BitVec::zeros(400);
        decompress_runs_into(rt(&ones).into_iter(), &mut dst);
        assert_eq!(dst, ones);
    }

    #[test]
    fn and_into_dense_matches_dense_and() {
        for len in [1usize, 31, 64, 93, 200, 500] {
            let a = BitVec::from_indices(len, (0..len).step_by(2));
            let mut sparse = BitVec::zeros(len);
            if len > 40 {
                sparse.set(40);
            }
            for other in [BitVec::ones(len), BitVec::zeros(len), sparse, a.clone()] {
                let mut dst = a.clone();
                and_runs_into_dense(rt(&other).into_iter(), &mut dst);
                assert_eq!(dst, a.and(&other), "len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unequal length")]
    fn merge_rejects_unequal_streams() {
        let a = vec![Run::Fill {
            ones: false,
            blocks: 2,
        }];
        let b = vec![Run::Fill {
            ones: false,
            blocks: 1,
        }];
        let _ = and_runs(RunStream::new(a.into_iter()), RunStream::new(b.into_iter()));
    }

    #[test]
    fn runbuf_canonicalizes() {
        let mut buf = RunBuf::new();
        buf.push(Run::Literal(0));
        buf.push(Run::Fill {
            ones: false,
            blocks: 3,
        });
        buf.push(Run::Literal(BLOCK_MASK));
        buf.push(Run::Fill {
            ones: true,
            blocks: 1,
        });
        let runs = buf.into_runs();
        assert_eq!(
            runs,
            vec![
                Run::Fill {
                    ones: false,
                    blocks: 4
                },
                Run::Fill {
                    ones: true,
                    blocks: 2
                },
            ]
        );
    }

    #[test]
    fn runstream_partial_consumption() {
        let runs = vec![
            Run::Fill {
                ones: true,
                blocks: 5,
            },
            Run::Literal(7),
        ];
        let mut s = RunStream::new(runs.into_iter());
        assert_eq!(s.head_blocks(), 5);
        s.consume(2);
        assert_eq!(s.head_blocks(), 3);
        s.consume(3);
        assert_eq!(s.head(), Some(Run::Literal(7)));
        s.consume(1);
        assert_eq!(s.head(), None);
        assert_eq!(s.head_blocks(), 0);
    }
}
