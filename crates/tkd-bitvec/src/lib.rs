//! Bitmap substrate for the TKD reproduction: a dense 64-bit-word bit
//! vector plus the two compressed bitmap codecs evaluated in the paper,
//! **WAH** (Word-Aligned Hybrid, Wu et al., SSDBM 2002) and **CONCISE**
//! (Colantonio & Di Pietro, IPL 2010).
//!
//! The vertical bit-vectors of the paper's bitmap index (`[Qi]`, `[Pi]` in
//! §4.3) are [`BitVec`]s; the IBIG algorithm (§4.4) stores them compressed
//! with either codec behind the [`CompressedBitmap`] trait and performs the
//! `Q = ∩ Qi` / `P = ∩ Pi` intersections directly on the compressed form.
//!
//! # Example
//!
//! ```
//! use tkd_bitvec::{BitVec, Concise, Wah, CompressedBitmap};
//!
//! let mut a = BitVec::zeros(100);
//! a.set(3); a.set(64); a.set(99);
//! let c = Concise::compress(&a);
//! let w = Wah::compress(&a);
//! assert_eq!(c.decompress(), a);
//! assert_eq!(w.decompress(), a);
//! assert_eq!(c.count_ones(), 3);
//! ```

#![warn(missing_docs)]
#![cfg_attr(has_portable_simd, feature(portable_simd))]

mod concise;
mod dense;
mod hash;
pub mod kernels;
mod runs;
mod tombstones;
mod wah;
mod words;

pub use concise::Concise;
pub use dense::{AndNotOnes, BitSlice, BitVec, Ones};
pub use hash::fnv64;
pub use runs::{Run, BLOCK_BITS};
pub use tombstones::Tombstones;
pub use wah::Wah;
pub use words::{SharedWords, Words};

/// Common interface of the compressed bitmap codecs (WAH and CONCISE).
///
/// All codecs compress the same logical object — a fixed-length bit vector —
/// into a sequence of 32-bit words, and support bitwise AND/OR plus
/// population count without decompressing.
pub trait CompressedBitmap: Sized + Clone {
    /// Compress a dense bit vector.
    fn compress(bits: &BitVec) -> Self;

    /// Decompress back to a dense bit vector.
    fn decompress(&self) -> BitVec;

    /// Decompress into a caller-owned dense buffer without allocating —
    /// the scratch-space entry point of the IBIG query path.
    ///
    /// # Panics
    /// Panics if `dst.len() != self.len()`.
    fn decompress_into(&self, dst: &mut BitVec);

    /// AND this compressed bitmap into a dense buffer in place
    /// (`dst &= self`), directly off the run stream: one-fills are skipped,
    /// zero-fills clear word spans, literals AND a 31-bit window. No
    /// allocation on either side.
    ///
    /// # Panics
    /// Panics if `dst.len() != self.len()`.
    fn and_dense(&self, dst: &mut BitVec);

    /// Logical length in bits.
    fn len(&self) -> usize;

    /// Is the logical length zero?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of 32-bit words of compressed payload.
    fn words(&self) -> usize;

    /// Compressed size in bytes.
    fn size_bytes(&self) -> usize {
        self.words() * 4
    }

    /// Number of set bits (computed on the compressed form).
    fn count_ones(&self) -> usize;

    /// Bitwise AND, producing a compressed result.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    fn and(&self, other: &Self) -> Self;

    /// Bitwise OR, producing a compressed result.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    fn or(&self, other: &Self) -> Self;

    /// Population count of `self AND other` without materializing the
    /// intersection (hot path of `MaxBitScore`).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    fn and_count(&self, other: &Self) -> usize;

    /// Compression ratio: compressed bytes over dense bytes (`> 1` means the
    /// "compressed" form is larger, which the paper observes for NBA).
    fn compression_ratio(&self) -> f64 {
        let dense_bytes = self.len().div_ceil(8);
        if dense_bytes == 0 {
            return 1.0;
        }
        self.size_bytes() as f64 / dense_bytes as f64
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn sample() -> BitVec {
        let mut b = BitVec::zeros(200);
        for i in (0..200).step_by(7) {
            b.set(i);
        }
        b
    }

    #[test]
    fn ratio_uses_dense_baseline() {
        let b = sample();
        let c = Concise::compress(&b);
        let dense_bytes = 200usize.div_ceil(8);
        assert!((c.compression_ratio() - c.size_bytes() as f64 / dense_bytes as f64).abs() < 1e-12);
    }

    #[test]
    fn empty_bitmaps() {
        let b = BitVec::zeros(0);
        let c = Concise::compress(&b);
        let w = Wah::compress(&b);
        assert!(c.is_empty());
        assert!(w.is_empty());
        assert_eq!(c.count_ones(), 0);
        assert_eq!(w.count_ones(), 0);
        assert_eq!(c.compression_ratio(), 1.0);
    }
}
