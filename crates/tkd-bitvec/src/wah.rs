//! WAH — the Word-Aligned Hybrid compressed bitmap (Wu, Otoo, Shoshani,
//! SSDBM 2002), one of the two codecs the paper evaluates for IBIG (Fig. 10).
//!
//! 32-bit word layout:
//!
//! * **literal** — bit 31 = 0, bits 0..30 hold one 31-bit block verbatim;
//! * **fill** — bit 31 = 1, bit 30 = fill bit, bits 0..29 count the number
//!   of consecutive all-zero / all-one 31-bit blocks.

use crate::runs::{
    and_count_runs, and_runs, and_runs_into_dense, blocks_of, count_ones_runs,
    decompress_runs_into, or_runs, runs_from_blocks, Run, RunStream, BLOCK_MASK,
};
use crate::{BitVec, CompressedBitmap};

const FILL_FLAG: u32 = 1 << 31;
const FILL_BIT: u32 = 1 << 30;
const MAX_FILL_BLOCKS: u64 = (1 << 30) - 1;

/// A WAH-compressed bitmap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wah {
    words: Vec<u32>,
    len: usize,
}

impl Wah {
    /// Build from a run sequence (must cover `ceil(len / 31)` blocks).
    fn from_runs(runs: impl IntoIterator<Item = Run>, len: usize) -> Self {
        let mut words = Vec::new();
        for run in runs {
            match run {
                Run::Literal(x) => words.push(x & BLOCK_MASK),
                Run::Fill { ones, mut blocks } => {
                    while blocks > 0 {
                        let chunk = blocks.min(MAX_FILL_BLOCKS);
                        let mut w = FILL_FLAG | chunk as u32;
                        if ones {
                            w |= FILL_BIT;
                        }
                        words.push(w);
                        blocks -= chunk;
                    }
                }
            }
        }
        Wah { words, len }
    }

    /// Iterate the runs encoded in this bitmap.
    pub fn runs(&self) -> impl Iterator<Item = Run> + '_ {
        self.words.iter().map(|&w| {
            if w & FILL_FLAG != 0 {
                Run::Fill {
                    ones: w & FILL_BIT != 0,
                    blocks: (w & !(FILL_FLAG | FILL_BIT)) as u64,
                }
            } else {
                Run::Literal(w & BLOCK_MASK)
            }
        })
    }

    /// Raw encoded words (for storage accounting).
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }
}

impl CompressedBitmap for Wah {
    fn compress(bits: &BitVec) -> Self {
        Wah::from_runs(runs_from_blocks(&blocks_of(bits)), bits.len())
    }

    fn decompress(&self) -> BitVec {
        let mut dst = BitVec::zeros(self.len);
        decompress_runs_into(self.runs(), &mut dst);
        dst
    }

    fn decompress_into(&self, dst: &mut BitVec) {
        assert_eq!(dst.len(), self.len, "length mismatch");
        decompress_runs_into(self.runs(), dst);
    }

    fn and_dense(&self, dst: &mut BitVec) {
        assert_eq!(dst.len(), self.len, "length mismatch");
        and_runs_into_dense(self.runs(), dst);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn words(&self) -> usize {
        self.words.len()
    }

    fn count_ones(&self) -> usize {
        count_ones_runs(self.runs(), self.len)
    }

    fn and(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch");
        let merged = and_runs(RunStream::new(self.runs()), RunStream::new(other.runs()));
        Wah::from_runs(merged, self.len)
    }

    fn or(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch");
        let merged = or_runs(RunStream::new(self.runs()), RunStream::new(other.runs()));
        Wah::from_runs(merged, self.len)
    }

    fn and_count(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        and_count_runs(
            RunStream::new(self.runs()),
            RunStream::new(other.runs()),
            self.len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::BLOCK_BITS;

    fn patterned(len: usize, step: usize) -> BitVec {
        BitVec::from_indices(len, (0..len).step_by(step))
    }

    #[test]
    fn roundtrip_patterns() {
        for len in [0, 1, 30, 31, 32, 62, 100, 1000] {
            for step in [1, 2, 31, 63] {
                let b = patterned(len, step.max(1));
                let w = Wah::compress(&b);
                assert_eq!(w.decompress(), b, "len={len} step={step}");
                assert_eq!(w.count_ones(), b.count_ones(), "len={len} step={step}");
            }
        }
    }

    #[test]
    fn all_ones_compresses_to_one_word() {
        let b = BitVec::ones(31 * 1000);
        let w = Wah::compress(&b);
        assert_eq!(w.words(), 1);
        assert_eq!(w.count_ones(), 31 * 1000);
    }

    #[test]
    fn all_zeros_compresses_to_one_word() {
        let b = BitVec::zeros(31 * 1000);
        let w = Wah::compress(&b);
        assert_eq!(w.words(), 1);
        assert_eq!(w.count_ones(), 0);
    }

    #[test]
    fn incompressible_data_ratio_above_one() {
        // Alternating bits: every block is a literal; 32 bits spent per 31
        // bits of payload -> ratio > 1 (the paper's NBA observation).
        let b = patterned(31 * 64, 2);
        let w = Wah::compress(&b);
        assert!(w.compression_ratio() > 1.0);
    }

    #[test]
    fn and_or_match_dense() {
        let a = patterned(997, 3);
        let b = patterned(997, 5);
        let wa = Wah::compress(&a);
        let wb = Wah::compress(&b);
        assert_eq!(wa.and(&wb).decompress(), a.and(&b));
        assert_eq!(wa.or(&wb).decompress(), a.or(&b));
        assert_eq!(wa.and_count(&wb), a.and_count(&b));
    }

    #[test]
    fn and_with_ones_is_identity() {
        let a = patterned(500, 7);
        let ones = Wah::compress(&BitVec::ones(500));
        assert_eq!(Wah::compress(&a).and(&ones).decompress(), a);
    }

    #[test]
    fn fill_chunking_survives_giant_runs() {
        // Directly exercise the chunking path with a synthetic run longer
        // than one fill word can hold.
        let blocks = MAX_FILL_BLOCKS + 5;
        let w = Wah::from_runs(
            vec![Run::Fill { ones: true, blocks }],
            blocks as usize * BLOCK_BITS,
        );
        assert_eq!(w.words(), 2);
        assert_eq!(w.count_ones(), blocks as usize * BLOCK_BITS);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_rejects_length_mismatch() {
        let a = Wah::compress(&BitVec::zeros(10));
        let b = Wah::compress(&BitVec::zeros(20));
        let _ = a.and(&b);
    }
}
