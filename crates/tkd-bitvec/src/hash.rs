//! Word-fold FNV-1a checksum — the one shared hashing helper.
//!
//! Lives in the dependency-free substrate crate so every layer that
//! checksums bytes (snapshot sections in `tkd-store`, wire frames in
//! `tkd-serve`) uses the same definition instead of growing copies.

/// FNV-1a-style 64-bit hash, folded a **word** at a time. Whole 8-byte
/// chunks are absorbed as LE `u64`s (8× the byte-at-a-time throughput,
/// which matters: every snapshot load and save hashes the full
/// multi-megabyte payload), trailing bytes individually, so inputs
/// shorter than 8 bytes hash exactly like standard FNV-1a. Not
/// cryptographic; its job is detecting accidental corruption
/// deterministically with no dependencies — any flipped bit changes the
/// absorbed word, and the odd multiplier is a bijection, so the
/// difference can never cancel to zero on its own.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Sub-word inputs hash exactly like standard FNV-1a 64.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        // Word-wide folding: sensitive to every bit and to truncation.
        let base: Vec<u8> = (0u8..64).collect();
        let h = fnv64(&base);
        for i in [0usize, 7, 8, 31, 63] {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv64(&flipped), h, "flip at {i}");
        }
        assert_ne!(fnv64(&base[..63]), h);
        assert_ne!(fnv64(&base[..56]), h);
    }
}
