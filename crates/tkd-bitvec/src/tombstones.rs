//! Tombstone bookkeeping for append-only bit-column stores.
//!
//! The dynamic update layer never moves a bit column's existing bits:
//! deleting an object *tombstones* its slot — the bit position keeps
//! existing, but the object is masked out of every set the index answers
//! with. [`Tombstones`] is the shared bookkeeping for that: a dense live
//! mask plus the dead count, so stores can answer "how many live slots?"
//! in `O(1)` and iterate live slots word-parallel.

use crate::BitVec;

/// A live/dead mask over an append-only slot space.
///
/// Slots are appended live ([`Tombstones::push_live`]) and killed at most
/// once ([`Tombstones::kill`]); there is no resurrection — compaction
/// rebuilds the store instead. The live mask is exposed as a [`BitVec`] so
/// callers can fuse it into word-parallel scans
/// (e.g. `live_mask().iter_ones_and_not(column)`).
#[derive(Clone, Debug)]
pub struct Tombstones {
    live: BitVec,
    dead: usize,
}

impl Tombstones {
    /// `n` slots, all live (the state right after a build or compaction).
    pub fn all_live(n: usize) -> Self {
        Tombstones {
            live: BitVec::ones(n),
            dead: 0,
        }
    }

    /// Rebuild the bookkeeping from a persisted live mask (snapshot
    /// load): the dead count is recomputed from the mask, so the two can
    /// never disagree.
    pub fn from_live_mask(live: BitVec) -> Self {
        let dead = live.len() - live.count_ones();
        Tombstones { live, dead }
    }

    /// Total slots, live or dead.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Is the slot space empty?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of live slots.
    pub fn live_count(&self) -> usize {
        self.live.len() - self.dead
    }

    /// Number of tombstoned slots.
    pub fn dead_count(&self) -> usize {
        self.dead
    }

    /// Tombstoned fraction of the slot space (`0.0` when empty) — the
    /// quantity compaction policies threshold on.
    pub fn dead_fraction(&self) -> f64 {
        if self.live.is_empty() {
            0.0
        } else {
            self.dead as f64 / self.live.len() as f64
        }
    }

    /// Is slot `i` live?
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn is_live(&self, i: usize) -> bool {
        self.live.get(i)
    }

    /// Append one live slot, returning its index.
    pub fn push_live(&mut self) -> usize {
        self.live.push(true);
        self.live.len() - 1
    }

    /// Tombstone slot `i`. Returns `false` (and changes nothing) if it was
    /// already dead.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn kill(&mut self, i: usize) -> bool {
        if !self.live.get(i) {
            return false;
        }
        self.live.clear(i);
        self.dead += 1;
        true
    }

    /// The dense live mask (bit `i` set ⇔ slot `i` live), for word-parallel
    /// scans.
    pub fn live_mask(&self) -> &BitVec {
        &self.live
    }

    /// Iterate the live slot indexes in ascending order.
    pub fn iter_live(&self) -> crate::Ones<'_> {
        self.live.iter_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = Tombstones::all_live(3);
        assert_eq!((t.len(), t.live_count(), t.dead_count()), (3, 3, 0));
        assert!(t.kill(1));
        assert!(!t.kill(1), "double-kill is a no-op");
        assert_eq!(t.live_count(), 2);
        assert!((t.dead_fraction() - 1.0 / 3.0).abs() < 1e-12);
        let s = t.push_live();
        assert_eq!(s, 3);
        assert!(t.is_live(3));
        assert!(!t.is_live(1));
        assert_eq!(t.iter_live().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn empty() {
        let t = Tombstones::all_live(0);
        assert!(t.is_empty());
        assert_eq!(t.dead_fraction(), 0.0);
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn from_live_mask_recomputes_dead_count() {
        let mut t = Tombstones::all_live(100);
        t.kill(3);
        t.kill(64);
        let rebuilt = Tombstones::from_live_mask(t.live_mask().clone());
        assert_eq!(rebuilt.dead_count(), 2);
        assert_eq!(rebuilt.live_count(), 98);
        assert!(!rebuilt.is_live(3) && !rebuilt.is_live(64) && rebuilt.is_live(0));
    }

    #[test]
    fn live_mask_fuses_with_columns() {
        let mut t = Tombstones::all_live(130);
        t.kill(0);
        t.kill(129);
        // live ∧ ¬column — the delta-scan shape used by the dynamic layer.
        let column = BitVec::from_indices(130, (0..130).step_by(2));
        let hits: Vec<usize> = t.live_mask().iter_ones_and_not(&column).collect();
        assert!(hits.iter().all(|&i| i % 2 == 1 && i != 129));
        assert_eq!(hits.len(), 64);
    }
}
